"""Orchestrator: wire a :class:`~repro.core.config.SystemConfig` into the
discrete-event engine and run it.

:class:`QuantumNetworkSimulation` solves the static problem once through
:class:`~repro.api.service.SolverService` (sharing its fingerprint cache),
installs the resulting ``(φ, w)`` allocation into the process layer, and
simulates the network in time: per-link entanglement generation, swapping
into per-route key buffers, transciphering demand, scheduled disruptions
and — optionally — mid-simulation re-optimization.

The adaptive re-optimization path models the operational loop the paper's
static formulation cannot: on every re-optimization the orchestrator builds
a :class:`SystemConfig` reflecting the *current* world (fading multipliers
on the channel gains; down links with their ``β`` collapsed by
``outage_beta_factor``) and re-invokes the solver, so routes crossing a dead
link fall back to their minimum rates and the freed shared-link capacity is
re-spent on healthy routes.

:func:`run_adaptive_study` runs the adaptive and frozen policies over
byte-identical randomness (same seed, same named RNG streams) and returns
an :class:`~repro.sim.result.AdaptiveSimStudy`.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import SystemConfig
from repro.quantum.topology import QKDNetwork
from repro.sim.engine import Simulator
from repro.sim.processes import (
    AdaptationProcess,
    AllocationState,
    DemandProcess,
    DisruptionProcess,
    EntanglementSource,
    FadingProcess,
    MonitorProcess,
    RouteBuffers,
    swap_credit,
)
from repro.sim.result import AdaptiveSimStudy, SimulationResult

__all__ = ["QuantumNetworkSimulation", "SimParams", "run_adaptive_study"]


@dataclass(frozen=True)
class SimParams:
    """Knobs of one simulation run (all times in simulated seconds)."""

    #: simulated horizon
    duration_s: float = 60.0
    #: time-series sampling interval
    sample_dt: float = 1.0
    #: offered key demand as a fraction of each route's allocated key rate
    #: (0 disables the demand model)
    demand_factor: float = 0.0
    #: demand draw interval
    demand_dt: float = 0.5
    #: network-wide link outage rate (outages per second; 0 disables)
    outage_rate: float = 0.0
    #: mean outage holding time
    outage_duration_s: float = 20.0
    #: block-fading epoch length (0 disables fading)
    fading_interval_s: float = 0.0
    #: re-optimization cadence (0 = static policy, never re-solve)
    reopt_interval_s: float = 0.0
    #: also re-optimize immediately on outage/recovery and fading epochs
    reopt_on_events: bool = True
    #: per-(route, link) pending-pair memory (finite quantum memory)
    pending_cap: int = 32
    #: β multiplier applied to down links in the re-optimization config;
    #: small but non-zero so the minimum-rate and fidelity constraints stay
    #: feasible (0.15 is the empirical single-outage feasibility floor on
    #: the SURFnet topology; solver failures fall back to the previous
    #: allocation either way)
    outage_beta_factor: float = 0.25
    #: record the event trace (enables ``trace_digest``; cheap)
    record_trace: bool = True
    #: batch solver backend for mid-simulation re-optimizations
    #: (see :meth:`repro.api.service.SolverService.solve_many`)
    reopt_backend: str = "auto"
    #: when links are down, also solve the candidate recovered worlds in
    #: the same batch so the next recovery re-optimization is a cache hit
    prefetch_recoveries: bool = True
    #: entanglement-swapping completion policy along multi-hop routes
    #: (see :class:`~repro.sim.processes.RouteBuffers`)
    swap_policy: str = "atomic"
    #: per-swap success probability, applied in expectation as
    #: ``swap_success**(hops-1)`` bits-per-delivery yield (1.0 = ideal)
    swap_success: float = 1.0
    #: outage target pool: "loaded" (links carrying routes at t=0) or
    #: "any" (all links — required for fair cross-policy routing studies,
    #: see :class:`~repro.sim.processes.DisruptionProcess`)
    strike: str = "loaded"

    def __post_init__(self) -> None:
        from repro.sim.processes import STRIKE_MODES, SWAP_POLICIES

        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.sample_dt <= 0:
            raise ValueError("sample_dt must be positive")
        if self.demand_factor < 0:
            raise ValueError("demand_factor must be non-negative")
        if not 0 < self.outage_beta_factor <= 1:
            raise ValueError("outage_beta_factor must be in (0, 1]")
        if self.swap_policy not in SWAP_POLICIES:
            raise ValueError(
                f"unknown swap policy {self.swap_policy!r}; "
                f"choose from {SWAP_POLICIES}"
            )
        if not 0 < self.swap_success <= 1:
            raise ValueError("swap_success must be in (0, 1]")
        if self.strike not in STRIKE_MODES:
            raise ValueError(
                f"unknown strike mode {self.strike!r}; choose from {STRIKE_MODES}"
            )


class QuantumNetworkSimulation:
    """One configured simulation, ready to :meth:`run`."""

    def __init__(
        self,
        config: SystemConfig,
        params: SimParams = SimParams(),
        *,
        seed: int = 0,
        service: Optional["SolverService"] = None,
        router: Optional["RouteController"] = None,
    ) -> None:
        from repro.api.service import SolverService

        self.config = config
        self.params = params
        self.seed = int(seed)
        self.service = service if service is not None else SolverService()
        self.router = router
        if router is not None:
            if router.topology.num_links != config.network.num_links:
                raise ValueError(
                    "router topology and config network disagree on the "
                    f"link set ({router.topology.num_links} vs "
                    f"{config.network.num_links} links)"
                )
            if len(router.topology.clients) != config.network.num_routes:
                raise ValueError(
                    "router topology and config network disagree on the "
                    f"client count ({len(router.topology.clients)} vs "
                    f"{config.network.num_routes} routes)"
                )
        #: reroute log: [t, routes_changed, clients_on_dead_fallback]
        self.reroutes: List[List[float]] = []

        baseline = self.service.solve(config)
        phi0 = np.asarray(baseline.allocation.phi, dtype=float)
        w0 = np.asarray(baseline.allocation.w, dtype=float)
        #: fixed warm start for every re-optimization solve: the baseline
        #: optimum (the alternation re-converges in a couple of rounds from
        #: it), kept constant so each solve is a pure function of its config
        self._warm_start = baseline.allocation.with_updates(T=None)
        #: per-simulation memo of re-optimization results by config
        #: fingerprint (see _reoptimize for the determinism rationale)
        self._reopt_memo = {}

        self.sim = Simulator(seed=self.seed, record_trace=params.record_trace)
        self.state = AllocationState(config.network, phi0, w0)
        self.buffers = self.sim.add(
            RouteBuffers(
                self.state,
                pending_cap=params.pending_cap,
                swap_policy=params.swap_policy,
                swap_success=params.swap_success,
            )
        )
        self.sources: List[EntanglementSource] = [
            self.sim.add(
                EntanglementSource(l, link.beta, self.state, self.buffers)
            )
            for l, link in enumerate(config.network.links)
        ]

        self._initial_phi = [float(v) for v in phi0]
        self._initial_key_rate = self.state.key_rates()
        self._demand_rate = [
            params.demand_factor * rate for rate in self._initial_key_rate
        ]
        self.demand: Optional[DemandProcess] = None
        if params.demand_factor > 0:
            self.demand = self.sim.add(
                DemandProcess(
                    self.buffers, self._demand_rate, interval_s=params.demand_dt
                )
            )

        self.adaptation: Optional[AdaptationProcess] = None
        if params.reopt_interval_s > 0:
            self.adaptation = self.sim.add(
                AdaptationProcess(
                    self._reoptimize, interval_s=params.reopt_interval_s
                )
            )

        self.disruption: Optional[DisruptionProcess] = None
        if params.outage_rate > 0:
            self.disruption = self.sim.add(
                DisruptionProcess(
                    self.sources,
                    self.state,
                    outage_rate=params.outage_rate,
                    mean_outage_s=params.outage_duration_s,
                    on_change=self._on_link_change,
                    strike=params.strike,
                )
            )

        self.fading: Optional[FadingProcess] = None
        if params.fading_interval_s > 0:
            self.fading = self.sim.add(
                FadingProcess(
                    config.num_clients,
                    interval_s=params.fading_interval_s,
                    demand=self.demand,
                    on_change=self._on_fading_change,
                )
            )

        self.monitor = self.sim.add(
            MonitorProcess(self.buffers, sample_dt=params.sample_dt)
        )
        self.reopt_failures = 0

        # Expected-key-bits integral: ∫ Σ_{alive routes} φ_n F_skf(ϖ_n) dt,
        # accrued piecewise at every allocation / link-state change.  It is
        # the Poisson-noise-free view of the same quantity the event loop
        # samples, so adaptive-vs-static deltas are exact, not ±√N noisy.
        self._route_links = [r.link_indices for r in config.network.routes]
        self._swap_credit = [
            swap_credit(r.hop_count, params.swap_success)
            for r in config.network.routes
        ]
        self._link_up = [True] * config.network.num_links
        self._expected_bits = 0.0
        self._expected_last_t = 0.0

    # -- adaptation plumbing --------------------------------------------------

    def _accrue_expected(self) -> None:
        """Integrate the analytic key rate up to now with the current state."""
        now = self.sim.now
        if now > self._expected_last_t:
            rate = 0.0
            for n, link_indices in enumerate(self._route_links):
                if all(self._link_up[l] for l in link_indices):
                    rate += (
                        float(self.state.phi[n])
                        * self.state.skf[n]
                        * self._swap_credit[n]
                    )
            self._expected_bits += rate * (now - self._expected_last_t)
        self._expected_last_t = now

    def _on_link_change(self, link_index: int, is_up: bool) -> None:
        self._accrue_expected()
        self._link_up[link_index] = is_up
        if self.router is not None:
            self._apply_routing()
        if self.adaptation is not None and self.params.reopt_on_events:
            self.adaptation.request()

    def _apply_routing(self) -> None:
        """Re-route every client against the current link state.

        Asks the :class:`~repro.sim.routing.RouteController` for the route
        set under ``self._link_up``; if it differs from the routes in
        force, swaps the new network into the config (so every later
        re-optimization solves for the new routes), retargets the
        allocation state and swap buffers, and logs the reroute — both in
        :attr:`reroutes` and as a ``reroute`` trace event, so routing
        decisions are digest-visible.
        """
        routes, fallback = self.router.routes_for(self._link_up)
        old_ids = [r.link_ids for r in self.config.network.routes]
        new_ids = [r.link_ids for r in routes]
        if new_ids == old_ids:
            return
        self._accrue_expected()
        network = QKDNetwork(
            self.config.network.links,
            routes,
            key_center=self.config.network.key_center,
        )
        self.config = dataclasses.replace(self.config, network=network)
        self.state.retarget(network, self.state.phi, self.state.w)
        self.buffers.retarget()
        self._route_links = [r.link_indices for r in routes]
        self._swap_credit = [
            swap_credit(r.hop_count, self.params.swap_success) for r in routes
        ]
        changed = sum(1 for o, n in zip(old_ids, new_ids) if o != n)
        self.reroutes.append(
            [float(self.sim.now), float(changed), float(sum(fallback))]
        )
        self.sim.schedule(0.0, lambda: None, tag="reroute")

    def _on_fading_change(self) -> None:
        if self.adaptation is not None and self.params.reopt_on_events:
            self.adaptation.request()

    def current_config(self, link_up: Optional[List[bool]] = None) -> SystemConfig:
        """The world as the solver should see it *now*.

        Channel gains carry the current fading multipliers; links that are
        down keep ``β · outage_beta_factor`` — collapsed capacity rather
        than zero, so the minimum-rate constraints stay feasible and the
        solver parks affected routes at ``φ_min`` instead of failing.
        ``link_up`` overrides the live link state (used to construct the
        candidate worlds the re-optimizer prefetches).
        """
        config = self.config
        gains = np.asarray(config.channel_gains, dtype=float)
        if self.fading is not None:
            gains = gains * np.asarray(self.fading.multiplier, dtype=float)
        network = config.network
        if link_up is None:
            link_up = list(self.disruption.link_up) if self.disruption else []
        if link_up and not all(link_up):
            links = [
                link
                if link_up[l]
                else dataclasses.replace(
                    link, beta=link.beta * self.params.outage_beta_factor
                )
                for l, link in enumerate(network.links)
            ]
            network = QKDNetwork(
                links, network.routes, key_center=network.key_center
            )
        return dataclasses.replace(config, network=network, channel_gains=gains)

    def _candidate_configs(self) -> List[SystemConfig]:
        """The current world plus its most likely successors.

        The first candidate is always the world to apply.  When links are
        down and recovery prefetching is on, the worlds in which one of
        them has recovered (and the all-up world) ride along in the same
        batch: they share the vectorized solve and land in this
        simulation's re-optimization memo, turning the next
        recovery-triggered re-optimization into a lookup.
        """
        candidates = [self.current_config()]
        if (
            self.params.prefetch_recoveries
            and self.router is None  # a recovery would reroute first, so
            # the prefetched world's routes would not match; skip the
            # speculation rather than solve configs that can never apply
            and self.disruption is not None
            and not all(self.disruption.link_up)
        ):
            link_up = list(self.disruption.link_up)
            down = [l for l, up in enumerate(link_up) if not up]
            for l in down[:3]:  # bound the prefetch cost on outage storms
                restored = list(link_up)
                restored[l] = True
                candidates.append(self.current_config(link_up=restored))
            if len(down) > 1:
                candidates.append(
                    self.current_config(link_up=[True] * len(link_up))
                )
        return candidates

    def _reoptimize(self) -> None:
        from repro.api.service import FingerprintError, config_fingerprint

        candidates = self._candidate_configs()
        # Every re-optimization solve warm-starts from the *baseline*
        # allocation (a couple of alternation rounds instead of a cold
        # solve) and is memoized per simulation instance.  Each memo entry
        # is therefore a pure function of its config — independent of the
        # shared service cache and of other runs — so same-seed runs stay
        # byte-identical even when they share a SolverService.  Prefetched
        # recovery candidates ride in the same batch and turn the next
        # recovery-triggered re-optimization into a memo lookup.
        keys = []
        for cfg in candidates:
            try:
                keys.append(config_fingerprint(cfg))
            except FingerprintError:
                keys.append(None)
        pending = [
            i
            for i, key in enumerate(keys)
            if key is None or key not in self._reopt_memo
        ]
        if pending:
            try:
                solved = self.service.solve_many(
                    [candidates[i] for i in pending],
                    backend=self.params.reopt_backend,
                    initials=[self._warm_start] * len(pending),
                )
            except Exception:
                # A batch can die on a speculative candidate; the current
                # world alone decides whether this re-optimization counts
                # as failed.
                if keys[0] is None or keys[0] not in self._reopt_memo:
                    try:
                        solved_current = self.service.solve_many(
                            candidates[:1],
                            backend=self.params.reopt_backend,
                            initials=[self._warm_start],
                        )
                    except Exception:
                        # A transient world (e.g. heavily degraded network)
                        # the solver cannot handle keeps the previous
                        # allocation in force; config construction stays
                        # outside the catch so its bugs surface.
                        self.reopt_failures += 1
                        return
                    if keys[0] is not None:
                        self._reopt_memo[keys[0]] = solved_current[0]
                    result = solved_current[0]
                    self._apply_reopt(result)
                    return
            else:
                for i, res in zip(pending, solved):
                    if keys[i] is not None:
                        self._reopt_memo[keys[i]] = res
        result = (
            self._reopt_memo[keys[0]]
            if keys[0] is not None
            else solved[pending.index(0)]
        )
        self._apply_reopt(result)

    def _apply_reopt(self, result) -> None:
        self._accrue_expected()
        self.state.update(result.allocation.phi, result.allocation.w)

    # -- execution ------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Simulate the configured horizon and assemble the result."""
        params = self.params
        start = time.perf_counter()
        self.sim.run(until=params.duration_s)
        wall = time.perf_counter() - start
        self._accrue_expected()  # close the final segment at t = duration
        monitor = self.monitor
        buffers = self.buffers
        outages = []
        if self.disruption is not None:
            outages = [
                [l, t_down, min(t_up, params.duration_s)]
                for l, t_down, t_up in self.disruption.outages
            ]
        reopt_times = (
            list(self.adaptation.reopt_times) if self.adaptation is not None else []
        )
        return SimulationResult(
            duration_s=params.duration_s,
            seed=self.seed,
            allocated_phi=list(self._initial_phi),
            allocated_key_rate=list(self._initial_key_rate),
            demand_rate=list(self._demand_rate),
            sample_times=list(monitor.sample_times),
            buffer_bits=[list(row) for row in monitor.buffer_series],
            delivered_bits_series=[list(row) for row in monitor.delivered_series],
            shortfall_bits_series=[list(row) for row in monitor.shortfall_series],
            pairs_generated=[s.pairs_generated for s in self.sources],
            pairs_delivered=list(buffers.pairs_delivered),
            pairs_dropped=list(buffers.pairs_dropped),
            delivered_bits=list(buffers.delivered_bits),
            demand_bits=list(buffers.demand_bits),
            served_bits=list(buffers.served_bits),
            shortfall_bits=list(buffers.shortfall_bits),
            expected_key_bits=self._expected_bits,
            outages=outages,
            reopt_times=reopt_times,
            reopt_failures=self.reopt_failures,
            events_processed=self.sim.events_processed,
            wall_time_s=wall,
            trace_digest=self.sim.trace_digest(),
            reroutes=[list(row) for row in self.reroutes],
            pairs_flushed=list(buffers.pairs_flushed),
            final_route_links=[
                list(r.link_ids) for r in self.config.network.routes
            ],
        )


def run_adaptive_study(
    config: SystemConfig,
    params: SimParams,
    *,
    seed: int = 0,
    service: Optional["SolverService"] = None,
) -> AdaptiveSimStudy:
    """Adaptive vs static policy over a shared disruption trajectory.

    Both runs use the same seed, so the policy-independent streams —
    outage schedule and fading epochs — are identical draw for draw; only
    the policy differs (the static run never re-solves).  Generation noise
    diverges once the adaptive policy changes an allocation, so compare
    policies on ``expected_gain_bits`` (exact) rather than the empirical
    delivered-bits delta (±√N Poisson noise).
    """
    if params.reopt_interval_s <= 0:
        raise ValueError("adaptive study needs reopt_interval_s > 0")
    from repro.api.service import SolverService

    service = service if service is not None else SolverService()
    adaptive = QuantumNetworkSimulation(
        config, params, seed=seed, service=service
    ).run()
    static_params = dataclasses.replace(params, reopt_interval_s=0.0)
    static = QuantumNetworkSimulation(
        config, static_params, seed=seed, service=service
    ).run()
    return AdaptiveSimStudy(adaptive=adaptive, static=static)
