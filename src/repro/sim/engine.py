"""Discrete-event simulation core: clock, event heap, entities, RNG streams.

The optimization layer (:mod:`repro.core`) treats the system as a static
snapshot; this engine adds *time*.  It is a classic discrete-event kernel in
the SimQN/SeQUeNCe mould — a binary heap of timestamped events, a simulation
clock that jumps from event to event, and self-scheduling processes — kept
deliberately small so a single event costs microseconds (see
``benchmarks/test_sim_throughput.py``).

Determinism contract
--------------------
Runs are reproducible bit for bit given a seed:

* **Ordering** — events are totally ordered by ``(time, priority, seq)``
  where ``seq`` is the scheduling sequence number, so simultaneous events
  fire in a deterministic order (FIFO among equals) independent of hash
  seeds or dict iteration.
* **Randomness** — every stochastic process draws from a *named* stream
  (:meth:`Simulator.stream`).  Streams are derived from the simulation seed
  and the stream name only (via :class:`numpy.random.SeedSequence` spawn
  keys), so adding a new process or reordering start-up cannot perturb the
  draws of existing processes.
* **Audit** — with ``record_trace=True`` the simulator keeps an event trace
  and a SHA-256 :meth:`~Simulator.trace_digest` over ``(time, tag)`` pairs;
  two runs are identical iff their digests match (asserted in
  ``tests/sim/test_engine.py``).

See ``docs/simulation.md`` for the event model and a worked example of
adding a process.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import struct
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import faults as _faults

__all__ = ["Event", "Entity", "Process", "RngStreams", "Simulator"]


class Event:
    """One scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`, never directly.  :meth:`cancel` marks the
    event dead; the heap skips cancelled events on pop (lazy deletion).
    """

    __slots__ = ("time", "priority", "seq", "fn", "tag", "cancelled")

    def __init__(
        self, time: float, priority: int, seq: int, fn: Callable[[], None], tag: str
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.tag = tag
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6g}, tag={self.tag!r}{state})"


class RngStreams:
    """Named deterministic random streams derived from one seed.

    Each stream is an independent :class:`numpy.random.Generator` seeded by
    ``SeedSequence(seed, spawn_key=(crc32(name),))`` — a pure function of
    ``(seed, name)``.  Two simulations with the same seed give every
    like-named process identical randomness regardless of how many *other*
    streams exist or the order they were first touched.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use, then cached)."""
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.default_rng(sequence)
            self._streams[name] = gen
        return gen


class Entity:
    """Anything that lives inside a simulation (a link, a buffer, a monitor).

    Entities are attached with :meth:`Simulator.add`, which sets
    :attr:`sim`; :meth:`start` fires once when the simulation first runs.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.sim: "Simulator" = None  # type: ignore[assignment]  # set by Simulator.add

    def start(self) -> None:
        """Hook called once at simulation start (override as needed)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class Process(Entity):
    """An entity that drives itself: schedule next step, fire, repeat.

    Subclasses implement :meth:`next_delay` (seconds until the next step, or
    ``None`` to stop) and :meth:`step` (the action).  :meth:`pause` /
    :meth:`resume` model service interruptions — e.g. a link outage stops an
    entanglement source — using an epoch token so that events scheduled
    before the pause become inert instead of firing stale work.
    """

    #: Heap priority of the process's own step events (lower fires first
    #: among same-time events); subclasses override to order phases within
    #: a timestamp (e.g. adapt < physics < demand < monitor).
    priority = 0

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.active = True
        self._epoch = 0

    # -- subclass API ---------------------------------------------------------

    def next_delay(self) -> Optional[float]:
        """Seconds until the next :meth:`step`; ``None`` ends the process."""
        raise NotImplementedError

    def step(self) -> None:
        """One unit of work at the scheduled time."""
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._arm()

    def pause(self) -> None:
        """Suspend the process; pending events become inert."""
        if self.active:
            self.active = False
            self._epoch += 1

    def resume(self) -> None:
        """Reactivate a paused process and schedule its next step."""
        if not self.active:
            self.active = True
            self._epoch += 1
            self._arm()

    def _arm(self) -> None:
        delay = self.next_delay()
        if delay is None:
            return
        epoch = self._epoch
        self.sim.schedule(
            delay, lambda: self._fire(epoch), priority=self.priority, tag=self.name
        )

    def _fire(self, epoch: int) -> None:
        if epoch != self._epoch or not self.active:
            return
        self.step()
        self._arm()


class Simulator:
    """The discrete-event kernel: clock + heap + entities + RNG streams.

    Typical use::

        sim = Simulator(seed=7)
        sim.add(MyProcess("source"))
        sim.schedule(10.0, lambda: print("one-shot at t=10"), tag="demo")
        sim.run(until=60.0)

    ``run`` may be called repeatedly with increasing horizons; the clock
    never moves backwards.
    """

    def __init__(
        self, *, seed: int = 0, start_time: float = 0.0, record_trace: bool = False
    ) -> None:
        self.seed = int(seed)
        self.streams = RngStreams(seed)
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._entities: List[Entity] = []
        self._started = 0  # entities already start()ed
        self.events_processed = 0
        self.events_scheduled = 0
        self._trace: Optional[List[Tuple[float, str]]] = [] if record_trace else None
        self._trace_hash = hashlib.sha256() if record_trace else None

    # -- clock & randomness ---------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def stream(self, name: str) -> np.random.Generator:
        """The named deterministic random stream (see :class:`RngStreams`)."""
        return self.streams.stream(name)

    # -- entities -------------------------------------------------------------

    def add(self, entity: Entity) -> Any:
        """Attach an entity; its :meth:`~Entity.start` runs at next ``run``."""
        entity.sim = self
        self._entities.append(entity)
        return entity

    # -- scheduling -----------------------------------------------------------

    def schedule(
        self, delay: float, fn: Callable[[], None], *, priority: int = 0, tag: str = ""
    ) -> Event:
        """Schedule ``fn`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, fn, priority=priority, tag=tag)

    def schedule_at(
        self, time: float, fn: Callable[[], None], *, priority: int = 0, tag: str = ""
    ) -> Event:
        """Schedule ``fn`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now={self._now}")
        event = Event(float(time), int(priority), next(self._seq), fn, tag)
        heapq.heappush(self._heap, event)
        self.events_scheduled += 1
        return event

    # -- execution ------------------------------------------------------------

    def run(self, until: float) -> int:
        """Process every event with ``time <= until``; returns the count.

        The clock finishes exactly at ``until`` (even if the last event was
        earlier), so periodic monitors see a full final interval.
        """
        if until < self._now:
            raise ValueError(f"cannot run to {until} < now={self._now}")
        self._inject_storm(until)
        while self._started < len(self._entities):
            entity = self._entities[self._started]
            self._started += 1
            entity.start()
        heap = self._heap
        before = self.events_processed
        trace = self._trace
        trace_hash = self._trace_hash
        while heap and heap[0].time <= until:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_processed += 1
            if trace is not None:
                trace.append((event.time, event.tag))
                trace_hash.update(struct.pack("<d", event.time))
                trace_hash.update(event.tag.encode("utf-8"))
            event.fn()
        self._now = float(until)
        return self.events_processed - before

    def _inject_storm(self, until: float) -> None:
        """The ``sim.storm`` fault seam: a deterministic no-op event burst.

        A ``storm`` rule floods the heap with ``count`` inert events spread
        over ``span_s`` seconds (default: the whole run window), drawn from
        the dedicated ``faults.storm`` named stream — so the burst is
        reproducible under the plan and, by the named-stream discipline,
        cannot perturb any model process's own draws.  The storm *does*
        enter the event trace (tag ``fault.storm``): digests under a plan
        differ from clean digests, equally deterministically.
        """
        rule = _faults.fire("sim.storm")
        if rule is None or rule.kind != "storm" or rule.count <= 0:
            return
        span = rule.span_s if rule.span_s > 0 else max(until - self._now, 0.0)
        offsets = np.sort(self.stream("faults.storm").random(rule.count))
        for offset in offsets:
            self.schedule_at(
                self._now + float(offset) * span,
                lambda: None,
                tag="fault.storm",
            )

    # -- audit ----------------------------------------------------------------

    @property
    def trace(self) -> List[Tuple[float, str]]:
        """``(time, tag)`` pairs of processed events (``record_trace`` only)."""
        if self._trace is None:
            raise RuntimeError("trace recording is off; pass record_trace=True")
        return list(self._trace)

    def trace_digest(self) -> str:
        """SHA-256 over the processed-event trace; '' when tracing is off.

        Two runs of the same simulation are identical iff their digests
        match — the determinism tests rely on exactly this.
        """
        if self._trace_hash is None:
            return ""
        return self._trace_hash.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Simulator(t={self._now:.6g}, pending={len(self._heap)}, "
            f"processed={self.events_processed})"
        )
