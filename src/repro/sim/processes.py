"""Quantum-network processes layered on the discrete-event engine.

Each class models one physical or operational mechanism of the paper's
QKD/HE co-design, time-resolved:

* :class:`EntanglementSource` — per-link generation attempts at rate
  ``β_l`` succeeding with probability ``1 - w_l`` (so successes form the
  Poisson process of capacity ``c_l = β_l (1 - w_l)``, paper Eq. 3);
* :class:`RouteBuffers` — entanglement swapping along the Table-III routes
  (one pair from every constituent link per end-to-end pair) feeding
  per-route secret-key buffers at ``F_skf(ϖ_n)`` bits per delivered pair
  (paper Eqs. 4-5);
* :class:`DemandProcess` — transciphering key demand draining the buffers,
  with unmet demand recorded as shortfall;
* :class:`DisruptionProcess` / :class:`FadingProcess` — link outages with
  exponential holding times, and block-fading epochs re-drawing the
  per-client channel multipliers;
* :class:`AdaptationProcess` — periodic (and disruption-triggered)
  re-optimization hook, used by the orchestrator to re-invoke
  :class:`~repro.api.service.SolverService` mid-simulation;
* :class:`MonitorProcess` — fixed-interval time-series sampling.

All processes draw from named :class:`~repro.sim.engine.RngStreams`.  The
``disruption`` and ``fading`` streams never depend on the allocation, so
two same-seed simulations see the identical outage schedule and fading
epochs even when their *policies* differ — the basis for fair
adaptive-vs-static comparisons.  (Generation streams do diverge once a
re-optimization changes ``w_l``: the same uniform draw crosses different
success thresholds; that residual Poisson noise is why the orchestrator
also integrates the analytic ``expected_key_bits``.)
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.quantum.topology import QKDNetwork
from repro.quantum.werner import end_to_end_werner, secret_key_fraction
from repro.sim.engine import Entity, Process
from repro.wireless.pathloss import rayleigh_power_gain

__all__ = [
    "AdaptationProcess",
    "AllocationState",
    "DemandProcess",
    "DisruptionProcess",
    "EntanglementSource",
    "FadingProcess",
    "MonitorProcess",
    "RouteBuffers",
    "STRIKE_MODES",
    "SWAP_POLICIES",
    "swap_credit",
]

#: Event priorities: within one timestamp, re-optimization applies first,
#: then physical events, then demand draws, then monitoring samples.
PRIORITY_ADAPT = -10
PRIORITY_PHYSICS = 0
PRIORITY_DEMAND = 10
PRIORITY_MONITOR = 20


def swap_credit(hop_count: int, swap_success: float) -> float:
    """Expected delivery yield of an ``hop_count``-hop swap chain.

    ``hop_count - 1`` swap operations each succeed with probability
    ``swap_success``; at 1.0 this is exactly 1.0, preserving the original
    bit-for-bit accounting.
    """
    if swap_success == 1.0:
        return 1.0
    return float(swap_success) ** max(0, hop_count - 1)


class AllocationState:
    """The live resource allocation the processes read (and adaptation writes).

    Derived, per link ``l``: the success probability ``1 - w_l`` of a
    generation attempt and the conditional probability that a successful
    pair is assigned to each route crossing the link (``φ_n / c_l``, the
    route's share of the link's capacity).  Per route ``n``: the secret-key
    fraction ``F_skf(ϖ_n)`` credited per delivered end-to-end pair.
    """

    def __init__(self, network: QKDNetwork, phi: Sequence[float], w: Sequence[float]):
        self.network = network
        num_links = network.num_links
        #: routes crossing each link, as (route_index, slot_on_route) pairs.
        self._link_routes: List[List[Tuple[int, int]]] = [[] for _ in range(num_links)]
        for n, route in enumerate(network.routes):
            for slot, link_index in enumerate(route.link_indices):
                self._link_routes[link_index].append((n, slot))
        self.phi = np.zeros(network.num_routes)
        self.w = np.ones(num_links)
        self.success_prob: List[float] = [0.0] * num_links
        #: per link: parallel lists (cumulative thresholds, (route, slot)).
        self.assignment: List[Tuple[List[float], List[Tuple[int, int]]]] = [
            ([], []) for _ in range(num_links)
        ]
        self.skf: List[float] = [0.0] * network.num_routes
        self.update(phi, w)

    def retarget(
        self, network: QKDNetwork, phi: Sequence[float], w: Sequence[float]
    ) -> None:
        """Swap in a new route set (same link set, same route count).

        The rerouting layer (:mod:`repro.sim.routing`) changes *routes*,
        not links or clients: the link-route crossing table is rebuilt for
        the new network and all derived tables recomputed under the
        current allocation.  The subsequent re-optimization then re-solves
        for the new routes properly; this keeps the state consistent in
        the meantime.
        """
        old = self.network
        if network.num_links != old.num_links:
            raise ValueError(
                f"retarget cannot change the link set "
                f"({old.num_links} -> {network.num_links} links)"
            )
        if network.num_routes != old.num_routes:
            raise ValueError(
                f"retarget cannot change the route count "
                f"({old.num_routes} -> {network.num_routes} routes)"
            )
        self.network = network
        self._link_routes = [[] for _ in range(network.num_links)]
        for n, route in enumerate(network.routes):
            for slot, link_index in enumerate(route.link_indices):
                self._link_routes[link_index].append((n, slot))
        self.update(phi, w)

    def update(self, phi: Sequence[float], w: Sequence[float]) -> None:
        """Install a new allocation; recomputes all derived tables."""
        phi = np.asarray(phi, dtype=float)
        w = np.asarray(w, dtype=float)
        net = self.network
        if phi.shape != (net.num_routes,) or w.shape != (net.num_links,):
            raise ValueError(
                f"allocation shapes {phi.shape}/{w.shape} do not match the "
                f"network ({net.num_routes} routes, {net.num_links} links)"
            )
        self.phi = phi
        self.w = w
        betas = net.betas
        for l in range(net.num_links):
            self.success_prob[l] = max(0.0, min(1.0, 1.0 - float(w[l])))
            capacity = betas[l] * self.success_prob[l]
            thresholds: List[float] = []
            targets: List[Tuple[int, int]] = []
            if capacity > 0.0:
                acc = 0.0
                for n, slot in self._link_routes[l]:
                    share = float(phi[n]) / capacity
                    if share <= 0.0:
                        continue
                    acc = min(1.0, acc + share)
                    thresholds.append(acc)
                    targets.append((n, slot))
            self.assignment[l] = (thresholds, targets)
        for n, route in enumerate(net.routes):
            varpi = end_to_end_werner(w, route.link_indices)
            self.skf[n] = float(secret_key_fraction(varpi))

    def key_rates(self) -> List[float]:
        """Analytic steady-state key rate ``φ_n · F_skf(ϖ_n)`` per route."""
        return [float(p) * s for p, s in zip(self.phi, self.skf)]


#: Entanglement-swapping policies :class:`RouteBuffers` implements.
SWAP_POLICIES = ("atomic", "stepwise")


class RouteBuffers(Entity):
    """Swapping bookkeeping and per-route secret-key buffers.

    Each route holds one pending-pair counter per constituent link, capped
    at ``pending_cap`` (finite quantum memory: surplus pairs on one link
    decohere rather than queue forever).  When every counter is positive,
    swapping consumes one pair per link and delivers one end-to-end pair,
    crediting ``F_skf(ϖ_n)`` secret bits to the route's key buffer.

    Swapping policy
    ---------------
    ``atomic`` (default) completes every possible end-to-end swap the
    moment the last constituent pair arrives; ``stepwise`` performs at
    most one swap chain per arriving pair (one repeater operation per
    physical event), leaving surplus completions for later arrivals.  An
    ``h``-hop delivery needs ``h - 1`` swap operations, each succeeding
    with probability ``swap_success``, modelled in expectation: the bits
    credited per delivery are scaled by ``swap_success**(h-1)``.  The
    defaults reproduce the original single-policy behaviour bit for bit.
    """

    def __init__(
        self,
        state: AllocationState,
        *,
        pending_cap: int = 32,
        swap_policy: str = "atomic",
        swap_success: float = 1.0,
    ) -> None:
        super().__init__("buffers")
        if pending_cap < 1:
            raise ValueError("pending_cap must be >= 1")
        if swap_policy not in SWAP_POLICIES:
            raise ValueError(
                f"unknown swap policy {swap_policy!r}; choose from {SWAP_POLICIES}"
            )
        if not 0 < swap_success <= 1:
            raise ValueError("swap_success must be in (0, 1]")
        self.state = state
        self.pending_cap = int(pending_cap)
        self.swap_policy = swap_policy
        self.swap_success = float(swap_success)
        net = state.network
        self.pending: List[List[int]] = [
            [0] * route.hop_count for route in net.routes
        ]
        self._credit = [
            swap_credit(route.hop_count, self.swap_success)
            for route in net.routes
        ]
        self.key_bits = [0.0] * net.num_routes
        self.pairs_delivered = [0] * net.num_routes
        self.delivered_bits = [0.0] * net.num_routes
        self.pairs_dropped = [0] * net.num_routes
        #: pairs discarded mid-swap because a reroute changed the route's
        #: constituent links (stored halves decohere, cf. ``pairs_dropped``)
        self.pairs_flushed = [0] * net.num_routes
        self.demand_bits = [0.0] * net.num_routes
        self.served_bits = [0.0] * net.num_routes
        self.shortfall_bits = [0.0] * net.num_routes

    def retarget(self) -> None:
        """Re-shape the pending counters after the state's routes changed.

        Pairs pending on the old hops are flushed (counted in
        ``pairs_flushed``): a link-level pair stored for a route that no
        longer crosses that link has no partner to swap with and
        decoheres.  Key buffers and cumulative counters persist — the
        delivered secret bits live in the endpoints' key stores, which a
        reroute does not touch.
        """
        routes = self.state.network.routes
        if len(routes) != len(self.pending):
            raise ValueError(
                f"retarget cannot change the route count "
                f"({len(self.pending)} -> {len(routes)})"
            )
        for n, route in enumerate(routes):
            self.pairs_flushed[n] += sum(self.pending[n])
            self.pending[n] = [0] * route.hop_count
            self._credit[n] = swap_credit(route.hop_count, self.swap_success)

    def on_pair(self, route_index: int, slot: int) -> None:
        """A link pair was assigned to ``route_index`` at position ``slot``."""
        pending = self.pending[route_index]
        if pending[slot] >= self.pending_cap:
            self.pairs_dropped[route_index] += 1
            return
        pending[slot] += 1
        while min(pending) > 0:
            for i in range(len(pending)):
                pending[i] -= 1
            bits = self.state.skf[route_index] * self._credit[route_index]
            self.pairs_delivered[route_index] += 1
            self.delivered_bits[route_index] += bits
            self.key_bits[route_index] += bits
            if self.swap_policy == "stepwise":
                break

    def consume(self, route_index: int, bits: float) -> float:
        """Draw up to ``bits`` from a route's key buffer; returns the served
        amount and accounts demand/served/shortfall."""
        available = self.key_bits[route_index]
        served = bits if bits <= available else available
        self.key_bits[route_index] = available - served
        self.demand_bits[route_index] += bits
        self.served_bits[route_index] += served
        self.shortfall_bits[route_index] += bits - served
        return served


#: Bulk-draw size for the entanglement sources' RNG buffers.  A link at
#: β = 100 pairs/s refills every ~2.5 simulated seconds; the draw cost per
#: event drops from one Generator call to an amortized array index.
RNG_CHUNK = 256


class EntanglementSource(Process):
    """One link's entanglement generation: attempts at rate ``β_l``.

    Attempt inter-arrival times are exponential with mean ``1/β_l``; each
    attempt succeeds with probability ``1 - w_l`` (read live from the
    :class:`AllocationState`, so re-optimization immediately retunes the
    link).  Successful pairs are assigned to a route by its capacity share
    or discarded as surplus.  Outages :meth:`~repro.sim.engine.Process.pause`
    the source.

    Randomness is bulk-drawn: inter-arrival times and decision uniforms
    come from per-source buffers refilled ``RNG_CHUNK`` values at a time
    from the source's own named stream.  The per-stream determinism
    contract is untouched — every draw still comes from this source's
    stream in a fixed order, so same-seed runs (and their trace digests)
    remain byte-identical and independent of any other stream's activity.
    """

    priority = PRIORITY_PHYSICS

    def __init__(
        self, link_index: int, beta: float, state: AllocationState, buffers: RouteBuffers
    ) -> None:
        super().__init__(f"gen.link{link_index + 1}")
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.link_index = link_index
        self.beta = float(beta)
        self.state = state
        self.buffers = buffers
        self.attempts = 0
        self.pairs_generated = 0

    def start(self) -> None:
        self._rng = self.sim.stream(self.name)
        self._delays: np.ndarray = np.empty(0)
        self._delay_next = 0
        self._uniforms: np.ndarray = np.empty(0)
        self._uniform_next = 0
        super().start()

    def _next_interarrival(self) -> float:
        if self._delay_next >= len(self._delays):
            self._delays = self._rng.exponential(
                1.0 / self.beta, size=RNG_CHUNK
            )
            self._delay_next = 0
        value = self._delays[self._delay_next]
        self._delay_next += 1
        return float(value)

    def _next_uniform(self) -> float:
        if self._uniform_next >= len(self._uniforms):
            self._uniforms = self._rng.random(size=RNG_CHUNK)
            self._uniform_next = 0
        value = self._uniforms[self._uniform_next]
        self._uniform_next += 1
        return float(value)

    def next_delay(self) -> float:
        return self._next_interarrival()

    def step(self) -> None:
        self.attempts += 1
        l = self.link_index
        if self._next_uniform() >= self.state.success_prob[l]:
            return
        self.pairs_generated += 1
        thresholds, targets = self.state.assignment[l]
        if not thresholds:
            return
        u = self._next_uniform()
        for threshold, (route_index, slot) in zip(thresholds, targets):
            if u < threshold:
                self.buffers.on_pair(route_index, slot)
                return
        # u beyond the allocated shares: surplus pair, discarded.


class DemandProcess(Process):
    """Transciphering key demand draining the per-route buffers.

    The offered load is exogenous and fixed at construction (``base_rate``
    bits/s per route, typically ``demand_factor × φ_n F_skf(ϖ_n)`` of the
    *initial* allocation), optionally modulated by the fading multiplier —
    so competing policies face byte-identical demand.
    """

    priority = PRIORITY_DEMAND

    def __init__(
        self,
        buffers: RouteBuffers,
        base_rate: Sequence[float],
        *,
        interval_s: float = 0.5,
    ) -> None:
        super().__init__("demand")
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.buffers = buffers
        self.base_rate = [float(r) for r in base_rate]
        self.interval_s = float(interval_s)
        #: per-route demand multiplier, written by :class:`FadingProcess`.
        self.multiplier = [1.0] * len(self.base_rate)

    def next_delay(self) -> float:
        return self.interval_s

    def step(self) -> None:
        dt = self.interval_s
        for n, rate in enumerate(self.base_rate):
            need = rate * self.multiplier[n] * dt
            if need > 0.0:
                self.buffers.consume(n, need)


#: Link-selection modes for :class:`DisruptionProcess`.
STRIKE_MODES = ("loaded", "any")


class DisruptionProcess(Process):
    """Random link outages with exponential inter-outage and holding times.

    ``strike`` selects the candidate pool: ``"loaded"`` (default) strikes
    uniformly among currently-up links that carried at least one route *at
    construction*; ``"any"`` strikes uniformly among all currently-up
    links.  Rerouting studies use ``"any"`` — it keeps the outage
    schedule identical across routing policies (the pool never depends on
    where the routes currently are), which is the basis for fair
    proactive-vs-reactive comparisons.  The struck link's
    :class:`EntanglementSource` is paused until the recovery event fires.
    ``on_change(link_index, is_up)`` notifies the orchestrator (e.g. to
    trigger re-optimization or a reroute).
    """

    priority = PRIORITY_PHYSICS

    def __init__(
        self,
        sources: Sequence[EntanglementSource],
        state: AllocationState,
        *,
        outage_rate: float,
        mean_outage_s: float,
        on_change: Optional[Callable[[int, bool], None]] = None,
        strike: str = "loaded",
    ) -> None:
        super().__init__("disruption")
        if outage_rate <= 0:
            raise ValueError("outage_rate must be positive")
        if mean_outage_s <= 0:
            raise ValueError("mean_outage_s must be positive")
        if strike not in STRIKE_MODES:
            raise ValueError(
                f"unknown strike mode {strike!r}; choose from {STRIKE_MODES}"
            )
        self.sources = list(sources)
        self.state = state
        self.outage_rate = float(outage_rate)
        self.mean_outage_s = float(mean_outage_s)
        self.on_change = on_change
        self.strike = strike
        self.link_up = [True] * len(self.sources)
        #: completed and in-flight outages as [link_id, t_down, t_up].
        self.outages: List[List[float]] = []
        if strike == "any":
            self._loaded = [True] * len(self.sources)
        else:
            incidence = state.network.incidence
            self._loaded = [
                bool(incidence[l].sum() > 0) for l in range(len(self.sources))
            ]

    def start(self) -> None:
        self._rng = self.sim.stream("disruption")
        super().start()

    def next_delay(self) -> float:
        return self._rng.exponential(1.0 / self.outage_rate)

    def step(self) -> None:
        candidates = [
            l for l, up in enumerate(self.link_up) if up and self._loaded[l]
        ]
        if not candidates:
            return
        l = candidates[int(self._rng.integers(len(candidates)))]
        duration = self._rng.exponential(self.mean_outage_s)
        t_down = self.sim.now
        self.link_up[l] = False
        self.sources[l].pause()
        self.outages.append([float(l + 1), float(t_down), float(t_down + duration)])
        record = self.outages[-1]
        if self.on_change is not None:
            self.on_change(l, False)

        def recover() -> None:
            record[2] = float(self.sim.now)
            self.link_up[l] = True
            self.sources[l].resume()
            if self.on_change is not None:
                self.on_change(l, True)

        self.sim.schedule(duration, recover, tag=f"recover.link{l + 1}")


class FadingProcess(Process):
    """Block-fading epochs: redraw unit-mean Rayleigh power multipliers.

    Each epoch redraws one multiplier per client route (the small-scale
    component around the fixed large-scale gain, as in
    :mod:`repro.experiments.dynamic`), scales the demand accordingly, and
    notifies the orchestrator so adaptive policies can re-optimize.
    """

    priority = PRIORITY_PHYSICS

    def __init__(
        self,
        num_routes: int,
        *,
        interval_s: float,
        demand: Optional[DemandProcess] = None,
        on_change: Optional[Callable[[], None]] = None,
    ) -> None:
        super().__init__("fading")
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.num_routes = int(num_routes)
        self.interval_s = float(interval_s)
        self.demand = demand
        self.on_change = on_change
        self.multiplier = np.ones(num_routes)
        self.epoch = 0

    def start(self) -> None:
        self._rng = self.sim.stream("fading")
        super().start()

    def next_delay(self) -> float:
        return self.interval_s

    def step(self) -> None:
        self.epoch += 1
        self.multiplier = rayleigh_power_gain(self._rng, size=self.num_routes)
        if self.demand is not None:
            self.demand.multiplier = [float(m) for m in self.multiplier]
        if self.on_change is not None:
            self.on_change()


class AdaptationProcess(Process):
    """Periodic re-optimization: re-invoke the solver mid-simulation.

    ``reoptimize()`` is the orchestrator's callback (it builds the current
    configuration — fading multipliers, degraded outage links — and pushes
    the new allocation into the :class:`AllocationState`).  Besides the
    fixed cadence, :meth:`request` triggers an immediate re-optimization
    (used on outage/recovery and fading-epoch events), de-duplicated per
    timestamp.
    """

    priority = PRIORITY_ADAPT

    def __init__(self, reoptimize: Callable[[], None], *, interval_s: float) -> None:
        super().__init__("adapt")
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.reoptimize = reoptimize
        self.interval_s = float(interval_s)
        self.reopt_times: List[float] = []
        self._last_time: Optional[float] = None

    def next_delay(self) -> float:
        return self.interval_s

    def step(self) -> None:
        self._run_once()

    def request(self) -> None:
        """Schedule an immediate re-optimization (at the current time)."""
        self.sim.schedule(0.0, self._run_once, priority=self.priority, tag="adapt")

    def _run_once(self) -> None:
        if self._last_time == self.sim.now:
            return
        self._last_time = self.sim.now
        self.reopt_times.append(self.sim.now)
        self.reoptimize()


class MonitorProcess(Process):
    """Fixed-interval sampler building the result's time series."""

    priority = PRIORITY_MONITOR

    def __init__(self, buffers: RouteBuffers, *, sample_dt: float) -> None:
        super().__init__("monitor")
        if sample_dt <= 0:
            raise ValueError("sample_dt must be positive")
        self.buffers = buffers
        self.sample_dt = float(sample_dt)
        self.sample_times: List[float] = []
        self.buffer_series: List[List[float]] = []      # [sample][route]
        self.delivered_series: List[List[float]] = []   # cumulative bits
        self.shortfall_series: List[List[float]] = []   # cumulative bits

    def start(self) -> None:
        self._sample()  # t = 0 baseline
        super().start()

    def next_delay(self) -> float:
        return self.sample_dt

    def step(self) -> None:
        self._sample()

    def _sample(self) -> None:
        b = self.buffers
        self.sample_times.append(self.sim.now)
        self.buffer_series.append(list(b.key_bits))
        self.delivered_series.append(list(b.delivered_bits))
        self.shortfall_series.append(list(b.shortfall_bits))
