"""Result objects of the discrete-event simulator.

:class:`SimulationResult` is the durable artifact of one simulation run —
time series of key-buffer levels, delivered key bits and demand shortfall,
plus outage/re-optimization logs and engine counters.  It round-trips
through the versioned :mod:`repro.io` codec registry (kind
``simulation_result``), so ``repro run sim-outage --json`` and
:class:`~repro.api.artifacts.RunRecord` artifacts work like every other
scenario.

:class:`AdaptiveSimStudy` pairs two runs (re-optimizing vs frozen
allocation) over byte-identical disruption/fading/demand randomness and
reports the adaptation gain.

``wall_time_s`` (and the derived ``events_per_second``) are the only
non-deterministic fields; determinism tests compare
:meth:`SimulationResult.deterministic_payload`, which excludes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.utils.tables import format_table

__all__ = ["AdaptiveSimStudy", "RoutingCompareStudy", "SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Everything one simulation run produced.

    Per-route lists are indexed by 0-based route index (route ``n`` serves
    client ``n``); per-link lists by 0-based link index.  Series are
    ``[sample][route]`` aligned with ``sample_times``.
    """

    duration_s: float
    seed: int
    #: allocation in force at t=0 (the solver's answer for the clean network)
    allocated_phi: List[float]
    #: analytic steady-state key rate φ_n·F_skf(ϖ_n) at t=0 (bits/s)
    allocated_key_rate: List[float]
    #: exogenous offered key demand per route (bits/s; 0 = no demand model)
    demand_rate: List[float]
    sample_times: List[float]
    buffer_bits: List[List[float]]
    delivered_bits_series: List[List[float]]
    shortfall_bits_series: List[List[float]]
    pairs_generated: List[int]
    pairs_delivered: List[int]
    pairs_dropped: List[int]
    delivered_bits: List[float]
    demand_bits: List[float]
    served_bits: List[float]
    shortfall_bits: List[float]
    #: analytic ∫ Σ_{alive routes} φ_n F_skf(ϖ_n) dt over the horizon — the
    #: Poisson-noise-free expectation of ``total_key_bits`` under the
    #: policy's allocation trajectory and the realized outage schedule
    expected_key_bits: float
    #: outage log: [link_id, t_down, t_up] (t_up clamped to sim end)
    outages: List[List[float]]
    reopt_times: List[float]
    reopt_failures: int
    events_processed: int
    wall_time_s: float
    trace_digest: str
    #: reroute log: [t, routes_changed, clients_on_dead_fallback] — empty
    #: unless the run had a routing controller (see repro.sim.routing)
    reroutes: List[List[float]] = field(default_factory=list)
    #: per-route pairs discarded mid-swap by a reroute (decohered halves)
    pairs_flushed: List[int] = field(default_factory=list)
    #: link ids of each route in force at the end of the run ([] = routes
    #: never changed / pre-routing artifact)
    final_route_links: List[List[int]] = field(default_factory=list)

    # -- scalar summaries -----------------------------------------------------

    @property
    def num_routes(self) -> int:
        return len(self.allocated_phi)

    @property
    def total_key_bits(self) -> float:
        """Secret bits delivered across all routes over the horizon."""
        return float(sum(self.delivered_bits))

    @property
    def total_demand_bits(self) -> float:
        return float(sum(self.demand_bits))

    @property
    def total_served_bits(self) -> float:
        return float(sum(self.served_bits))

    @property
    def total_shortfall_bits(self) -> float:
        """Demand that found an empty key buffer (outage losses)."""
        return float(sum(self.shortfall_bits))

    @property
    def served_fraction(self) -> float:
        """Fraction of offered demand served (1.0 when no demand model)."""
        demand = self.total_demand_bits
        return 1.0 if demand == 0 else self.total_served_bits / demand

    @property
    def delivered_key_rate(self) -> List[float]:
        """Empirical per-route key rate over the horizon (bits/s)."""
        return [bits / self.duration_s for bits in self.delivered_bits]

    @property
    def events_per_second(self) -> float:
        """Engine throughput: events processed per wall-clock second."""
        if self.wall_time_s <= 0:
            return float("inf")
        return self.events_processed / self.wall_time_s

    @property
    def outage_count(self) -> int:
        return len(self.outages)

    @property
    def reroute_count(self) -> int:
        """Link-state changes that actually moved at least one route."""
        return len(self.reroutes)

    @property
    def reroute_fallbacks(self) -> float:
        """Total client-reroute decisions stuck on a dead primary path."""
        return float(sum(row[2] for row in self.reroutes))

    @property
    def outage_seconds(self) -> float:
        """Total link-down time accumulated across all outages."""
        return float(sum(min(t_up, self.duration_s) - t_down
                         for _, t_down, t_up in self.outages))

    def scalar_metrics(self) -> Dict[str, float]:
        """Campaign-aggregatable scalars (deterministic for a fixed seed).

        Excludes wall-clock fields: two executions of the same (params,
        seed) cell must report identical metrics (see
        :mod:`repro.campaign.metrics`).
        """
        return {
            "total_key_bits": self.total_key_bits,
            "expected_key_bits": float(self.expected_key_bits),
            "total_demand_bits": self.total_demand_bits,
            "total_served_bits": self.total_served_bits,
            "total_shortfall_bits": self.total_shortfall_bits,
            "served_fraction": self.served_fraction,
            "pairs_generated": float(sum(self.pairs_generated)),
            "pairs_delivered": float(sum(self.pairs_delivered)),
            "pairs_dropped": float(sum(self.pairs_dropped)),
            "outage_count": float(self.outage_count),
            "outage_seconds": self.outage_seconds,
            "reopt_count": float(len(self.reopt_times)),
            "reopt_failures": float(self.reopt_failures),
            "reroute_count": float(self.reroute_count),
            "reroute_fallbacks": self.reroute_fallbacks,
            "pairs_flushed": float(sum(self.pairs_flushed)),
            "events_processed": float(self.events_processed),
        }

    def deterministic_payload(self) -> Dict:
        """The :mod:`repro.io` payload minus wall-clock-dependent fields.

        Two runs with the same seed and parameters produce equal
        deterministic payloads (and equal ``trace_digest``); this is the
        object the seed-determinism tests compare.
        """
        from repro.io import result_to_dict

        payload = result_to_dict(self)
        payload.pop("wall_time_s", None)
        return payload

    def render(self) -> str:
        rows = []
        for n in range(self.num_routes):
            rows.append([
                n + 1,
                f"{self.allocated_phi[n]:.3f}",
                f"{self.allocated_key_rate[n]:.3f}",
                f"{self.delivered_key_rate[n]:.3f}",
                f"{self.buffer_bits[-1][n]:.1f}" if self.buffer_bits else "-",
                f"{self.shortfall_bits[n]:.1f}",
            ])
        table = format_table(
            ["route", "phi", "key rate (alloc)", "key rate (sim)",
             "buffer (bits)", "shortfall (bits)"],
            rows,
            title=f"simulated {self.duration_s:g}s, seed={self.seed}",
        )
        lines = [
            table,
            f"pairs delivered: {sum(self.pairs_delivered)} "
            f"(generated {sum(self.pairs_generated)}, "
            f"dropped {sum(self.pairs_dropped)})",
            f"key bits delivered: {self.total_key_bits:.1f} "
            f"(expected {self.expected_key_bits:.1f})",
        ]
        if self.total_demand_bits > 0:
            lines.append(
                f"demand served: {self.total_served_bits:.1f} / "
                f"{self.total_demand_bits:.1f} bits "
                f"({100 * self.served_fraction:.1f}%)"
            )
        if self.outages:
            spans = ", ".join(
                f"link {int(l)} [{d:.1f}, {min(u, self.duration_s):.1f}]"
                for l, d, u in self.outages
            )
            lines.append(
                f"outages ({self.outage_count}, {self.outage_seconds:.1f}s down): {spans}"
            )
        if self.reopt_times:
            lines.append(
                f"re-optimizations: {len(self.reopt_times)} "
                f"(failures: {self.reopt_failures})"
            )
        if self.reroutes:
            lines.append(
                f"reroutes: {self.reroute_count} "
                f"({int(sum(row[1] for row in self.reroutes))} route moves, "
                f"{int(self.reroute_fallbacks)} dead-primary fallbacks, "
                f"{sum(self.pairs_flushed)} pairs flushed)"
            )
        lines.append(
            f"events: {self.events_processed} "
            f"({self.events_per_second:,.0f} events/s wall)"
        )
        return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class AdaptiveSimStudy:
    """Adaptive (re-optimizing) vs static policy on identical randomness."""

    adaptive: SimulationResult
    static: SimulationResult

    @property
    def key_bits_gain(self) -> float:
        """Extra secret bits delivered by re-optimizing mid-simulation.

        Empirical (one sample path); ±√N Poisson noise can dominate over
        short horizons — :attr:`expected_gain_bits` is the exact view.
        """
        return self.adaptive.total_key_bits - self.static.total_key_bits

    @property
    def expected_gain_bits(self) -> float:
        """Noise-free adaptation gain: the difference of the analytic
        ``expected_key_bits`` integrals over the shared outage schedule."""
        return self.adaptive.expected_key_bits - self.static.expected_key_bits

    @property
    def expected_gain_fraction(self) -> float:
        """Expected gain relative to the static policy's expected bits."""
        base = self.static.expected_key_bits
        return 0.0 if base == 0 else self.expected_gain_bits / base

    @property
    def shortfall_reduction_bits(self) -> float:
        """Demand shortfall avoided by the adaptive policy."""
        return self.static.total_shortfall_bits - self.adaptive.total_shortfall_bits

    @property
    def served_fraction_gain(self) -> float:
        return self.adaptive.served_fraction - self.static.served_fraction

    @property
    def reopt_count(self) -> int:
        return len(self.adaptive.reopt_times)

    def scalar_metrics(self) -> Dict[str, float]:
        """Campaign-aggregatable scalars of the adaptive-vs-static pair."""
        return {
            "expected_gain_bits": self.expected_gain_bits,
            "expected_gain_fraction": self.expected_gain_fraction,
            "key_bits_gain": self.key_bits_gain,
            "shortfall_reduction_bits": self.shortfall_reduction_bits,
            "served_fraction_gain": self.served_fraction_gain,
            "adaptive_expected_key_bits": float(self.adaptive.expected_key_bits),
            "static_expected_key_bits": float(self.static.expected_key_bits),
            "adaptive_served_fraction": self.adaptive.served_fraction,
            "static_served_fraction": self.static.served_fraction,
            "outage_count": float(self.adaptive.outage_count),
            "reopt_count": float(self.reopt_count),
        }

    def render(self) -> str:
        rows = [
            ["expected key bits",
             f"{self.adaptive.expected_key_bits:.1f}",
             f"{self.static.expected_key_bits:.1f}",
             f"{self.expected_gain_bits:+.1f} "
             f"({100 * self.expected_gain_fraction:+.2f}%)"],
            ["key bits delivered",
             f"{self.adaptive.total_key_bits:.1f}",
             f"{self.static.total_key_bits:.1f}",
             f"{self.key_bits_gain:+.1f}"],
            ["shortfall (bits)",
             f"{self.adaptive.total_shortfall_bits:.1f}",
             f"{self.static.total_shortfall_bits:.1f}",
             f"{-self.shortfall_reduction_bits:+.1f}"],
            ["served fraction",
             f"{self.adaptive.served_fraction:.4f}",
             f"{self.static.served_fraction:.4f}",
             f"{self.served_fraction_gain:+.4f}"],
        ]
        table = format_table(
            ["metric", "adaptive", "static", "delta"],
            rows,
            title=f"adaptation study ({self.reopt_count} re-optimizations, "
                  f"{self.adaptive.outage_count} outages)",
        )
        return table + "\n" + self.adaptive.render()


@dataclass(frozen=True)
class RoutingCompareStudy:
    """Proactive vs reactive rerouting vs route-pinned re-optimization.

    Three runs of the same seed on the same topology: ``proactive``
    switches each client to a precomputed candidate path on outage,
    ``reactive`` recomputes shortest paths against the surviving graph,
    and ``static`` keeps the primary routes and only re-optimizes rates
    (the pre-routing behaviour).  All three see the identical outage
    schedule (``strike="any"`` keeps the disruption pool route-
    independent), so ``expected_key_bits`` deltas isolate the routing
    policy exactly.
    """

    proactive: SimulationResult
    reactive: SimulationResult
    static: SimulationResult

    @property
    def proactive_gain_bits(self) -> float:
        """Expected extra key bits from proactive rerouting vs no rerouting."""
        return self.proactive.expected_key_bits - self.static.expected_key_bits

    @property
    def reactive_gain_bits(self) -> float:
        """Expected extra key bits from reactive rerouting vs no rerouting."""
        return self.reactive.expected_key_bits - self.static.expected_key_bits

    @property
    def best_policy(self) -> str:
        """The run with the highest expected key bits (ties favour static —
        rerouting has to *win* to be worth the churn)."""
        best = "static"
        if self.proactive_gain_bits > 0:
            best = "proactive"
        if (
            self.reactive.expected_key_bits
            > getattr(self, best).expected_key_bits
        ):
            best = "reactive"
        return best

    def scalar_metrics(self) -> Dict[str, float]:
        """Campaign-aggregatable scalars of the three-way comparison."""
        return {
            "proactive_gain_bits": self.proactive_gain_bits,
            "reactive_gain_bits": self.reactive_gain_bits,
            "proactive_expected_key_bits": float(self.proactive.expected_key_bits),
            "reactive_expected_key_bits": float(self.reactive.expected_key_bits),
            "static_expected_key_bits": float(self.static.expected_key_bits),
            "proactive_reroutes": float(self.proactive.reroute_count),
            "reactive_reroutes": float(self.reactive.reroute_count),
            "proactive_fallbacks": self.proactive.reroute_fallbacks,
            "reactive_fallbacks": self.reactive.reroute_fallbacks,
            "proactive_served_fraction": self.proactive.served_fraction,
            "reactive_served_fraction": self.reactive.served_fraction,
            "static_served_fraction": self.static.served_fraction,
            "outage_count": float(self.static.outage_count),
        }

    def render(self) -> str:
        rows = []
        for name in ("proactive", "reactive", "static"):
            run = getattr(self, name)
            rows.append([
                name,
                f"{run.expected_key_bits:.1f}",
                f"{run.total_key_bits:.1f}",
                f"{run.served_fraction:.4f}",
                f"{run.reroute_count}",
                f"{int(run.reroute_fallbacks)}",
                f"{sum(run.pairs_flushed)}",
            ])
        table = format_table(
            ["policy", "expected bits", "delivered bits", "served frac",
             "reroutes", "fallbacks", "flushed"],
            rows,
            title=f"routing study ({self.static.outage_count} outages, "
                  f"best: {self.best_policy})",
        )
        lines = [
            table,
            f"proactive gain: {self.proactive_gain_bits:+.1f} expected bits, "
            f"reactive gain: {self.reactive_gain_bits:+.1f} expected bits "
            f"(vs rate-only re-optimization)",
        ]
        return "\n".join(lines) + "\n"
