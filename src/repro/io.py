"""JSON (de)serialization for allocations and experiment results.

A downstream user wants to solve once, persist the allocation, and replay or
audit it later; the experiment harness wants machine-readable outputs next
to the printed tables.  Formats are plain JSON with explicit versioning.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.solution import Allocation, Metrics

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def allocation_to_dict(alloc: Allocation) -> Dict:
    """Allocation as a JSON-ready dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "allocation",
        "phi": alloc.phi.tolist(),
        "w": alloc.w.tolist(),
        "lam": [int(v) for v in alloc.lam],
        "p": alloc.p.tolist(),
        "b": alloc.b.tolist(),
        "f_c": alloc.f_c.tolist(),
        "f_s": alloc.f_s.tolist(),
        "T": None if alloc.T is None else float(alloc.T),
    }


def allocation_from_dict(data: Dict) -> Allocation:
    """Inverse of :func:`allocation_to_dict`, with format validation."""
    if data.get("kind") != "allocation":
        raise ValueError(f"not an allocation payload: kind={data.get('kind')!r}")
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {version!r} (supported: {FORMAT_VERSION})"
        )
    required = ("phi", "w", "lam", "p", "b", "f_c", "f_s")
    missing = [key for key in required if key not in data]
    if missing:
        raise ValueError(f"allocation payload missing fields: {missing}")
    return Allocation(
        phi=np.asarray(data["phi"], dtype=float),
        w=np.asarray(data["w"], dtype=float),
        lam=np.asarray(data["lam"], dtype=float),
        p=np.asarray(data["p"], dtype=float),
        b=np.asarray(data["b"], dtype=float),
        f_c=np.asarray(data["f_c"], dtype=float),
        f_s=np.asarray(data["f_s"], dtype=float),
        T=data.get("T"),
    )


def metrics_to_dict(metrics: Metrics) -> Dict:
    """Metrics as a JSON-ready dictionary (per-node arrays included)."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "metrics",
        "u_qkd": metrics.u_qkd,
        "u_msl": metrics.u_msl,
        "total_delay_s": metrics.total_delay,
        "total_energy_j": metrics.total_energy,
        "objective": metrics.objective,
        "per_node": {
            "enc_delay": metrics.enc_delay.tolist(),
            "tr_delay": metrics.tr_delay.tolist(),
            "cmp_delay": metrics.cmp_delay.tolist(),
            "enc_energy": metrics.enc_energy.tolist(),
            "tr_energy": metrics.tr_energy.tolist(),
            "cmp_energy": metrics.cmp_energy.tolist(),
        },
    }


def save_allocation(alloc: Allocation, path: PathLike, *, metrics: Optional[Metrics] = None) -> None:
    """Write an allocation (and optionally its metrics) to a JSON file."""
    payload: Dict = {"allocation": allocation_to_dict(alloc)}
    if metrics is not None:
        payload["metrics"] = metrics_to_dict(metrics)
    Path(path).write_text(json.dumps(payload, indent=2))


def load_allocation(path: PathLike) -> Allocation:
    """Read an allocation back from :func:`save_allocation` output."""
    payload = json.loads(Path(path).read_text())
    if "allocation" not in payload:
        raise ValueError(f"{path}: no 'allocation' object in file")
    return allocation_from_dict(payload["allocation"])
