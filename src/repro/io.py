"""JSON (de)serialization for allocations and every experiment result.

A downstream user wants to solve once, persist the result, and replay or
audit it later; the experiment harness wants machine-readable outputs next
to the printed tables.  Formats are plain JSON with explicit versioning.

Two layers:

* the original allocation/metrics helpers (:func:`allocation_to_dict`,
  :func:`save_allocation`, …), kept verbatim for compatibility;
* a **codec registry** covering every scenario result type.  Each registered
  codec owns a ``kind`` tag and a ``format_version``;
  :func:`result_to_dict` dispatches on the object's type and
  :func:`result_from_dict` on the payload's ``kind``, so any registered
  experiment result — :class:`~repro.core.quhe.QuHEResult`, a Fig.-6
  :class:`~repro.experiments.fig6_sweeps.SweepSet`, a full
  :class:`~repro.experiments.report.ReportBundle` — round-trips losslessly::

      payload = result_to_dict(QuHE(cfg).solve())
      restored = result_from_dict(payload)        # a QuHEResult again

  New scenario result types plug in with :func:`register_codec`.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from dataclasses import dataclass
from io import BytesIO
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Type, Union

import numpy as np

from repro import faults as _faults
from repro.core.solution import Allocation, Metrics
from repro.errors import ArtifactError, TransientIOError

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Durably write ``text`` to ``path``: tmp + flush + fsync + ``os.replace``.

    The temp file lives in the target's directory so the final rename is a
    same-filesystem atomic replace — a reader never observes a partial file,
    and a crash mid-write leaves the previous content (or nothing) intact.

    This is also the ``artifact.write`` fault seam: under an active
    :mod:`repro.faults` plan a ``torn_write``/``truncate`` rule deliberately
    leaves a corrupt file at ``path`` (bypassing the atomic dance, the way a
    legacy non-atomic writer would after a crash) and raises
    :class:`~repro.errors.TransientIOError` so hardened callers retry.
    """
    target = Path(path)
    rule = _faults.fire("artifact.write")
    if rule is not None and rule.kind in ("torn_write", "truncate"):
        torn = "" if rule.kind == "truncate" else text[: max(1, len(text) // 2)]
        target.write_text(torn)
        raise TransientIOError(
            f"injected {rule.kind} while writing {target}"
        )
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def atomic_write_bytes(
    path: PathLike, data: bytes, *, fault_seam: str | None = "artifact.write"
) -> Path:
    """Binary sibling of :func:`atomic_write_text` (same ``artifact.write``
    fault seam, same tmp + fsync + ``os.replace`` dance).

    ``fault_seam=None`` opts the write out of fault injection *and* of the
    seam's deterministic RNG stream.  Rebuildable caches (the campaign's
    canonical npz chunks) need this: whether such a file is written or
    loaded may differ between a resumed and an uninterrupted run, and an
    optional write that consumed a draw would phase-shift every later
    ``artifact.write`` decision — breaking the resume byte-identity
    contract for runs under an active fault plan.
    """
    target = Path(path)
    rule = _faults.fire(fault_seam) if fault_seam is not None else None
    if rule is not None and rule.kind in ("torn_write", "truncate"):
        torn = b"" if rule.kind == "truncate" else data[: max(1, len(data) // 2)]
        target.write_bytes(torn)
        raise TransientIOError(
            f"injected {rule.kind} while writing {target}"
        )
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def allocation_to_dict(alloc: Allocation) -> Dict:
    """Allocation as a JSON-ready dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "allocation",
        "phi": alloc.phi.tolist(),
        "w": alloc.w.tolist(),
        "lam": [int(v) for v in alloc.lam],
        "p": alloc.p.tolist(),
        "b": alloc.b.tolist(),
        "f_c": alloc.f_c.tolist(),
        "f_s": alloc.f_s.tolist(),
        "T": None if alloc.T is None else float(alloc.T),
    }


def allocation_from_dict(data: Dict) -> Allocation:
    """Inverse of :func:`allocation_to_dict`, with format validation."""
    if data.get("kind") != "allocation":
        raise ValueError(f"not an allocation payload: kind={data.get('kind')!r}")
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {version!r} (supported: {FORMAT_VERSION})"
        )
    required = ("phi", "w", "lam", "p", "b", "f_c", "f_s")
    missing = [key for key in required if key not in data]
    if missing:
        raise ValueError(f"allocation payload missing fields: {missing}")
    return Allocation(
        phi=np.asarray(data["phi"], dtype=float),
        w=np.asarray(data["w"], dtype=float),
        lam=np.asarray(data["lam"], dtype=float),
        p=np.asarray(data["p"], dtype=float),
        b=np.asarray(data["b"], dtype=float),
        f_c=np.asarray(data["f_c"], dtype=float),
        f_s=np.asarray(data["f_s"], dtype=float),
        T=data.get("T"),
    )


def metrics_to_dict(metrics: Metrics) -> Dict:
    """Metrics as a JSON-ready dictionary (per-node arrays included)."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "metrics",
        "u_qkd": metrics.u_qkd,
        "u_msl": metrics.u_msl,
        "total_delay_s": metrics.total_delay,
        "total_energy_j": metrics.total_energy,
        "objective": metrics.objective,
        "per_node": {
            "enc_delay": metrics.enc_delay.tolist(),
            "tr_delay": metrics.tr_delay.tolist(),
            "cmp_delay": metrics.cmp_delay.tolist(),
            "enc_energy": metrics.enc_energy.tolist(),
            "tr_energy": metrics.tr_energy.tolist(),
            "cmp_energy": metrics.cmp_energy.tolist(),
        },
    }


def metrics_from_dict(data: Dict) -> Metrics:
    """Inverse of :func:`metrics_to_dict`."""
    per_node = data["per_node"]
    return Metrics(
        u_qkd=float(data["u_qkd"]),
        u_msl=float(data["u_msl"]),
        enc_delay=np.asarray(per_node["enc_delay"], dtype=float),
        tr_delay=np.asarray(per_node["tr_delay"], dtype=float),
        cmp_delay=np.asarray(per_node["cmp_delay"], dtype=float),
        enc_energy=np.asarray(per_node["enc_energy"], dtype=float),
        tr_energy=np.asarray(per_node["tr_energy"], dtype=float),
        cmp_energy=np.asarray(per_node["cmp_energy"], dtype=float),
        total_delay=float(data["total_delay_s"]),
        total_energy=float(data["total_energy_j"]),
        objective=float(data["objective"]),
    )


def save_allocation(alloc: Allocation, path: PathLike, *, metrics: Optional[Metrics] = None) -> None:
    """Write an allocation (and optionally its metrics) to a JSON file."""
    payload: Dict = {"allocation": allocation_to_dict(alloc)}
    if metrics is not None:
        payload["metrics"] = metrics_to_dict(metrics)
    Path(path).write_text(json.dumps(payload, indent=2))


def load_allocation(path: PathLike) -> Allocation:
    """Read an allocation back from :func:`save_allocation` output."""
    payload = json.loads(Path(path).read_text())
    if "allocation" not in payload:
        raise ValueError(f"{path}: no 'allocation' object in file")
    return allocation_from_dict(payload["allocation"])


# ---------------------------------------------------------------------------
# Codec registry: one versioned schema per experiment result type.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResultCodec:
    """Serialization rules for one result type."""

    kind: str
    cls: Type
    encode: Callable[[Any], Dict]
    decode: Callable[[Dict], Any]
    version: int = 1


_CODECS_BY_KIND: Dict[str, ResultCodec] = {}
_CODECS_BY_TYPE: Dict[Type, ResultCodec] = {}
_BUILTINS_REGISTERED = False


def register_codec(
    kind: str,
    cls: Type,
    encode: Callable[[Any], Dict],
    decode: Callable[[Dict], Any],
    *,
    version: int = 1,
) -> ResultCodec:
    """Register a (de)serializer for ``cls`` under the ``kind`` tag.

    ``encode`` returns the body fields only; ``kind`` and ``format_version``
    are stamped on by :func:`result_to_dict`.  ``decode`` receives the full
    payload (version already validated) and returns an instance of ``cls``.

    A new result type plugs in with one call (each ``kind`` and each type
    may be registered once per process):

    >>> from dataclasses import dataclass
    >>> @dataclass
    ... class DemoPoint:
    ...     x: float
    ...     y: float
    >>> codec = register_codec(
    ...     "demo_point", DemoPoint,
    ...     lambda p: {"x": p.x, "y": p.y},
    ...     lambda d: DemoPoint(x=d["x"], y=d["y"]))
    >>> payload = result_to_dict(DemoPoint(1.0, 2.0))
    >>> payload["kind"], payload["format_version"]
    ('demo_point', 1)
    >>> result_from_dict(payload)
    DemoPoint(x=1.0, y=2.0)
    """
    if kind in _CODECS_BY_KIND:
        raise ValueError(f"codec kind {kind!r} already registered")
    if cls in _CODECS_BY_TYPE:
        raise ValueError(f"codec for type {cls.__name__} already registered")
    codec = ResultCodec(kind=kind, cls=cls, encode=encode, decode=decode, version=version)
    _CODECS_BY_KIND[kind] = codec
    _CODECS_BY_TYPE[cls] = codec
    return codec


def registered_kinds() -> List[str]:
    """All codec kinds (built-ins registered on demand)."""
    _ensure_builtin_codecs()
    return sorted(_CODECS_BY_KIND)


def result_to_dict(obj: Any) -> Dict:
    """Serialize any registered result object to a JSON-ready payload.

    Dispatch is on the object's type; the payload carries the codec's
    ``kind`` tag and ``format_version`` so :func:`result_from_dict` can
    reverse it:

    >>> import numpy as np
    >>> from repro.core.solution import Allocation
    >>> alloc = Allocation(
    ...     phi=np.ones(2), w=np.ones(3), lam=np.array([1024.0, 2048.0]),
    ...     p=np.ones(2), b=np.ones(2), f_c=np.ones(2), f_s=np.ones(2), T=1.0)
    >>> payload = result_to_dict(alloc)
    >>> payload["kind"], payload["format_version"], payload["lam"]
    ('allocation', 1, [1024, 2048])
    >>> restored = result_from_dict(payload)
    >>> np.array_equal(restored.phi, alloc.phi)
    True
    """
    _ensure_builtin_codecs()
    codec = _CODECS_BY_TYPE.get(type(obj))
    if codec is None:
        raise TypeError(
            f"no codec registered for {type(obj).__name__}; "
            f"known kinds: {registered_kinds()}"
        )
    payload = codec.encode(obj)
    payload["kind"] = codec.kind
    payload["format_version"] = codec.version
    return payload


def result_from_dict(data: Dict) -> Any:
    """Inverse of :func:`result_to_dict`, dispatching on ``kind``.

    Unknown kinds and version mismatches are explicit errors, never silent
    misdecodes:

    >>> result_from_dict({"kind": "no_such_kind"})
    Traceback (most recent call last):
        ...
    ValueError: unknown result kind 'no_such_kind'; known kinds: [...]
    """
    _ensure_builtin_codecs()
    kind = data.get("kind")
    codec = _CODECS_BY_KIND.get(kind)
    if codec is None:
        raise ValueError(
            f"unknown result kind {kind!r}; known kinds: {registered_kinds()}"
        )
    version = data.get("format_version")
    if version != codec.version:
        raise ValueError(
            f"{kind}: unsupported format version {version!r} "
            f"(supported: {codec.version})"
        )
    return codec.decode(data)


def save_result(obj: Any, path: PathLike) -> Path:
    """Write any registered result object to a JSON file (atomically)."""
    return atomic_write_text(path, json.dumps(result_to_dict(obj), indent=2) + "\n")


def load_result(path: PathLike) -> Any:
    """Read back a result written by :func:`save_result`.

    Corrupt artifacts (truncated JSON, zero-byte files, wrong-kind payloads)
    raise :class:`~repro.errors.ArtifactError` naming the offending path.
    """
    source = Path(path)
    try:
        text = source.read_text()
    except FileNotFoundError:
        raise
    except OSError as exc:
        raise ArtifactError(
            f"{source}: unreadable result artifact: {exc}", path=str(source)
        ) from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        detail = "zero-byte file" if not text else f"invalid JSON ({exc})"
        raise ArtifactError(
            f"{source}: corrupt result artifact: {detail}", path=str(source)
        ) from exc
    try:
        return result_from_dict(payload)
    except ValueError as exc:
        raise ArtifactError(
            f"{source}: {exc}", path=str(source)
        ) from exc


# -- columnar npz artifacts ---------------------------------------------------
#
# ConfigBatch / SolutionBatch additionally serialize to uncompressed npz:
# each numeric column is one ZIP_STORED .npy member, so a reader can
# memory-map the raw float data straight out of the archive — no JSON
# parse, no copy.  A `__meta__` member carries the codec kind, format
# version and the non-numeric identity payload as a JSON string.


def save_batch_npz(obj: Any, path: PathLike) -> Path:
    """Write a columnar batch as an uncompressed npz artifact (atomically).

    Works for any registered codec type exposing ``to_arrays()`` (today:
    :class:`~repro.core.batch.ConfigBatch` and
    :class:`~repro.core.batch.SolutionBatch`).  The file is a standard npz —
    ``np.load`` reads it — but :func:`load_batch_npz` additionally
    memory-maps the columns zero-copy.
    """
    _ensure_builtin_codecs()
    codec = _CODECS_BY_TYPE.get(type(obj))
    if codec is None or not hasattr(obj, "to_arrays"):
        raise TypeError(
            f"no columnar codec for {type(obj).__name__}; "
            "expected ConfigBatch or SolutionBatch"
        )
    arrays, meta = obj.to_arrays()
    header = {"kind": codec.kind, "format_version": codec.version, "meta": meta}
    members = dict(arrays)
    members["__meta__"] = np.asarray(json.dumps(header, sort_keys=True))
    buffer = BytesIO()
    np.savez(buffer, **members)
    # Batch artifacts are rebuildable caches; see atomic_write_bytes for
    # why they must stay outside the artifact.write fault stream.
    return atomic_write_bytes(path, buffer.getvalue(), fault_seam=None)


def _read_member(archive: zipfile.ZipFile, name: str) -> np.ndarray:
    return np.lib.format.read_array(
        BytesIO(archive.read(name)), allow_pickle=False
    )


def _memmap_member(
    path: Path, archive: zipfile.ZipFile, name: str
) -> Optional[np.ndarray]:
    """Map one ZIP_STORED .npy member directly from the file, or ``None``.

    The zip local file header gives the member's data offset; the npy
    header after it gives dtype/shape — everything np.memmap needs.  Any
    surprise (compressed member, object dtype, empty array, exotic npy
    version) returns ``None`` and the caller falls back to an eager read.
    """
    try:
        info = archive.getinfo(name)
        if info.compress_type != zipfile.ZIP_STORED:
            return None
        with open(path, "rb") as handle:
            handle.seek(info.header_offset)
            local = handle.read(30)
            if len(local) < 30 or local[:4] != b"PK\x03\x04":
                return None
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            handle.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(
                    handle
                )
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(
                    handle
                )
            else:
                return None
            if dtype.hasobject or shape == () or 0 in shape:
                return None
            offset = handle.tell()
        return np.memmap(
            path,
            dtype=dtype,
            mode="r",
            offset=offset,
            shape=shape,
            order="F" if fortran else "C",
        )
    except Exception:
        return None


def load_batch_npz(path: PathLike, *, memmap: bool = True) -> Any:
    """Read back a batch written by :func:`save_batch_npz`.

    With ``memmap=True`` (the default) the numeric columns are
    ``np.memmap`` views into the file — the artifact streams without a
    parse or copy; pass ``memmap=False`` to materialize them in memory.
    Corrupt archives (truncated, zero-byte, missing meta) raise
    :class:`~repro.errors.ArtifactError` naming the offending path; version
    mismatches surface the same way as the JSON codecs.
    """
    _ensure_builtin_codecs()
    source = Path(path)
    try:
        archive = zipfile.ZipFile(source)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError) as exc:
        raise ArtifactError(
            f"{source}: corrupt batch artifact: {exc}", path=str(source)
        ) from exc
    with archive:
        names = archive.namelist()
        if "__meta__.npy" not in names:
            raise ArtifactError(
                f"{source}: corrupt batch artifact: missing __meta__ member",
                path=str(source),
            )
        try:
            header_arr = _read_member(archive, "__meta__.npy")
            header = json.loads(str(header_arr[()]))
        except (ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise ArtifactError(
                f"{source}: corrupt batch artifact: bad __meta__ member "
                f"({exc})",
                path=str(source),
            ) from exc
        kind = header.get("kind")
        codec = _CODECS_BY_KIND.get(kind)
        if codec is None or not hasattr(codec.cls, "from_arrays"):
            raise ArtifactError(
                f"{source}: unknown batch kind {kind!r}; "
                f"known kinds: {registered_kinds()}",
                path=str(source),
            )
        version = header.get("format_version")
        if version != codec.version:
            raise ArtifactError(
                f"{source}: {kind}: unsupported format version {version!r} "
                f"(supported: {codec.version})",
                path=str(source),
            )
        arrays: Dict[str, np.ndarray] = {}
        try:
            for name in names:
                if name == "__meta__.npy":
                    continue
                key = name[:-4] if name.endswith(".npy") else name
                arr = _memmap_member(source, archive, name) if memmap else None
                if arr is None:
                    arr = _read_member(archive, name)
                arrays[key] = arr
        except (ValueError, zipfile.BadZipFile) as exc:
            raise ArtifactError(
                f"{source}: corrupt batch artifact: {exc}", path=str(source)
            ) from exc
    try:
        return codec.cls.from_arrays(arrays, header.get("meta", {}))
    except (ValueError, KeyError, TypeError) as exc:
        raise ArtifactError(
            f"{source}: corrupt batch artifact: {exc}", path=str(source)
        ) from exc


# -- helpers -----------------------------------------------------------------


def _floats(values) -> List[float]:
    return [float(v) for v in values]


# -- built-in codecs ---------------------------------------------------------
#
# Registered lazily on first use: the experiment modules import solvers
# (scipy etc.) and some of them import repro.io themselves, so eager
# registration at module import time would create cycles.


def _ensure_builtin_codecs() -> None:
    global _BUILTINS_REGISTERED
    if _BUILTINS_REGISTERED:
        return
    before = set(_CODECS_BY_KIND)
    try:
        _register_builtin_codecs()
    except BaseException:
        # Roll back this call's partial registrations so the next caller
        # retries from a clean slate and sees the real import error, not a
        # misleading "no codec registered" message.
        for kind in set(_CODECS_BY_KIND) - before:
            codec = _CODECS_BY_KIND.pop(kind)
            _CODECS_BY_TYPE.pop(codec.cls, None)
        raise
    _BUILTINS_REGISTERED = True


def _register_builtin_codecs() -> None:
    from repro.core.batch import ConfigBatch, SolutionBatch
    from repro.core.quhe import QuHEResult
    from repro.core.stage1 import Stage1Result
    from repro.core.stage2 import Stage2Result
    from repro.core.stage3 import Stage3Result
    from repro.experiments.ablations import (
        AblationSuite,
        BnbAblation,
        ConvexificationAblation,
        TransformAblation,
        WeightPoint,
    )
    from repro.experiments.dynamic import DynamicStudy, EpochResult
    from repro.experiments.fig3_optimality import OptimalityStudy
    from repro.experiments.fig4_convergence import ConvergenceTraces
    from repro.experiments.fig5_comparison import (
        Fig5Bundle,
        MethodComparison,
        MethodRow,
        StageCallReport,
    )
    from repro.experiments.fig6_sweeps import SweepSeries, SweepSet
    from repro.experiments.report import ReportBundle
    from repro.experiments.tables import Stage1MethodComparison
    from repro.pipeline import PipelineReport
    from repro.sim.result import (
        AdaptiveSimStudy,
        RoutingCompareStudy,
        SimulationResult,
    )

    register_codec(
        "allocation",
        Allocation,
        lambda a: {k: v for k, v in allocation_to_dict(a).items()
                   if k not in ("kind", "format_version")},
        allocation_from_dict,
    )
    register_codec(
        "metrics",
        Metrics,
        lambda m: {k: v for k, v in metrics_to_dict(m).items()
                   if k not in ("kind", "format_version")},
        metrics_from_dict,
    )

    register_codec(
        "config_batch",
        ConfigBatch,
        lambda b: b.to_jsonable(),
        lambda d: ConfigBatch.from_jsonable(d),
    )
    register_codec(
        "solution_batch",
        SolutionBatch,
        lambda b: b.to_jsonable(),
        lambda d: SolutionBatch.from_jsonable(d),
    )
    register_codec(
        "stage1_result",
        Stage1Result,
        lambda r: {
            "phi": r.phi.tolist(),
            "w": r.w.tolist(),
            "value": float(r.value),
            "iterations": int(r.iterations),
            "runtime_s": float(r.runtime_s),
            "history": _floats(r.history),
            "converged": bool(r.converged),
        },
        lambda d: Stage1Result(
            phi=np.asarray(d["phi"], dtype=float),
            w=np.asarray(d["w"], dtype=float),
            value=d["value"],
            iterations=d["iterations"],
            runtime_s=d["runtime_s"],
            history=list(d["history"]),
            converged=d["converged"],
        ),
    )
    register_codec(
        "stage2_result",
        Stage2Result,
        lambda r: {
            "lam": [int(v) for v in r.lam],
            "T": float(r.T),
            "value": float(r.value),
            "nodes_explored": int(r.nodes_explored),
            "runtime_s": float(r.runtime_s),
            "history": _floats(r.history),
        },
        lambda d: Stage2Result(
            lam=np.asarray(d["lam"], dtype=float),
            T=d["T"],
            value=d["value"],
            nodes_explored=d["nodes_explored"],
            runtime_s=d["runtime_s"],
            history=list(d["history"]),
        ),
    )
    register_codec(
        "stage3_result",
        Stage3Result,
        lambda r: {
            "p": r.p.tolist(),
            "b": r.b.tolist(),
            "f_c": r.f_c.tolist(),
            "f_s": r.f_s.tolist(),
            "T": float(r.T),
            "value": float(r.value),
            "outer_iterations": int(r.outer_iterations),
            "runtime_s": float(r.runtime_s),
            "history": _floats(r.history),
            "transform_gap": _floats(r.transform_gap),
        },
        lambda d: Stage3Result(
            p=np.asarray(d["p"], dtype=float),
            b=np.asarray(d["b"], dtype=float),
            f_c=np.asarray(d["f_c"], dtype=float),
            f_s=np.asarray(d["f_s"], dtype=float),
            T=d["T"],
            value=d["value"],
            outer_iterations=d["outer_iterations"],
            runtime_s=d["runtime_s"],
            history=list(d["history"]),
            transform_gap=list(d["transform_gap"]),
        ),
    )
    register_codec(
        "quhe_result",
        QuHEResult,
        lambda r: {
            "allocation": allocation_to_dict(r.allocation),
            "metrics": metrics_to_dict(r.metrics),
            "objective_history": _floats(r.objective_history),
            "stage1": result_to_dict(r.stage1),
            "stage2": result_to_dict(r.stage2),
            "stage3": result_to_dict(r.stage3),
            "stage1_calls": int(r.stage1_calls),
            "stage2_calls": int(r.stage2_calls),
            "stage3_calls": int(r.stage3_calls),
            "outer_iterations": int(r.outer_iterations),
            "runtime_s": float(r.runtime_s),
            "converged": bool(r.converged),
            "degraded": bool(r.degraded),
        },
        lambda d: QuHEResult(
            allocation=allocation_from_dict(d["allocation"]),
            metrics=metrics_from_dict(d["metrics"]),
            objective_history=list(d["objective_history"]),
            stage1=result_from_dict(d["stage1"]),
            stage2=result_from_dict(d["stage2"]),
            stage3=result_from_dict(d["stage3"]),
            stage1_calls=d["stage1_calls"],
            stage2_calls=d["stage2_calls"],
            stage3_calls=d["stage3_calls"],
            outer_iterations=d["outer_iterations"],
            runtime_s=d["runtime_s"],
            converged=d["converged"],
            # Absent in pre-robustness artifacts: same format version, the
            # primary path was the only path then.
            degraded=d.get("degraded", False),
        ),
    )

    register_codec(
        "stage1_method_comparison",
        Stage1MethodComparison,
        lambda c: {
            "results": {name: result_to_dict(res) for name, res in c.results.items()}
        },
        lambda d: Stage1MethodComparison(
            results={name: result_from_dict(res) for name, res in d["results"].items()}
        ),
    )
    register_codec(
        "optimality_study",
        OptimalityStudy,
        lambda s: {
            "values": s.values.tolist(),
            "bin_edges": [[float(lo), float(hi)] for lo, hi in s.bin_edges],
            "bin_counts": [int(c) for c in s.bin_counts],
        },
        lambda d: OptimalityStudy(
            values=np.asarray(d["values"], dtype=float),
            bin_edges=tuple((lo, hi) for lo, hi in d["bin_edges"]),
            bin_counts=list(d["bin_counts"]),
        ),
    )
    register_codec(
        "convergence_traces",
        ConvergenceTraces,
        lambda t: {
            "stage1_objective": _floats(t.stage1_objective),
            "stage2_incumbent": _floats(t.stage2_incumbent),
            "stage3_objective": _floats(t.stage3_objective),
            "stage3_gap": _floats(t.stage3_gap),
            "stage1_iterations": int(t.stage1_iterations),
            "stage2_nodes": int(t.stage2_nodes),
            "stage3_iterations": int(t.stage3_iterations),
            "outer_iterations": int(t.outer_iterations),
            "total_runtime_s": float(t.total_runtime_s),
        },
        lambda d: ConvergenceTraces(
            stage1_objective=list(d["stage1_objective"]),
            stage2_incumbent=list(d["stage2_incumbent"]),
            stage3_objective=list(d["stage3_objective"]),
            stage3_gap=list(d["stage3_gap"]),
            stage1_iterations=d["stage1_iterations"],
            stage2_nodes=d["stage2_nodes"],
            stage3_iterations=d["stage3_iterations"],
            outer_iterations=d["outer_iterations"],
            total_runtime_s=d["total_runtime_s"],
        ),
    )
    register_codec(
        "stage_call_report",
        StageCallReport,
        lambda r: {
            "stage1_calls": int(r.stage1_calls),
            "stage2_calls": int(r.stage2_calls),
            "stage3_calls": int(r.stage3_calls),
            "runtime_s": float(r.runtime_s),
        },
        lambda d: StageCallReport(
            stage1_calls=d["stage1_calls"],
            stage2_calls=d["stage2_calls"],
            stage3_calls=d["stage3_calls"],
            runtime_s=d["runtime_s"],
        ),
    )
    register_codec(
        "method_comparison",
        MethodComparison,
        lambda c: {
            "rows": [
                {
                    "method": r.method,
                    "energy_j": float(r.energy_j),
                    "delay_s": float(r.delay_s),
                    "u_msl": float(r.u_msl),
                    "objective": float(r.objective),
                }
                for r in c.rows
            ]
        },
        lambda d: MethodComparison(rows=[MethodRow(**row) for row in d["rows"]]),
    )
    register_codec(
        "fig5_bundle",
        Fig5Bundle,
        lambda b: {
            "stage_calls": result_to_dict(b.stage_calls),
            "stage1_methods": result_to_dict(b.stage1_methods),
            "methods": result_to_dict(b.methods),
        },
        lambda d: Fig5Bundle(
            stage_calls=result_from_dict(d["stage_calls"]),
            stage1_methods=result_from_dict(d["stage1_methods"]),
            methods=result_from_dict(d["methods"]),
        ),
    )
    register_codec(
        "sweep_series",
        SweepSeries,
        lambda s: {
            "parameter": s.parameter,
            "x_values": s.x_values.tolist(),
            "objectives": {m: _floats(v) for m, v in s.objectives.items()},
        },
        lambda d: SweepSeries(
            parameter=d["parameter"],
            x_values=np.asarray(d["x_values"], dtype=float),
            objectives={m: list(v) for m, v in d["objectives"].items()},
        ),
    )
    register_codec(
        "sweep_set",
        SweepSet,
        lambda s: {
            "panels": {name: result_to_dict(series) for name, series in s.panels.items()}
        },
        lambda d: SweepSet(
            panels={
                name: result_from_dict(series) for name, series in d["panels"].items()
            }
        ),
    )
    register_codec(
        "ablation_suite",
        AblationSuite,
        lambda s: {
            "bnb": {
                "bnb_value": float(s.bnb.bnb_value),
                "exhaustive_value": float(s.bnb.exhaustive_value),
                "bnb_nodes": int(s.bnb.bnb_nodes),
                "exhaustive_nodes": int(s.bnb.exhaustive_nodes),
                "identical_argmax": bool(s.bnb.identical_argmax),
            },
            "transform": {
                "transform_value": float(s.transform.transform_value),
                "direct_value": float(s.transform.direct_value),
                "transform_runtime_s": float(s.transform.transform_runtime_s),
                "direct_runtime_s": float(s.transform.direct_runtime_s),
            },
            "weights": [
                {
                    "alpha_msl": float(p.alpha_msl),
                    "lam": [int(v) for v in p.lam],
                    "u_msl": float(p.u_msl),
                    "total_energy": float(p.total_energy),
                    "objective": float(p.objective),
                }
                for p in s.weights
            ],
            "activation_threshold": float(s.activation_threshold),
            "convexification": {
                "log_space_value": float(s.convexification.log_space_value),
                "raw_space_value": float(s.convexification.raw_space_value),
                "raw_space_converged": bool(s.convexification.raw_space_converged),
            },
        },
        lambda d: AblationSuite(
            bnb=BnbAblation(**d["bnb"]),
            transform=TransformAblation(**d["transform"]),
            weights=[
                WeightPoint(
                    alpha_msl=p["alpha_msl"],
                    lam=np.asarray(p["lam"], dtype=float),
                    u_msl=p["u_msl"],
                    total_energy=p["total_energy"],
                    objective=p["objective"],
                )
                for p in d["weights"]
            ],
            activation_threshold=d["activation_threshold"],
            convexification=ConvexificationAblation(**d["convexification"]),
        ),
    )
    register_codec(
        "dynamic_study",
        DynamicStudy,
        lambda s: {
            "epochs": [
                {
                    "epoch": int(e.epoch),
                    "gains": e.gains.tolist(),
                    "adaptive_objective": float(e.adaptive_objective),
                    "static_objective": float(e.static_objective),
                }
                for e in s.epochs
            ],
            "baseline_allocation": allocation_to_dict(s.baseline_allocation),
        },
        lambda d: DynamicStudy(
            epochs=[
                EpochResult(
                    epoch=e["epoch"],
                    gains=np.asarray(e["gains"], dtype=float),
                    adaptive_objective=e["adaptive_objective"],
                    static_objective=e["static_objective"],
                )
                for e in d["epochs"]
            ],
            baseline_allocation=allocation_from_dict(d["baseline_allocation"]),
        ),
    )
    register_codec(
        "pipeline_report",
        PipelineReport,
        lambda r: {
            "client_index": int(r.client_index),
            "qkd_key_bytes": int(r.qkd_key_bytes),
            "uplink_bits": float(r.uplink_bits),
            "uplink_delay_s": float(r.uplink_delay_s),
            "uplink_energy_j": float(r.uplink_energy_j),
            "prediction": np.asarray(r.prediction, dtype=float).tolist(),
            "plaintext_reference": np.asarray(
                r.plaintext_reference, dtype=float
            ).tolist(),
        },
        lambda d: PipelineReport(
            client_index=d["client_index"],
            qkd_key_bytes=d["qkd_key_bytes"],
            uplink_bits=d["uplink_bits"],
            uplink_delay_s=d["uplink_delay_s"],
            uplink_energy_j=d["uplink_energy_j"],
            prediction=np.asarray(d["prediction"], dtype=float),
            plaintext_reference=np.asarray(d["plaintext_reference"], dtype=float),
        ),
    )
    register_codec(
        "simulation_result",
        SimulationResult,
        lambda r: {
            "duration_s": float(r.duration_s),
            "seed": int(r.seed),
            "allocated_phi": _floats(r.allocated_phi),
            "allocated_key_rate": _floats(r.allocated_key_rate),
            "demand_rate": _floats(r.demand_rate),
            "sample_times": _floats(r.sample_times),
            "buffer_bits": [_floats(row) for row in r.buffer_bits],
            "delivered_bits_series": [
                _floats(row) for row in r.delivered_bits_series
            ],
            "shortfall_bits_series": [
                _floats(row) for row in r.shortfall_bits_series
            ],
            "pairs_generated": [int(v) for v in r.pairs_generated],
            "pairs_delivered": [int(v) for v in r.pairs_delivered],
            "pairs_dropped": [int(v) for v in r.pairs_dropped],
            "delivered_bits": _floats(r.delivered_bits),
            "demand_bits": _floats(r.demand_bits),
            "served_bits": _floats(r.served_bits),
            "shortfall_bits": _floats(r.shortfall_bits),
            "expected_key_bits": float(r.expected_key_bits),
            "outages": [_floats(entry) for entry in r.outages],
            "reopt_times": _floats(r.reopt_times),
            "reopt_failures": int(r.reopt_failures),
            "events_processed": int(r.events_processed),
            "wall_time_s": float(r.wall_time_s),
            "trace_digest": str(r.trace_digest),
            "reroutes": [_floats(entry) for entry in r.reroutes],
            "pairs_flushed": [int(v) for v in r.pairs_flushed],
            "final_route_links": [
                [int(l) for l in row] for row in r.final_route_links
            ],
        },
        lambda d: SimulationResult(
            duration_s=d["duration_s"],
            seed=d["seed"],
            allocated_phi=list(d["allocated_phi"]),
            allocated_key_rate=list(d["allocated_key_rate"]),
            demand_rate=list(d["demand_rate"]),
            sample_times=list(d["sample_times"]),
            buffer_bits=[list(row) for row in d["buffer_bits"]],
            delivered_bits_series=[
                list(row) for row in d["delivered_bits_series"]
            ],
            shortfall_bits_series=[
                list(row) for row in d["shortfall_bits_series"]
            ],
            pairs_generated=list(d["pairs_generated"]),
            pairs_delivered=list(d["pairs_delivered"]),
            pairs_dropped=list(d["pairs_dropped"]),
            delivered_bits=list(d["delivered_bits"]),
            demand_bits=list(d["demand_bits"]),
            served_bits=list(d["served_bits"]),
            shortfall_bits=list(d["shortfall_bits"]),
            expected_key_bits=d["expected_key_bits"],
            outages=[list(entry) for entry in d["outages"]],
            reopt_times=list(d["reopt_times"]),
            reopt_failures=d["reopt_failures"],
            events_processed=d["events_processed"],
            wall_time_s=d["wall_time_s"],
            trace_digest=d["trace_digest"],
            # pre-routing artifacts lack the routing fields
            reroutes=[list(entry) for entry in d.get("reroutes", [])],
            pairs_flushed=list(d.get("pairs_flushed", [])),
            final_route_links=[
                list(row) for row in d.get("final_route_links", [])
            ],
        ),
    )
    register_codec(
        "adaptive_sim_study",
        AdaptiveSimStudy,
        lambda s: {
            "adaptive": result_to_dict(s.adaptive),
            "static": result_to_dict(s.static),
        },
        lambda d: AdaptiveSimStudy(
            adaptive=result_from_dict(d["adaptive"]),
            static=result_from_dict(d["static"]),
        ),
    )
    register_codec(
        "routing_compare_study",
        RoutingCompareStudy,
        lambda s: {
            "proactive": result_to_dict(s.proactive),
            "reactive": result_to_dict(s.reactive),
            "static": result_to_dict(s.static),
        },
        lambda d: RoutingCompareStudy(
            proactive=result_from_dict(d["proactive"]),
            reactive=result_from_dict(d["reactive"]),
            static=result_from_dict(d["static"]),
        ),
    )
    from repro.campaign.result import CampaignResult, GridPointAggregate

    register_codec(
        "campaign_result",
        CampaignResult,
        lambda r: {
            "name": r.name,
            "scenario": r.scenario,
            "base": dict(r.base),
            "axes": {name: list(values) for name, values in r.axes.items()},
            "seeds": [int(s) for s in r.seeds],
            "backend": r.backend,
            "cells_total": int(r.cells_total),
            "cells_completed": int(r.cells_completed),
            "cells_failed": int(r.cells_failed),
            "failed_cell_ids": [str(c) for c in r.failed_cell_ids],
            "points": [
                {
                    "params": dict(p.params),
                    "metrics": {
                        name: {k: v for k, v in stats.items()}
                        for name, stats in p.metrics.items()
                    },
                }
                for p in r.points
            ],
        },
        lambda d: CampaignResult(
            name=d["name"],
            scenario=d["scenario"],
            base=dict(d["base"]),
            axes={name: list(values) for name, values in d["axes"].items()},
            seeds=[int(s) for s in d["seeds"]],
            backend=d["backend"],
            cells_total=d["cells_total"],
            cells_completed=d["cells_completed"],
            # Absent in pre-quarantine artifacts: no cell could fail
            # survivably then, so zero is the faithful reading.
            cells_failed=d.get("cells_failed", 0),
            failed_cell_ids=list(d.get("failed_cell_ids", [])),
            points=[
                GridPointAggregate(
                    params=dict(p["params"]),
                    metrics={name: dict(stats)
                             for name, stats in p["metrics"].items()},
                )
                for p in d["points"]
            ],
        ),
    )
    register_codec(
        "fault_plan",
        _faults.FaultPlan,
        lambda p: p.to_dict(),
        _faults.FaultPlan.from_dict,
    )
    register_codec(
        "report_bundle",
        ReportBundle,
        lambda b: {
            "seed": int(b.seed),
            "fig3_samples": int(b.fig3_samples),
            "stage1_methods": result_to_dict(b.stage1_methods),
            "optimality": result_to_dict(b.optimality),
            "convergence": result_to_dict(b.convergence),
            "stage_calls": result_to_dict(b.stage_calls),
            "methods": result_to_dict(b.methods),
            "sweeps": result_to_dict(b.sweeps),
        },
        lambda d: ReportBundle(
            seed=d["seed"],
            fig3_samples=d["fig3_samples"],
            stage1_methods=result_from_dict(d["stage1_methods"]),
            optimality=result_from_dict(d["optimality"]),
            convergence=result_from_dict(d["convergence"]),
            stage_calls=result_from_dict(d["stage_calls"]),
            methods=result_from_dict(d["methods"]),
            sweeps=result_from_dict(d["sweeps"]),
        ),
    )
    import dataclasses

    from repro.serve.bench import ServeBenchResult
    from repro.serve.protocol import ServeRequest, ServeResponse

    register_codec(
        "serve_request",
        ServeRequest,
        lambda r: r.to_dict(),
        ServeRequest.from_dict,
    )
    register_codec(
        "serve_response",
        ServeResponse,
        lambda r: r.to_dict(),
        ServeResponse.from_dict,
    )
    register_codec(
        "serve_bench_result",
        ServeBenchResult,
        dataclasses.asdict,
        lambda d: ServeBenchResult(**{
            k: v for k, v in d.items()
            if k not in ("kind", "format_version")
        }),
    )
