"""Routes and the link-route incidence matrix ``A`` (paper §III-B).

The optimization layer only consumes the binary incidence matrix
``A[l, n] = 1`` iff link ``l`` lies on route ``n`` (paper Eq. 5 and
constraint 17c); this module builds and validates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Route:
    """A quantum-network route from the key centre to one client node.

    Attributes
    ----------
    route_id:
        1-based identifier as in paper Table III.
    source, target:
        Human-readable end-node names (key centre and client city).
    link_ids:
        1-based link identifiers traversed, in order, as in Table III.
    """

    route_id: int
    source: str
    target: str
    link_ids: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.route_id < 1:
            raise ValueError(f"route_id must be >= 1, got {self.route_id}")
        if not self.link_ids:
            raise ValueError("a route must traverse at least one link")
        if len(set(self.link_ids)) != len(self.link_ids):
            raise ValueError(f"route {self.route_id} repeats a link: {self.link_ids}")
        if any(l < 1 for l in self.link_ids):
            raise ValueError("link ids are 1-based and must be >= 1")

    @property
    def link_indices(self) -> Tuple[int, ...]:
        """0-based link indices (for numpy indexing)."""
        return tuple(l - 1 for l in self.link_ids)

    @property
    def hop_count(self) -> int:
        """Number of links traversed."""
        return len(self.link_ids)


def incidence_matrix(routes: Sequence[Route], num_links: int) -> np.ndarray:
    """Build the ``L x N`` binary matrix ``A`` with ``A[l, n] = a_ln``.

    ``a_ln = 1`` iff link ``l+1`` is part of route ``routes[n]``.
    """
    if num_links < 1:
        raise ValueError("num_links must be >= 1")
    matrix = np.zeros((num_links, len(routes)), dtype=float)
    for n, route in enumerate(routes):
        for link_id in route.link_ids:
            if link_id > num_links:
                raise ValueError(
                    f"route {route.route_id} references link {link_id} "
                    f"but the network has only {num_links} links"
                )
            matrix[link_id - 1, n] = 1.0
    return matrix


def routes_from_paths(
    paths: Iterable[Sequence[str]],
    edge_to_link_id,
) -> List[Route]:
    """Convert node paths into :class:`Route` objects.

    Parameters
    ----------
    paths:
        Iterable of node-name sequences, each starting at the key centre.
    edge_to_link_id:
        Mapping from frozenset({u, v}) to 1-based link id.

    Used by custom topologies where routes come from shortest-path computation
    (see :meth:`repro.quantum.topology.QKDNetwork.shortest_path_routes`).
    """
    routes: List[Route] = []
    for i, path in enumerate(paths, start=1):
        nodes = list(path)
        if len(nodes) < 2:
            raise ValueError(f"path {i} must contain at least two nodes, got {nodes}")
        link_ids = []
        for u, v in zip(nodes, nodes[1:]):
            key = frozenset((u, v))
            if key not in edge_to_link_id:
                raise ValueError(f"path {i} uses unknown edge {u!r}-{v!r}")
            link_ids.append(edge_to_link_id[key])
        routes.append(
            Route(
                route_id=i,
                source=nodes[0],
                target=nodes[-1],
                link_ids=tuple(link_ids),
            )
        )
    return routes
