"""Cascade information reconciliation for QKD (paper §III-A-1 substrate).

:class:`~repro.quantum.protocol.BBM92Protocol` accounts the error-correction
leak analytically (``f_ec · h(QBER)`` bits).  This module implements the
actual interactive protocol those numbers abstract: **Cascade** (Brassard &
Salvail), the de-facto reconciliation scheme of deployed QKD systems.

Alice and Bob hold correlated bit strings.  Over several passes they

1. permute the strings with a shared random permutation,
2. split into blocks (size ``~0.73/QBER`` in pass 1, doubling after),
3. compare block parities; on mismatch, binary-search (``binary`` protocol)
   to find and flip one error — each probe reveals one parity bit,
4. on later passes, every corrected bit triggers *cascading* re-checks of
   the blocks containing it in earlier passes.

The implementation tracks every disclosed parity so the privacy-amplification
stage can subtract the true leak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class CascadeResult:
    """Outcome of a Cascade run.

    ``corrected`` is Bob's reconciled string; ``leaked_bits`` counts every
    parity disclosed over the public channel; ``residual_errors`` is the
    number of positions still differing from Alice (0 in the overwhelming
    majority of runs with ≥2 passes).
    """

    corrected: np.ndarray
    leaked_bits: int
    residual_errors: int
    passes: int

    @property
    def success(self) -> bool:
        return self.residual_errors == 0


class CascadeReconciler:
    """Interactive Cascade reconciliation between two bit strings."""

    def __init__(
        self,
        *,
        num_passes: int = 4,
        initial_block_factor: float = 0.73,
        max_cleanup_passes: int = 16,
        confirmation_rounds: int = 16,
        seed: SeedLike = None,
    ) -> None:
        if num_passes < 1:
            raise ValueError("need at least one pass")
        if initial_block_factor <= 0:
            raise ValueError("block factor must be positive")
        if max_cleanup_passes < 0:
            raise ValueError("max_cleanup_passes must be non-negative")
        if confirmation_rounds < 0:
            raise ValueError("confirmation_rounds must be non-negative")
        self.num_passes = int(num_passes)
        self.initial_block_factor = float(initial_block_factor)
        self.max_cleanup_passes = int(max_cleanup_passes)
        self.confirmation_rounds = int(confirmation_rounds)
        self._rng = as_generator(seed)

    # -- parity oracle ---------------------------------------------------------

    @staticmethod
    def _parity(bits: np.ndarray, indices: np.ndarray) -> int:
        return int(np.bitwise_xor.reduce(bits[indices]) & 1)

    def _binary_search_error(
        self,
        alice: np.ndarray,
        bob: np.ndarray,
        indices: np.ndarray,
        leak: List[int],
    ) -> int:
        """Locate one error inside a parity-mismatched block.

        Each halving discloses one more parity (the top-level mismatch was
        already counted by the caller).  Returns the corrected position.
        """
        block = indices
        while len(block) > 1:
            half = len(block) // 2
            left = block[:half]
            leak[0] += 1
            if self._parity(alice, left) != self._parity(bob, left):
                block = left
            else:
                block = block[half:]
        position = int(block[0])
        bob[position] ^= 1
        return position

    # -- main protocol ------------------------------------------------------------

    def reconcile(
        self,
        alice_bits: Sequence[int],
        bob_bits: Sequence[int],
        *,
        estimated_qber: float,
    ) -> CascadeResult:
        """Run Cascade; returns Bob's corrected string and the parity leak."""
        alice = np.asarray(alice_bits, dtype=np.uint8).copy()
        bob = np.asarray(bob_bits, dtype=np.uint8).copy()
        if alice.shape != bob.shape or alice.ndim != 1:
            raise ValueError("alice and bob strings must be equal-length 1-D")
        if not 0.0 <= estimated_qber <= 0.5:
            raise ValueError("estimated QBER must be in [0, 0.5]")
        n = len(alice)
        if n == 0:
            return CascadeResult(bob, 0, 0, 0)

        qber = max(estimated_qber, 1.0 / n)
        block_size = max(2, int(round(self.initial_block_factor / qber)))
        leak = [0]
        # Per pass: the permutation and its block partition, so corrections
        # can cascade back into earlier passes.
        pass_blocks: List[List[np.ndarray]] = []

        def blocks_for(permutation: np.ndarray, size: int) -> List[np.ndarray]:
            return [permutation[i : i + size] for i in range(0, n, size)]

        def run_pass(pass_index: int, size: int) -> int:
            """Run one pass; returns the number of corrections made."""
            if pass_index == 0:
                permutation = np.arange(n)
            else:
                permutation = self._rng.permutation(n)
            blocks = blocks_for(permutation, size)
            pass_blocks.append(blocks)
            corrections = 0
            queue: List[Tuple[int, int]] = [(pass_index, i) for i in range(len(blocks))]
            while queue:
                p_idx, b_idx = queue.pop()
                block = pass_blocks[p_idx][b_idx]
                leak[0] += 1
                if self._parity(alice, block) == self._parity(bob, block):
                    continue
                corrected_pos = self._binary_search_error(alice, bob, block, leak)
                corrections += 1
                # Cascade: re-check every earlier block containing the bit —
                # its parity mismatch state has flipped.
                for earlier in range(p_idx):
                    for j, other in enumerate(pass_blocks[earlier]):
                        if corrected_pos in other:
                            queue.append((earlier, j))
                            break
                # The current block may still hide an even error count; it
                # will be revisited on later passes.
            return corrections

        passes_run = 0
        for pass_index in range(self.num_passes):
            size = min(n, block_size * (2**pass_index))
            run_pass(pass_index, size)
            passes_run += 1
        # Confirmation: even-count error pairs can hide inside every pass's
        # blocks, so blockwise passes alone cannot certify success.  Compare
        # parities of *random subsets*: any nonzero residual error vector
        # mismatches each random-subset parity with probability 1/2, so
        # ``confirmation_rounds`` consecutive matches bound the residual
        # probability by 2^-rounds.  A mismatch localises one error by the
        # usual binary search and restarts the count (this is the BBBSS-style
        # confirmation step used before the final authentication hash).
        consecutive_clean = 0
        budget = self.max_cleanup_passes * max(1, self.confirmation_rounds)
        while consecutive_clean < self.confirmation_rounds and budget > 0:
            budget -= 1
            subset = np.nonzero(self._rng.random(n) < 0.5)[0]
            if len(subset) == 0:
                continue
            leak[0] += 1
            if self._parity(alice, subset) == self._parity(bob, subset):
                consecutive_clean += 1
                continue
            consecutive_clean = 0
            corrected_pos = self._binary_search_error(alice, bob, subset, leak)
            # Cascade the correction back through every blockwise pass.
            for earlier, blocks in enumerate(pass_blocks):
                for j, other in enumerate(blocks):
                    if corrected_pos in other:
                        leak[0] += 1
                        if self._parity(alice, other) != self._parity(bob, other):
                            self._binary_search_error(alice, bob, other, leak)
                        break
        passes_run += 1  # count the confirmation stage as one pass
        residual = int(np.sum(alice != bob))
        return CascadeResult(
            corrected=bob,
            leaked_bits=leak[0],
            residual_errors=residual,
            passes=passes_run,
        )


def cascade_efficiency(result: CascadeResult, qber: float, length: int) -> float:
    """Reconciliation efficiency ``f_ec = leak / (n · h(QBER))``.

    Cascade typically achieves 1.05-1.25; the protocol layer's analytical
    ``f_ec`` parameter (paper-style accounting) can be calibrated from this.
    """
    from repro.quantum.protocol import binary_entropy

    if length <= 0:
        raise ValueError("length must be positive")
    if qber <= 0.0:
        return float("inf")
    entropy = binary_entropy(min(qber, 0.5))
    return result.leaked_bits / (length * entropy)
