"""Werner-state link model (paper Eq. 3-5).

A Werner state with parameter ``w`` is the mixture
``w |Φ+><Φ+| + (1-w)/4 I`` of a Bell pair and the maximally mixed state.
Measuring both halves of such a pair in matched bases yields a quantum bit
error rate (QBER) of ``(1 - w) / 2``; the asymptotic secret-key fraction of
an entanglement-based BB84/BBM92 protocol is then ``1 - 2 h(QBER)``, which is
exactly the paper's Eq. 4.
"""

from __future__ import annotations

import numpy as np

#: Largest Werner parameter at which the secret-key fraction is still zero
#: (paper §V-A, obtained there via Desmos).  ``F_skf(w) > 0`` iff
#: ``w > F_SKF_ZERO_CROSSING``.
F_SKF_ZERO_CROSSING: float = 0.779944


def _binary_entropy(p: np.ndarray) -> np.ndarray:
    """Binary entropy in bits, with the 0*log(0) = 0 convention."""
    p = np.asarray(p, dtype=float)
    out = np.zeros_like(p)
    interior = (p > 0.0) & (p < 1.0)
    q = p[interior]
    out[interior] = -q * np.log2(q) - (1.0 - q) * np.log2(1.0 - q)
    return out


def secret_key_fraction(w):
    """Secret-key fraction ``F_skf(w)`` of a Werner pair (paper Eq. 4).

    ``F_skf(w) = max(0, 1 + (1+w) log2((1+w)/2) + (1-w) log2((1-w)/2))``
    which equals ``max(0, 1 - 2 h((1-w)/2))`` with ``h`` the binary entropy.

    Accepts scalars or arrays in ``[0, 1]``; returns the same shape.
    """
    w_arr = np.asarray(w, dtype=float)
    if np.any(w_arr < 0.0) or np.any(w_arr > 1.0):
        raise ValueError("Werner parameter must lie in [0, 1]")
    qber = (1.0 - w_arr) / 2.0
    value = np.maximum(0.0, 1.0 - 2.0 * _binary_entropy(qber))
    if np.isscalar(w):
        return float(value)
    return value


def secret_key_fraction_derivative(w):
    """Derivative ``dF_skf/dw`` on the region where ``F_skf > 0``.

    For ``w > F_SKF_ZERO_CROSSING`` the derivative is
    ``log2((1+w)/(1-w))``; below the crossing the function is constant zero.
    At ``w == 1`` the derivative diverges; we return ``inf`` there.
    """
    w_arr = np.asarray(w, dtype=float)
    if np.any(w_arr < 0.0) or np.any(w_arr > 1.0):
        raise ValueError("Werner parameter must lie in [0, 1]")
    out = np.zeros_like(w_arr)
    active = w_arr > F_SKF_ZERO_CROSSING
    with np.errstate(divide="ignore"):
        out[active] = np.log2((1.0 + w_arr[active]) / (1.0 - w_arr[active]))
    if np.isscalar(w):
        return float(out)
    return out


def link_capacity(beta, w):
    """Entanglement-rate capacity of a link (paper Eq. 3): ``c = β (1 - w)``.

    ``β = 3 κ η / (2 T)`` bundles the link inefficiency ``κ``, midpoint
    transmissivity ``η`` and generation interval ``T``; see
    :func:`repro.quantum.topology.beta_from_length` for the physics model.
    """
    beta_arr = np.asarray(beta, dtype=float)
    w_arr = np.asarray(w, dtype=float)
    if np.any(beta_arr <= 0):
        raise ValueError("link beta must be positive")
    if np.any(w_arr < 0.0) or np.any(w_arr > 1.0):
        raise ValueError("Werner parameter must lie in [0, 1]")
    value = beta_arr * (1.0 - w_arr)
    if np.isscalar(beta) and np.isscalar(w):
        return float(value)
    return value


def end_to_end_werner(link_werner, route_links) -> float:
    """End-to-end Werner parameter of a route (paper Eq. 5).

    Entanglement swapping at intermediate nodes multiplies the Werner
    parameters of the constituent links: ``ϖ_n = Π_{l in route} w_l``.

    Parameters
    ----------
    link_werner:
        Sequence of per-link Werner parameters, indexed 0..L-1.
    route_links:
        Iterable of 0-based link indices forming the route.
    """
    w = np.asarray(link_werner, dtype=float)
    if np.any(w < 0.0) or np.any(w > 1.0):
        raise ValueError("Werner parameter must lie in [0, 1]")
    indices = list(route_links)
    if not indices:
        raise ValueError("a route must contain at least one link")
    return float(np.prod(w[indices]))
