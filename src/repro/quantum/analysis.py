"""QKD network analysis: utilization, bottlenecks, outages, sensitivities.

Operational tooling on top of the Stage-1 machinery: given a network and an
allocation, report per-link utilization, identify the links that actually
bind the optimum, and assess the impact of a link outage (the failure mode a
deployment planner cares about).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.quantum.routing import Route
from repro.quantum.topology import Link, QKDNetwork
from repro.quantum.utility import route_werner_parameters
from repro.quantum.werner import F_SKF_ZERO_CROSSING, secret_key_fraction


@dataclass(frozen=True)
class LinkReport:
    """Per-link snapshot for one allocation."""

    link_id: int
    beta: float
    load: float
    werner: float
    capacity: float

    @property
    def utilization(self) -> float:
        """Load as a fraction of the capacity ``β(1 - w)``; 0 for idle links."""
        if self.capacity <= 0:
            return 0.0 if self.load == 0 else float("inf")
        return self.load / self.capacity


@dataclass(frozen=True)
class RouteReport:
    """Per-route snapshot for one allocation."""

    route_id: int
    rate: float
    end_to_end_werner: float
    secret_key_fraction: float
    bottleneck_link_id: int

    @property
    def secret_key_rate(self) -> float:
        """Distillable key rate φ·F_skf(ϖ) in bits per second."""
        return self.rate * self.secret_key_fraction

    @property
    def above_fidelity_floor(self) -> bool:
        return self.end_to_end_werner > F_SKF_ZERO_CROSSING


def link_reports(
    network: QKDNetwork, rates: Sequence[float], werner: Sequence[float]
) -> List[LinkReport]:
    """Per-link load/utilization for an allocation."""
    phi = np.asarray(rates, dtype=float)
    w = np.asarray(werner, dtype=float)
    load = network.incidence @ phi
    capacity = network.betas * (1.0 - w)
    return [
        LinkReport(
            link_id=link.link_id,
            beta=link.beta,
            load=float(load[i]),
            werner=float(w[i]),
            capacity=float(capacity[i]),
        )
        for i, link in enumerate(network.links)
    ]


def route_reports(
    network: QKDNetwork, rates: Sequence[float], werner: Sequence[float]
) -> List[RouteReport]:
    """Per-route rate/fidelity/key-rate for an allocation."""
    phi = np.asarray(rates, dtype=float)
    w = np.asarray(werner, dtype=float)
    varpi = route_werner_parameters(w, network.incidence)
    reports = []
    for n, route in enumerate(network.routes):
        # Bottleneck: the on-route link with the lowest Werner parameter —
        # it degrades the end-to-end fidelity most.
        indices = list(route.link_indices)
        bottleneck = route.link_ids[int(np.argmin(w[indices]))]
        reports.append(
            RouteReport(
                route_id=route.route_id,
                rate=float(phi[n]),
                end_to_end_werner=float(varpi[n]),
                secret_key_fraction=float(secret_key_fraction(varpi[n])),
                bottleneck_link_id=int(bottleneck),
            )
        )
    return reports


def total_secret_key_rate(
    network: QKDNetwork, rates: Sequence[float], werner: Sequence[float]
) -> float:
    """Aggregate distillable key rate Σ_n φ_n F_skf(ϖ_n) (bits/s)."""
    return float(
        sum(r.secret_key_rate for r in route_reports(network, rates, werner))
    )


def binding_links(
    network: QKDNetwork,
    rates: Sequence[float],
    werner: Sequence[float],
    *,
    tol: float = 1e-6,
) -> List[int]:
    """Links whose capacity constraint (17c) is tight at this allocation."""
    return [
        report.link_id
        for report in link_reports(network, rates, werner)
        if report.load > 0 and abs(report.utilization - 1.0) < tol
    ]


def remove_link(network: QKDNetwork, link_id: int) -> QKDNetwork:
    """Network after a link outage.

    Routes traversing the failed link are dropped (their clients lose QKD
    service until rerouted); the remaining routes keep their ids.  Raises if
    *every* route dies — the network is then unusable.
    """
    if not any(link.link_id == link_id for link in network.links):
        raise ValueError(f"no link with id {link_id}")
    surviving_routes = [
        route for route in network.routes if link_id not in route.link_ids
    ]
    if not surviving_routes:
        raise ValueError(f"link {link_id} outage severs every route")
    # Renumber links contiguously and remap route link-ids.
    kept = [link for link in network.links if link.link_id != link_id]
    id_map = {link.link_id: i + 1 for i, link in enumerate(kept)}
    new_links = [
        Link(
            link_id=id_map[link.link_id],
            endpoints=link.endpoints,
            length_km=link.length_km,
            beta=link.beta,
        )
        for link in kept
    ]
    new_routes = [
        Route(
            route_id=route.route_id,
            source=route.source,
            target=route.target,
            link_ids=tuple(id_map[l] for l in route.link_ids),
        )
        for route in surviving_routes
    ]
    return QKDNetwork(new_links, new_routes, key_center=network.key_center)


def outage_impact(
    network: QKDNetwork, rates: Sequence[float], werner: Sequence[float]
) -> Dict[int, int]:
    """Map link_id -> number of client routes an outage of that link severs."""
    impact: Dict[int, int] = {}
    for link in network.links:
        impact[link.link_id] = sum(
            1 for route in network.routes if link.link_id in route.link_ids
        )
    return impact
