"""The SURFnet QKD evaluation topology (paper Fig. 2, Tables III-IV).

The paper evaluates on six routes over an 18-link subgraph of the Dutch
SURFnet research backbone, with Hilversum as the key centre.  Table IV fixes
each link's length and entanglement-generation parameter ``β_l``; Table III
fixes the six routes as ordered link-id sequences.  Those two tables are
reproduced verbatim here.

Fig. 2 does not include a machine-readable node/link incidence, so the
node-level graph below is a best-effort reconstruction that is *consistent
with Table III* (every route is a connected path rooted at Hilversum).  The
optimization results depend only on the incidence matrix ``A`` and ``β`` —
both taken directly from the tables — never on node names.

For networks other than SURFnet, :class:`QKDNetwork` can be built from any
edge list, with ``β`` either given per link or derived from the link length
via the physics model :func:`beta_from_length`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.quantum.routing import Route, incidence_matrix, routes_from_paths
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Link:
    """One optical-fibre link of the QKD network.

    Attributes
    ----------
    link_id:
        1-based identifier as in paper Table IV.
    endpoints:
        Node-name pair (reconstruction; see module docstring).
    length_km:
        Fibre length in kilometres (Table IV).
    beta:
        Entanglement-generation parameter ``β_l = 3 κ_l η_l / (2 T_l)``
        in pairs per second (Table IV).
    """

    link_id: int
    endpoints: Tuple[str, str]
    length_km: float
    beta: float

    def __post_init__(self) -> None:
        if self.link_id < 1:
            raise ValueError(f"link_id must be >= 1, got {self.link_id}")
        check_positive("length_km", self.length_km)
        check_positive("beta", self.beta)
        if self.endpoints[0] == self.endpoints[1]:
            raise ValueError(f"link {self.link_id} is a self-loop at {self.endpoints[0]!r}")


#: Calibrated physics constants so that ``beta_from_length`` reproduces the
#: paper's Table IV values to within ~2%: β = (3 κ η) / (2 T) with midpoint
#: transmissivity η = 10^(-attenuation · (length/2) / 10).
_BETA_PREFACTOR: float = 149.138     # = 3 κ / (2 T) with κ=0.99, T≈10 ms
_BETA_ATTENUATION_DB_PER_KM: float = 0.1456


def beta_from_length(
    length_km: float,
    *,
    prefactor: float = _BETA_PREFACTOR,
    attenuation_db_per_km: float = _BETA_ATTENUATION_DB_PER_KM,
) -> float:
    """Physics model for the link parameter ``β`` (paper Eq. 3 discussion).

    ``β = 3 κ η / (2 T)`` where ``η`` is the transmissivity from one end of
    the link to its midpoint.  With fibre attenuation ``α`` (dB/km),
    ``η = 10^(-α (length/2) / 10)``.  The defaults are calibrated by
    least-squares on Table IV (see ``tests/quantum/test_topology.py``).
    """
    check_positive("length_km", length_km)
    check_positive("prefactor", prefactor)
    check_positive("attenuation_db_per_km", attenuation_db_per_km)
    eta = 10.0 ** (-attenuation_db_per_km * (length_km / 2.0) / 10.0)
    return prefactor * eta


# --- Paper Table IV: link lengths (km) and β per link id -------------------
_SURFNET_TABLE_IV: Dict[int, Tuple[float, float]] = {
    1: (30.6, 89.84),
    2: (60.4, 53.79),
    3: (38.9, 77.47),
    4: (44.2, 69.44),
    5: (47.7, 65.12),
    6: (78.7, 40.76),
    7: (60.0, 54.17),
    8: (58.1, 56.25),
    9: (25.7, 99.02),
    10: (24.4, 100.98),
    11: (44.7, 68.75),
    12: (66.3, 49.35),
    13: (62.5, 52.40),
    14: (33.8, 84.63),
    15: (36.7, 80.54),
    16: (35.4, 82.41),
    17: (30.2, 90.52),
    18: (70.0, 46.82),
}

# Node-level reconstruction consistent with Table III (see module docstring).
_SURFNET_ENDPOINTS: Dict[int, Tuple[str, str]] = {
    1: ("Leiden", "Delft"),
    2: ("Utrecht", "Leiden"),
    3: ("Utrecht", "Almere"),
    4: ("Almere", "Lelystad"),
    5: ("Lelystad", "Zwolle"),
    6: ("Leiden", "Amsterdam"),   # present in Fig. 2 but on no Table III route
    7: ("Zutphen", "Enschede"),
    8: ("Nijmegen", "Zutphen"),
    9: ("Nijmegen", "Arnhem"),
    10: ("Deventer", "Apeldoorn"),
    11: ("Zwolle", "Deventer"),
    12: ("Wageningen", "Nijmegen"),
    13: ("Amersfoort", "Wageningen"),
    14: ("Amsterdam", "Amersfoort"),
    15: ("Hilversum", "Amsterdam"),
    16: ("Hilversum", "Almere"),
    17: ("Hilversum", "Utrecht"),
    18: ("Amsterdam", "Rotterdam"),
}

#: Paper Table IV as :class:`Link` objects, ordered by link id.
SURFNET_LINKS: Tuple[Link, ...] = tuple(
    Link(
        link_id=link_id,
        endpoints=_SURFNET_ENDPOINTS[link_id],
        length_km=_SURFNET_TABLE_IV[link_id][0],
        beta=_SURFNET_TABLE_IV[link_id][1],
    )
    for link_id in sorted(_SURFNET_TABLE_IV)
)

#: Paper Table III: the six evaluation routes (key centre = Hilversum).
SURFNET_ROUTES: Tuple[Route, ...] = (
    Route(1, "Hilversum", "Delft", (17, 2, 1)),
    Route(2, "Hilversum", "Zwolle", (17, 3, 4, 5)),
    Route(3, "Hilversum", "Apeldoorn", (16, 4, 5, 11, 10)),
    Route(4, "Hilversum", "Rotterdam", (15, 18)),
    Route(5, "Hilversum", "Arnhem", (15, 14, 13, 12, 9)),
    Route(6, "Hilversum", "Enschede", (15, 14, 13, 12, 8, 7)),
)


class QKDNetwork:
    """A QKD network: links with β parameters plus client routes.

    This is the object consumed by the optimization layer (via
    :attr:`incidence` and :attr:`betas`) and by the protocol-level simulator
    (via the networkx :attr:`graph`).
    """

    def __init__(
        self,
        links: Sequence[Link],
        routes: Sequence[Route],
        *,
        key_center: str,
    ) -> None:
        if not links:
            raise ValueError("a QKD network needs at least one link")
        if not routes:
            raise ValueError("a QKD network needs at least one route")
        ids = [link.link_id for link in links]
        if sorted(ids) != list(range(1, len(links) + 1)):
            raise ValueError(f"link ids must be exactly 1..L, got {sorted(ids)}")
        self._links: Tuple[Link, ...] = tuple(sorted(links, key=lambda l: l.link_id))
        self._routes: Tuple[Route, ...] = tuple(routes)
        self.key_center = key_center
        self._graph = nx.Graph()
        for link in self._links:
            u, v = link.endpoints
            self._graph.add_edge(u, v, link_id=link.link_id, length_km=link.length_km, beta=link.beta)
        if key_center not in self._graph:
            raise ValueError(f"key centre {key_center!r} is not a node of the network")
        for route in self._routes:
            self._validate_route_is_path(route)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_edge_list(
        cls,
        edges: Sequence[Tuple[str, str, float]],
        client_nodes: Sequence[str],
        *,
        key_center: str,
        betas: Optional[Mapping[int, float]] = None,
    ) -> "QKDNetwork":
        """Build a network from ``(u, v, length_km)`` edges.

        Routes are the shortest paths (by length) from ``key_center`` to each
        client node.  ``β`` comes from ``betas`` (keyed by 1-based link id,
        where edges are numbered in input order) or from
        :func:`beta_from_length`.
        """
        links: List[Link] = []
        edge_to_link_id: Dict[frozenset, int] = {}
        for i, (u, v, length_km) in enumerate(edges, start=1):
            beta = betas[i] if betas is not None else beta_from_length(length_km)
            links.append(Link(i, (u, v), length_km, beta))
            edge_to_link_id[frozenset((u, v))] = i
        graph = nx.Graph()
        for link in links:
            graph.add_edge(*link.endpoints, weight=link.length_km)
        paths = []
        for client in client_nodes:
            if client not in graph:
                raise ValueError(f"client node {client!r} is not in the edge list")
            paths.append(nx.shortest_path(graph, key_center, client, weight="weight"))
        routes = routes_from_paths(paths, edge_to_link_id)
        return cls(links, routes, key_center=key_center)

    # -- validation ----------------------------------------------------------

    def _validate_route_is_path(self, route: Route) -> None:
        """Check the route's link sequence forms a connected walk from the centre."""
        current = route.source
        if current != self.key_center:
            raise ValueError(
                f"route {route.route_id} starts at {route.source!r}, "
                f"expected the key centre {self.key_center!r}"
            )
        for link_id in route.link_ids:
            link = self._links[link_id - 1]
            u, v = link.endpoints
            if current == u:
                current = v
            elif current == v:
                current = u
            else:
                raise ValueError(
                    f"route {route.route_id}: link {link_id} {link.endpoints} "
                    f"does not touch current node {current!r}"
                )
        if current != route.target:
            raise ValueError(
                f"route {route.route_id} ends at {current!r}, expected {route.target!r}"
            )

    # -- accessors -----------------------------------------------------------

    @property
    def links(self) -> Tuple[Link, ...]:
        """All links, ordered by 1-based link id."""
        return self._links

    @property
    def routes(self) -> Tuple[Route, ...]:
        """All client routes, in client-node order."""
        return self._routes

    @property
    def num_links(self) -> int:
        return len(self._links)

    @property
    def num_routes(self) -> int:
        return len(self._routes)

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (nodes are city names)."""
        return self._graph

    @property
    def betas(self) -> np.ndarray:
        """Vector of ``β_l`` ordered by link id (length L)."""
        return np.array([link.beta for link in self._links], dtype=float)

    @property
    def incidence(self) -> np.ndarray:
        """The ``L x N`` incidence matrix ``A`` of paper Eq. 5."""
        return incidence_matrix(self._routes, self.num_links)

    def route_for_client(self, client_index: int) -> Route:
        """Route serving client node ``client_index`` (0-based)."""
        return self._routes[client_index]

    def max_uniform_rate(self) -> float:
        """Largest per-route rate φ feasible when all routes get the same φ.

        With uniform allocation, constraint (17c) reads
        ``φ · (#routes on link l) ≤ β_l (1 - w_l)``; maximised over ``w``
        (i.e. at ``w→0``) the bound is ``min_l β_l / load_l``.  Useful for
        sizing feasible starting points.
        """
        loads = self.incidence.sum(axis=1)
        used = loads > 0
        return float(np.min(self.betas[used] / loads[used]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QKDNetwork(L={self.num_links}, N={self.num_routes}, "
            f"key_center={self.key_center!r})"
        )


def surfnet_network() -> QKDNetwork:
    """The paper's evaluation network: SURFnet, 18 links, 6 routes, Hilversum centre."""
    return QKDNetwork(SURFNET_LINKS, SURFNET_ROUTES, key_center="Hilversum")
