"""Key centre: runs QKD per route and serves symmetric keys to clients.

Paper §III-A-1: "QKD is utilized to securely generate and distribute
symmetric keys between a key center and client nodes".  The
:class:`KeyCenter` drives the :class:`~repro.quantum.entanglement.EntanglementSimulator`
and :class:`~repro.quantum.protocol.BBM92Protocol` to fill per-client key
pools, from which fixed-size symmetric keys (e.g. 32-byte ChaCha20 keys) are
drawn.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


from repro.quantum.entanglement import EntanglementSimulator
from repro.quantum.protocol import BBM92Protocol, QKDSessionResult
from repro.quantum.topology import QKDNetwork
from repro.utils.rng import SeedLike, as_generator


class KeyPoolEmptyError(RuntimeError):
    """Raised when a client requests more key material than the pool holds."""


class KeyCenter:
    """Central QKD key authority over a :class:`QKDNetwork`.

    Typical use::

        center = KeyCenter(surfnet_network(), seed=7)
        center.replenish(rates, link_werner, duration_s=300.0)
        key = center.draw_key(client_index=0, num_bytes=32)
    """

    def __init__(
        self,
        network: QKDNetwork,
        *,
        protocol: Optional[BBM92Protocol] = None,
        seed: SeedLike = None,
    ) -> None:
        rng = as_generator(seed)
        self.network = network
        self.simulator = EntanglementSimulator(network, seed=rng)
        self.protocol = protocol or BBM92Protocol(seed=rng)
        self._pools: Dict[int, bytearray] = {
            n: bytearray() for n in range(network.num_routes)
        }
        self._history: List[QKDSessionResult] = []

    # -- key generation -------------------------------------------------------

    def replenish(
        self,
        rates: Sequence[float],
        link_werner: Sequence[float],
        *,
        duration_s: float = 60.0,
    ) -> List[QKDSessionResult]:
        """Run one QKD round on every route; append new key bytes to pools."""
        batches = self.simulator.run(rates, link_werner, duration_s=duration_s)
        results: List[QKDSessionResult] = []
        for n, batch in enumerate(batches):
            result = self.protocol.run_session(batch.count, batch.werner)
            self._pools[n].extend(result.key)
            self._history.append(result)
            results.append(result)
        return results

    # -- key consumption --------------------------------------------------------

    def available_bytes(self, client_index: int) -> int:
        """Unconsumed key bytes currently pooled for a client."""
        return len(self._pools[client_index])

    def draw_key(self, client_index: int, num_bytes: int) -> bytes:
        """Consume and return ``num_bytes`` of key material for a client.

        Raises :class:`KeyPoolEmptyError` if the pool is too small — callers
        should :meth:`replenish` (i.e. run more QKD) first.
        """
        if num_bytes <= 0:
            raise ValueError("num_bytes must be positive")
        pool = self._pools[client_index]
        if len(pool) < num_bytes:
            raise KeyPoolEmptyError(
                f"client {client_index} pool holds {len(pool)} bytes, "
                f"requested {num_bytes}; run replenish() first"
            )
        key = bytes(pool[:num_bytes])
        del pool[:num_bytes]
        return key

    # -- reporting ---------------------------------------------------------------

    @property
    def session_history(self) -> List[QKDSessionResult]:
        """All protocol sessions executed so far."""
        return list(self._history)

    def pool_summary(self) -> Dict[int, int]:
        """Map client index -> pooled key bytes."""
        return {n: len(pool) for n, pool in self._pools.items()}
