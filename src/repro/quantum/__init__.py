"""QKD network substrate.

Implements the quantum side of the QuHE system (paper §III-A-1 and §III-B):

* Werner-state link model: secret-key fraction (Eq. 4), link capacity (Eq. 3),
  end-to-end Werner parameter along a route (Eq. 5) — :mod:`repro.quantum.werner`.
* The SURFnet evaluation topology of Fig. 2 / Tables III-IV —
  :mod:`repro.quantum.topology`.
* Route handling and the link-route incidence matrix ``A`` —
  :mod:`repro.quantum.routing`.
* A stochastic entanglement-generation and swapping simulator —
  :mod:`repro.quantum.entanglement`.
* An entanglement-based QKD protocol (BBM92 flavour: measurement, sifting,
  error estimation, reconciliation, privacy amplification) —
  :mod:`repro.quantum.protocol`.
* A key centre that runs the protocol per route and hands symmetric keys to
  clients — :mod:`repro.quantum.key_manager`.
* The QKD network utility of Eq. 6 and its log form —
  :mod:`repro.quantum.utility`.
"""

from repro.quantum.werner import (
    F_SKF_ZERO_CROSSING,
    end_to_end_werner,
    link_capacity,
    secret_key_fraction,
    secret_key_fraction_derivative,
)
from repro.quantum.routing import Route, incidence_matrix, routes_from_paths
from repro.quantum.topology import (
    Link,
    QKDNetwork,
    surfnet_network,
    SURFNET_LINKS,
    SURFNET_ROUTES,
)
from repro.quantum.utility import (
    log_qkd_utility,
    qkd_utility,
    route_werner_parameters,
)
from repro.quantum.entanglement import EntanglementSimulator, PairBatch
from repro.quantum.protocol import BBM92Protocol, QKDSessionResult
from repro.quantum.key_manager import KeyCenter, KeyPoolEmptyError
from repro.quantum.cascade import CascadeReconciler, CascadeResult, cascade_efficiency
from repro.quantum.analysis import (
    binding_links,
    link_reports,
    outage_impact,
    remove_link,
    route_reports,
    total_secret_key_rate,
)
from repro.quantum.repeater import (
    RepeaterChainSimulator,
    RepeaterLink,
    calibrate_link_abstraction,
)
from repro.quantum.states import (
    bell_state,
    depolarize,
    entanglement_swap,
    werner_parameter,
    werner_state,
)

__all__ = [
    "BBM92Protocol",
    "CascadeReconciler",
    "CascadeResult",
    "EntanglementSimulator",
    "F_SKF_ZERO_CROSSING",
    "KeyCenter",
    "KeyPoolEmptyError",
    "Link",
    "PairBatch",
    "QKDNetwork",
    "QKDSessionResult",
    "RepeaterChainSimulator",
    "RepeaterLink",
    "Route",
    "SURFNET_LINKS",
    "SURFNET_ROUTES",
    "binding_links",
    "calibrate_link_abstraction",
    "link_reports",
    "outage_impact",
    "remove_link",
    "route_reports",
    "total_secret_key_rate",
    "bell_state",
    "cascade_efficiency",
    "depolarize",
    "end_to_end_werner",
    "entanglement_swap",
    "incidence_matrix",
    "link_capacity",
    "log_qkd_utility",
    "qkd_utility",
    "route_werner_parameters",
    "routes_from_paths",
    "secret_key_fraction",
    "secret_key_fraction_derivative",
    "surfnet_network",
    "werner_parameter",
    "werner_state",
]
