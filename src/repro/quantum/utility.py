"""QKD network utility (paper Eq. 6) and its log-domain form.

``U_qkd = Π_n φ_n F_skf(ϖ_n)`` where ``φ_n`` is the entanglement rate
allocated to route ``n`` and ``ϖ_n`` the route's end-to-end Werner parameter.
Stage 1 of QuHE works with the logarithm, which turns the product into the
sum the paper's Problem P2/P3 minimises.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.quantum.werner import (
    secret_key_fraction,
    secret_key_fraction_derivative,
)


def route_werner_parameters(link_werner: np.ndarray, incidence: np.ndarray) -> np.ndarray:
    """End-to-end Werner parameter per route: ``ϖ_n = Π_l w_l^{a_ln}`` (Eq. 5).

    Parameters
    ----------
    link_werner:
        Length-L vector of per-link Werner parameters in ``(0, 1]``.
    incidence:
        The ``L x N`` binary matrix ``A``.
    """
    w = np.asarray(link_werner, dtype=float)
    a = np.asarray(incidence, dtype=float)
    if w.ndim != 1 or a.ndim != 2 or a.shape[0] != w.shape[0]:
        raise ValueError(
            f"shape mismatch: link_werner has shape {w.shape}, incidence {a.shape}"
        )
    if np.any(w <= 0.0) or np.any(w > 1.0):
        raise ValueError("link Werner parameters must lie in (0, 1]")
    # Product in log domain for numerical stability on long routes.
    return np.exp(a.T @ np.log(w))


def qkd_utility(rates: np.ndarray, route_werner: np.ndarray) -> float:
    """The paper's Eq. 6: ``U_qkd = Π_n φ_n F_skf(ϖ_n)``."""
    phi = np.asarray(rates, dtype=float)
    varpi = np.asarray(route_werner, dtype=float)
    if phi.shape != varpi.shape:
        raise ValueError(f"shape mismatch: rates {phi.shape} vs werner {varpi.shape}")
    if np.any(phi < 0):
        raise ValueError("entanglement rates must be non-negative")
    fractions = secret_key_fraction(varpi)
    return float(np.prod(phi * fractions))


def log_qkd_utility(rates: np.ndarray, route_werner: np.ndarray) -> float:
    """``ln U_qkd`` computed stably; ``-inf`` if any factor is zero."""
    phi = np.asarray(rates, dtype=float)
    varpi = np.asarray(route_werner, dtype=float)
    fractions = np.asarray(secret_key_fraction(varpi), dtype=float)
    factors = phi * fractions
    if np.any(factors <= 0.0):
        return float("-inf")
    return float(np.sum(np.log(factors)))


def optimal_link_werner(
    rates: np.ndarray, incidence: np.ndarray, betas: np.ndarray
) -> np.ndarray:
    """Closed-form optimal Werner parameters given rates (paper Eq. 18).

    The objective increases monotonically in every ``w_l``, so the capacity
    constraint (17c) is tight at the optimum:
    ``w_l* = 1 - (Σ_n a_ln φ_n) / β_l``.

    Unused links (no route) get ``w_l* = 1`` — matching the paper's Table VI,
    where the unused link 6 reports ``w_6 = 1.0000``.
    """
    phi = np.asarray(rates, dtype=float)
    a = np.asarray(incidence, dtype=float)
    beta = np.asarray(betas, dtype=float)
    load = a @ phi
    w = 1.0 - load / beta
    if np.any(w <= 0.0):
        bad = np.nonzero(w <= 0.0)[0] + 1
        raise ValueError(
            f"rates overload link(s) {bad.tolist()}: capacity constraint (17c) "
            "leaves no positive Werner parameter"
        )
    return w


def stage1_objective_and_gradient(
    log_rates: np.ndarray,
    incidence: np.ndarray,
    betas: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """Objective of the convexified Problem P3 (Eq. 20) and its gradient.

    Variables are ``ϕ_n = ln φ_n``.  The objective is
    ``-Σ_n ln F_skf(ϖ_n(ϕ)) - Σ_n ϕ_n`` with ``ϖ_n`` evaluated at the
    closed-form optimal ``w*`` of Eq. 18.  Returns ``(value, gradient)``;
    value is ``+inf`` (gradient meaningless) outside the domain, which lets
    line-search based solvers back off.
    """
    varphi = np.asarray(log_rates, dtype=float)
    a = np.asarray(incidence, dtype=float)
    beta = np.asarray(betas, dtype=float)
    phi = np.exp(varphi)
    load = a @ phi
    slack = 1.0 - load / beta  # = w_l*
    if np.any(slack <= 0.0):
        return float("inf"), np.full_like(varphi, np.nan)
    log_varpi = a.T @ np.log(slack)
    varpi = np.exp(log_varpi)
    fractions = np.asarray(secret_key_fraction(varpi), dtype=float)
    if np.any(fractions <= 0.0):
        return float("inf"), np.full_like(varphi, np.nan)
    value = float(-np.sum(np.log(fractions)) - np.sum(varphi))

    # d(-ln F(ϖ_n))/dϕ_k = -(F'(ϖ_n)/F(ϖ_n)) ϖ_n Σ_l a_ln a_lk (-1/β_l)/w_l* φ_k
    ratio = (
        np.asarray(secret_key_fraction_derivative(varpi), dtype=float) / fractions
    ) * varpi  # length N
    # M[n, k] = Σ_l a_ln a_lk / (β_l w_l*)
    scaled = a / (beta * slack)[:, None]  # L x N
    m = a.T @ scaled  # N x N
    grad = (ratio @ m) * phi - 1.0
    return value, grad
