"""Time-stepped repeater-chain simulator with memory decoherence.

The paper's link model (Eq. 3) abstracts a repeater protocol into the scalar
rate ``β_l`` and Werner parameter ``w_l``.  This module implements the
protocol underneath that abstraction — a discrete-time simulation of one
route (a chain of links with quantum memories at intermediate nodes):

* every time slot, each link without a stored pair attempts entanglement
  generation and succeeds with probability ``p_gen`` (yielding a Werner pair
  at the link's base fidelity),
* stored halves *decohere* while waiting for neighbours: the Werner
  parameter decays as ``w(t) = w₀ · exp(-t/T_coh)``,
* when every link of the chain holds a pair, the intermediate nodes swap,
  delivering one end-to-end pair whose Werner parameter is the product of
  the (decayed) link parameters — Eq. 5 with memory noise included,
* memories have a cutoff age after which the stored pair is discarded
  (standard in repeater protocols: waiting too long wastes fidelity).

The simulator measures the delivered pair rate and the mean end-to-end
Werner parameter, letting tests quantify when the paper's static
``ϖ = Π w_l`` abstraction is accurate (fast links / long coherence) and how
it degrades (slow links / short memories).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class RepeaterLink:
    """One link of the chain: generation probability and base fidelity."""

    generation_probability: float
    base_werner: float

    def __post_init__(self) -> None:
        if not 0.0 < self.generation_probability <= 1.0:
            raise ValueError("generation probability must be in (0, 1]")
        if not 0.0 <= self.base_werner <= 1.0:
            raise ValueError("base Werner parameter must be in [0, 1]")


@dataclass(frozen=True)
class ChainStatistics:
    """Outcome of a simulation run."""

    time_slots: int
    delivered_pairs: int
    mean_werner: float
    discarded_pairs: int

    @property
    def delivery_rate(self) -> float:
        """End-to-end pairs per time slot."""
        return self.delivered_pairs / self.time_slots if self.time_slots else 0.0


class RepeaterChainSimulator:
    """Simulate a chain of links delivering end-to-end Werner pairs."""

    def __init__(
        self,
        links: Sequence[RepeaterLink],
        *,
        coherence_slots: float = 200.0,
        cutoff_slots: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        if not links:
            raise ValueError("a chain needs at least one link")
        if coherence_slots <= 0:
            raise ValueError("coherence time must be positive")
        if cutoff_slots is not None and cutoff_slots < 1:
            raise ValueError("cutoff must be at least one slot")
        self.links = list(links)
        self.coherence_slots = float(coherence_slots)
        self.cutoff_slots = cutoff_slots
        self._rng = as_generator(seed)

    def _decayed_werner(self, base: float, age_slots: int) -> float:
        return base * float(np.exp(-age_slots / self.coherence_slots))

    def run(self, time_slots: int) -> ChainStatistics:
        """Simulate ``time_slots`` slots; return delivery statistics."""
        if time_slots < 1:
            raise ValueError("need at least one time slot")
        # Per-link state: age of the stored pair in slots, or None if empty.
        ages: List[Optional[int]] = [None] * len(self.links)
        delivered = 0
        discarded = 0
        werner_sum = 0.0
        for _ in range(time_slots):
            # Age stored pairs; enforce the memory cutoff.
            for i, age in enumerate(ages):
                if age is None:
                    continue
                ages[i] = age + 1
                if self.cutoff_slots is not None and ages[i] > self.cutoff_slots:
                    ages[i] = None
                    discarded += 1
            # Generation attempts on empty links.
            for i, link in enumerate(self.links):
                if ages[i] is None and self._rng.random() < link.generation_probability:
                    ages[i] = 0
            # Swap when the whole chain is ready.
            if all(age is not None for age in ages):
                varpi = 1.0
                for link, age in zip(self.links, ages):
                    varpi *= self._decayed_werner(link.base_werner, int(age))
                delivered += 1
                werner_sum += varpi
                ages = [None] * len(self.links)
        mean_werner = werner_sum / delivered if delivered else float("nan")
        return ChainStatistics(
            time_slots=time_slots,
            delivered_pairs=delivered,
            mean_werner=mean_werner,
            discarded_pairs=discarded,
        )

    # -- analytics --------------------------------------------------------------

    def ideal_werner_product(self) -> float:
        """The paper's Eq. 5 product with no memory decay."""
        return float(np.prod([link.base_werner for link in self.links]))

    def expected_rate_upper_bound(self) -> float:
        """Rate cap: the slowest link's generation probability.

        The chain cannot deliver faster than its weakest link regenerates;
        waiting for coincidence makes the true rate strictly lower for
        multi-link chains.
        """
        return min(link.generation_probability for link in self.links)


def calibrate_link_abstraction(
    simulator: RepeaterChainSimulator, *, time_slots: int = 20_000
) -> dict:
    """Quantify the gap between the protocol and the paper's abstraction.

    Returns the simulated rate and mean Werner parameter next to the
    analytic Eq. 5 product, plus the relative fidelity shortfall caused by
    memory decoherence.
    """
    stats = simulator.run(time_slots)
    ideal = simulator.ideal_werner_product()
    shortfall = (
        float("nan")
        if not np.isfinite(stats.mean_werner)
        else 1.0 - stats.mean_werner / ideal
    )
    return {
        "delivery_rate": stats.delivery_rate,
        "rate_upper_bound": simulator.expected_rate_upper_bound(),
        "mean_werner": stats.mean_werner,
        "ideal_werner": ideal,
        "decoherence_shortfall": shortfall,
        "discarded_pairs": stats.discarded_pairs,
    }
