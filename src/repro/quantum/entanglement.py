"""Stochastic entanglement generation and swapping simulator.

The optimization layer treats the QKD network analytically (β, w, φ); this
module provides the protocol-level substrate underneath it: links generate
Werner pairs as Poisson processes capped by the link capacity ``β_l (1-w_l)``
(Eq. 3), and intermediate nodes perform entanglement swapping, which
multiplies Werner parameters along the route (Eq. 5).

The simulator validates the analytical model: the delivered end-to-end rate
concentrates on the allocated ``φ_n``, and the empirical QBER of delivered
pairs concentrates on ``(1 - ϖ_n) / 2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.quantum.topology import QKDNetwork
from repro.quantum.werner import end_to_end_werner
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class PairBatch:
    """Entangled pairs delivered to one client during a simulation window.

    Attributes
    ----------
    route_id:
        1-based route identifier.
    count:
        Number of end-to-end pairs delivered.
    werner:
        End-to-end Werner parameter of the delivered pairs.
    duration_s:
        Length of the simulated window in seconds.
    """

    route_id: int
    count: int
    werner: float
    duration_s: float

    @property
    def rate(self) -> float:
        """Delivered pair rate in pairs per second."""
        return self.count / self.duration_s


class EntanglementSimulator:
    """Simulate end-to-end entanglement delivery over a :class:`QKDNetwork`.

    Each link ``l`` generates Werner-``w_l`` pairs as a Poisson process of
    intensity ``c_l = β_l (1 - w_l)``.  A route consumes one pair from each of
    its links per end-to-end pair (swapping), so the route's delivery rate is
    ``min`` over its links of the share of that link's pairs allocated to the
    route.  Shares follow the rate allocation ``φ`` proportionally.
    """

    def __init__(self, network: QKDNetwork, *, seed: SeedLike = None) -> None:
        self.network = network
        self._rng = as_generator(seed)

    def _link_shares(self, rates: np.ndarray) -> np.ndarray:
        """Fraction of each link's pair stream owned by each route (L x N)."""
        a = self.network.incidence
        load = a @ rates
        shares = np.zeros_like(a)
        for l in range(a.shape[0]):
            if load[l] > 0:
                shares[l] = a[l] * rates / load[l]
        return shares

    def run(
        self,
        rates: Sequence[float],
        link_werner: Sequence[float],
        *,
        duration_s: float = 1.0,
    ) -> List[PairBatch]:
        """Simulate ``duration_s`` seconds of entanglement delivery.

        Parameters
        ----------
        rates:
            Allocated rate φ_n per route (pairs/s).  Must respect the link
            capacity constraint (17c) for the given Werner parameters.
        link_werner:
            Per-link Werner parameter w_l in (0, 1].
        duration_s:
            Simulated wall-clock window.
        """
        phi = np.asarray(rates, dtype=float)
        w = np.asarray(link_werner, dtype=float)
        net = self.network
        if phi.shape != (net.num_routes,):
            raise ValueError(f"expected {net.num_routes} rates, got {phi.shape}")
        if w.shape != (net.num_links,):
            raise ValueError(f"expected {net.num_links} Werner parameters, got {w.shape}")
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        capacities = net.betas * (1.0 - w)
        load = net.incidence @ phi
        over = load > capacities + 1e-9
        if np.any(over):
            bad = (np.nonzero(over)[0] + 1).tolist()
            raise ValueError(f"allocation exceeds capacity on link(s) {bad}")

        # Poisson pair generation per link, split among routes by share.
        link_counts = self._rng.poisson(capacities * duration_s)
        shares = self._link_shares(phi)
        batches: List[PairBatch] = []
        for n, route in enumerate(net.routes):
            per_link_available: List[int] = []
            for link_id in route.link_ids:
                l = link_id - 1
                owned = int(np.floor(shares[l, n] * link_counts[l]))
                per_link_available.append(owned)
            # A route consumes at most its allocated rate, even when links
            # have surplus capacity (w below the Eq. 18 optimum).
            allocated = int(np.floor(phi[n] * duration_s))
            delivered = min(per_link_available + [allocated]) if per_link_available else 0
            varpi = end_to_end_werner(w, route.link_indices)
            batches.append(
                PairBatch(
                    route_id=route.route_id,
                    count=delivered,
                    werner=varpi,
                    duration_s=duration_s,
                )
            )
        return batches

    def measure_qber(
        self,
        batch: PairBatch,
        *,
        max_pairs: Optional[int] = None,
    ) -> float:
        """Empirical QBER of a delivered batch.

        Each Werner-``w`` pair, measured in matched bases, disagrees with
        probability ``(1 - w) / 2``.  Returns the sampled error fraction
        (``nan`` for empty batches).
        """
        n = batch.count if max_pairs is None else min(batch.count, max_pairs)
        if n == 0:
            return float("nan")
        p_err = (1.0 - batch.werner) / 2.0
        errors = self._rng.binomial(n, p_err)
        return errors / n

    def delivered_rates(
        self,
        rates: Sequence[float],
        link_werner: Sequence[float],
        *,
        duration_s: float = 100.0,
    ) -> Dict[int, float]:
        """Convenience map route_id -> empirically delivered rate."""
        return {
            batch.route_id: batch.rate
            for batch in self.run(rates, link_werner, duration_s=duration_s)
        }
