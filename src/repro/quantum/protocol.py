"""Entanglement-based QKD protocol (BBM92 flavour), paper §III-A-1 substrate.

Turns delivered Werner pairs into identical symmetric key bits via the
standard pipeline:

1. **Measurement** — both parties measure each pair in a random basis
   (Z or X); Werner-``w`` pairs disagree with probability ``(1-w)/2`` when
   bases match.
2. **Sifting** — keep only matched-basis rounds (half, in expectation).
3. **Parameter estimation** — sacrifice a sample of sifted bits to estimate
   the QBER.
4. **Error correction** — reconciliation leaking ``f_ec · h(QBER)`` bits per
   sifted bit (we simulate the leak and correct Bob's errors; a real system
   would run Cascade/LDPC).
5. **Privacy amplification** — compress with a random Toeplitz hash to the
   secret length ``n_sift · (1 - h(Q) - f_ec · h(Q))``; with the ideal
   ``f_ec = 1`` the asymptotic fraction equals the paper's Eq. 4.

The protocol aborts (returns an empty key) when the estimated QBER exceeds
the threshold at which the secret fraction vanishes — the same 11% crossing
as ``F_SKF_ZERO_CROSSING`` in Werner-parameter terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.quantum.werner import F_SKF_ZERO_CROSSING
from repro.utils.rng import SeedLike, as_generator


def binary_entropy(p: float) -> float:
    """Binary entropy in bits with h(0)=h(1)=0."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0,1], got {p}")
    if p in (0.0, 1.0):
        return 0.0
    return float(-p * np.log2(p) - (1 - p) * np.log2(1 - p))


#: QBER above which no secret key can be distilled with one-way
#: post-processing: solves 1 - 2 h(Q) = 0, i.e. Q ≈ 0.1100 — the QBER
#: equivalent of the Werner-parameter crossing 0.779944.
QBER_ABORT_THRESHOLD: float = (1.0 - F_SKF_ZERO_CROSSING) / 2.0


def _toeplitz_hash(bits: np.ndarray, out_len: int, rng: np.random.Generator) -> np.ndarray:
    """Privacy amplification: multiply by a random Toeplitz matrix over GF(2).

    A Toeplitz matrix is determined by its first row and column; we draw the
    ``len(bits) + out_len - 1`` defining bits from ``rng`` (in a real system
    these are public randomness shared over the classical channel).
    """
    n = len(bits)
    if out_len <= 0:
        return np.zeros(0, dtype=np.uint8)
    diagonals = rng.integers(0, 2, size=n + out_len - 1, dtype=np.uint8)
    # Row i of the Toeplitz matrix is diagonals[i : i + n][::-1]; computing
    # the product row by row keeps memory at O(n) for large keys.
    out = np.empty(out_len, dtype=np.uint8)
    for i in range(out_len):
        row = diagonals[i : i + n][::-1]
        out[i] = np.bitwise_xor.reduce(row & bits) & 1
    return out


@dataclass(frozen=True)
class QKDSessionResult:
    """Outcome of one QKD session between the key centre and a client."""

    raw_pairs: int
    sifted_bits: int
    sample_bits: int
    estimated_qber: float
    corrected_errors: int
    leaked_bits: int
    key: bytes
    aborted: bool

    @property
    def key_bits(self) -> int:
        return len(self.key) * 8

    @property
    def secret_fraction(self) -> float:
        """Final key bits per raw pair (the empirical analogue of φ·F_skf)."""
        if self.raw_pairs == 0:
            return 0.0
        return self.key_bits / self.raw_pairs


class BBM92Protocol:
    """Run entanglement-based QKD over delivered Werner pairs."""

    def __init__(
        self,
        *,
        error_correction_efficiency: float = 1.0,
        sample_fraction: float = 0.1,
        reconciliation: str = "ideal",
        seed: SeedLike = None,
    ) -> None:
        if error_correction_efficiency < 1.0:
            raise ValueError(
                "error-correction efficiency f_ec is >= 1 by definition "
                f"(Shannon limit), got {error_correction_efficiency}"
            )
        if not 0.0 < sample_fraction < 1.0:
            raise ValueError(f"sample_fraction must be in (0,1), got {sample_fraction}")
        if reconciliation not in ("ideal", "cascade"):
            raise ValueError(
                f"reconciliation must be 'ideal' or 'cascade', got {reconciliation!r}"
            )
        self.f_ec = float(error_correction_efficiency)
        self.sample_fraction = float(sample_fraction)
        self.reconciliation = reconciliation
        self._rng = as_generator(seed)

    # -- individual phases, exposed for tests --------------------------------

    def measure(self, pair_count: int, werner: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Simulate measurement: returns (alice_bits, bob_bits, bases_match)."""
        if pair_count < 0:
            raise ValueError("pair_count must be non-negative")
        if not 0.0 <= werner <= 1.0:
            raise ValueError("werner must be in [0,1]")
        rng = self._rng
        alice = rng.integers(0, 2, size=pair_count, dtype=np.uint8)
        bases_match = rng.random(pair_count) < 0.5
        p_err = (1.0 - werner) / 2.0
        flips = (rng.random(pair_count) < p_err).astype(np.uint8)
        bob = alice ^ flips
        return alice, bob, bases_match

    def sift(
        self, alice: np.ndarray, bob: np.ndarray, bases_match: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Keep matched-basis rounds only."""
        return alice[bases_match], bob[bases_match]

    def estimate_qber(
        self, alice: np.ndarray, bob: np.ndarray
    ) -> Tuple[float, np.ndarray, np.ndarray, int]:
        """Sacrifice a random sample; return (qber, alice_rest, bob_rest, n_sample)."""
        n = len(alice)
        n_sample = max(1, int(n * self.sample_fraction)) if n else 0
        if n_sample == 0:
            return float("nan"), alice, bob, 0
        idx = self._rng.choice(n, size=n_sample, replace=False)
        mask = np.zeros(n, dtype=bool)
        mask[idx] = True
        qber = float(np.mean(alice[mask] != bob[mask]))
        return qber, alice[~mask], bob[~mask], n_sample

    def reconcile(
        self, alice: np.ndarray, bob: np.ndarray, qber: float
    ) -> Tuple[np.ndarray, int, int]:
        """Error correction: align Bob to Alice, accounting the leak.

        With ``reconciliation='ideal'`` (paper-style analytic accounting) the
        leak is ``ceil(f_ec · h(qber) · n)`` bits of public discussion; with
        ``'cascade'`` the actual Cascade protocol runs and its real parity
        disclosures are counted.  Returns
        ``(corrected_bob, corrected_errors, leaked_bits)``.
        """
        errors = int(np.sum(alice != bob))
        if self.reconciliation == "cascade":
            from repro.quantum.cascade import CascadeReconciler

            result = CascadeReconciler(seed=self._rng).reconcile(
                alice, bob, estimated_qber=min(max(qber, 1e-3), 0.5)
            )
            if not result.success:
                # Residual errors after four passes are rare; fall back to the
                # reference string so the session stays correct and charge
                # the full leak.
                return alice.copy(), errors, result.leaked_bits + result.residual_errors
            return result.corrected, errors, result.leaked_bits
        leak = int(np.ceil(self.f_ec * binary_entropy(min(max(qber, 0.0), 0.5)) * len(alice)))
        return alice.copy(), errors, leak

    def amplify(self, bits: np.ndarray, leaked_bits: int, qber: float) -> np.ndarray:
        """Privacy amplification to the secret length."""
        n = len(bits)
        secret_len = int(np.floor(n * (1.0 - binary_entropy(min(max(qber, 0.0), 0.5)))) - leaked_bits)
        if secret_len <= 0:
            return np.zeros(0, dtype=np.uint8)
        return _toeplitz_hash(bits, secret_len, self._rng)

    # -- full session ---------------------------------------------------------

    def run_session(self, pair_count: int, werner: float) -> QKDSessionResult:
        """Execute the whole pipeline and return the session result."""
        alice, bob, bases = self.measure(pair_count, werner)
        alice_s, bob_s = self.sift(alice, bob, bases)
        qber, alice_k, bob_k, n_sample = self.estimate_qber(alice_s, bob_s)
        if not len(alice_k) or not np.isfinite(qber) or qber >= QBER_ABORT_THRESHOLD:
            return QKDSessionResult(
                raw_pairs=pair_count,
                sifted_bits=len(alice_s),
                sample_bits=n_sample,
                estimated_qber=qber,
                corrected_errors=0,
                leaked_bits=0,
                key=b"",
                aborted=True,
            )
        corrected, n_err, leak = self.reconcile(alice_k, bob_k, qber)
        key_bits = self.amplify(corrected, leak, qber)
        return QKDSessionResult(
            raw_pairs=pair_count,
            sifted_bits=len(alice_s),
            sample_bits=n_sample,
            estimated_qber=qber,
            corrected_errors=n_err,
            leaked_bits=leak,
            key=bits_to_bytes(key_bits),
            aborted=False,
        )


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a 0/1 array into bytes, discarding a trailing partial byte."""
    usable = (len(bits) // 8) * 8
    if usable == 0:
        return b""
    return np.packbits(bits[:usable]).tobytes()
