"""Two-qubit density-matrix algebra for Werner states.

The optimization layer treats a link as a scalar Werner parameter ``w`` and
uses two facts without proof:

* measuring both halves of a Werner-``w`` pair in matched bases disagrees
  with probability ``(1 - w)/2`` (the QBER used in Eq. 4), and
* entanglement swapping two Werner pairs of parameters ``w1`` and ``w2``
  yields a Werner pair of parameter ``w1 · w2`` (the product rule of Eq. 5).

This module implements the actual 4×4 density-matrix algebra — Bell states,
Werner states, fidelity, measurement statistics and the swapping operation
via Bell-basis projection with Pauli correction — so both facts are *derived*
numerically in the test suite rather than assumed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

# Single-qubit Paulis.
_I2 = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)

PAULIS: Tuple[np.ndarray, ...] = (_I2, _X, _Y, _Z)


def bell_state(index: int = 0) -> np.ndarray:
    """The four Bell state vectors: Φ+ (0), Φ− (1), Ψ+ (2), Ψ− (3)."""
    s = 1.0 / np.sqrt(2.0)
    states = {
        0: np.array([s, 0, 0, s], dtype=complex),      # |Φ+> = (|00>+|11>)/√2
        1: np.array([s, 0, 0, -s], dtype=complex),     # |Φ->
        2: np.array([0, s, s, 0], dtype=complex),      # |Ψ+>
        3: np.array([0, s, -s, 0], dtype=complex),     # |Ψ->
    }
    if index not in states:
        raise ValueError(f"Bell index must be 0..3, got {index}")
    return states[index]


def bell_projector(index: int) -> np.ndarray:
    """Rank-1 projector onto one Bell state."""
    v = bell_state(index)
    return np.outer(v, v.conj())


def werner_state(w: float) -> np.ndarray:
    """The Werner state ``w |Φ+><Φ+| + (1-w)/4 · I`` (paper §III-B)."""
    if not 0.0 <= w <= 1.0:
        raise ValueError(f"Werner parameter must be in [0, 1], got {w}")
    return w * bell_projector(0) + (1.0 - w) / 4.0 * np.eye(4, dtype=complex)


def werner_parameter(rho: np.ndarray) -> float:
    """Recover ``w`` from a Werner state via its Φ+ fidelity.

    ``F = <Φ+|ρ|Φ+> = w + (1-w)/4`` so ``w = (4F - 1)/3``.
    """
    f = fidelity_with_bell(rho)
    return float((4.0 * f - 1.0) / 3.0)


def fidelity_with_bell(rho: np.ndarray, index: int = 0) -> float:
    """``<Bell_i|ρ|Bell_i>`` — fidelity with a maximally entangled state."""
    _check_density(rho)
    v = bell_state(index)
    return float(np.real(v.conj() @ rho @ v))


def is_density_matrix(rho: np.ndarray, *, atol: float = 1e-9) -> bool:
    """Hermitian, unit trace, positive semidefinite."""
    if rho.shape != (4, 4):
        return False
    if not np.allclose(rho, rho.conj().T, atol=atol):
        return False
    if not np.isclose(np.trace(rho).real, 1.0, atol=atol):
        return False
    eigenvalues = np.linalg.eigvalsh(rho)
    return bool(np.all(eigenvalues > -atol))


def _check_density(rho: np.ndarray) -> None:
    if not is_density_matrix(rho):
        raise ValueError("input is not a valid two-qubit density matrix")


def matched_basis_error_probability(rho: np.ndarray) -> float:
    """Probability the two halves disagree when both are measured in Z.

    For a Werner-``w`` state this equals ``(1 - w)/2`` — the QBER behind
    Eq. 4.  (Werner states are U⊗U invariant, so the X basis agrees.)
    """
    _check_density(rho)
    # |01><01| + |10><10| in the computational basis.
    p01 = float(np.real(rho[1, 1]))
    p10 = float(np.real(rho[2, 2]))
    return p01 + p10


def entanglement_swap(rho_ab: np.ndarray, rho_cd: np.ndarray) -> np.ndarray:
    """Swap entanglement: Bell-measure qubits B and C, return the A-D state.

    Projects the middle pair onto each Bell outcome, applies the
    corresponding Pauli correction on D, and averages over outcomes (each
    occurs with probability 1/4 for Werner inputs).  For Werner inputs
    ``w1, w2`` the output is Werner with parameter ``w1·w2`` — the paper's
    Eq. 5; verified in ``tests/quantum/test_states.py``.
    """
    _check_density(rho_ab)
    _check_density(rho_cd)
    # Order qubits (A, B, C, D); ρ = ρ_AB ⊗ ρ_CD.
    rho = np.kron(rho_ab, rho_cd)
    # Pauli corrections per Bell outcome (so that Φ+ outcome needs none).
    corrections = {0: _I2, 1: _Z, 2: _X, 3: _X @ _Z}
    out = np.zeros((4, 4), dtype=complex)
    for outcome in range(4):
        projector_bc = bell_projector(outcome)
        # Full projector on (A, B, C, D) = I_A ⊗ P_BC ⊗ I_D.
        full = np.kron(np.kron(_I2, projector_bc), _I2)
        projected = full @ rho @ full
        prob = float(np.real(np.trace(projected)))
        if prob < 1e-15:
            continue
        reduced = _partial_trace_bc(projected) / prob
        u = np.kron(_I2, corrections[outcome])
        out += prob * (u @ reduced @ u.conj().T)
    return out


def _partial_trace_bc(rho_abcd: np.ndarray) -> np.ndarray:
    """Trace out qubits B and C from a 4-qubit (16×16) density matrix."""
    if rho_abcd.shape != (16, 16):
        raise ValueError("expected a 16x16 four-qubit matrix")
    tensor = rho_abcd.reshape(2, 2, 2, 2, 2, 2, 2, 2)
    # Indices: (a, b, c, d, a', b', c', d'); trace over b=b' and c=c'.
    reduced = np.einsum("abcdxbcy->adxy", tensor)
    return reduced.reshape(4, 4)


def depolarize(rho: np.ndarray, probability: float) -> np.ndarray:
    """Two-qubit depolarizing channel: mix toward I/4 with ``probability``.

    Models fibre noise: a Werner-``w`` input becomes Werner with parameter
    ``(1 - probability) · w``.
    """
    _check_density(rho)
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    return (1.0 - probability) * rho + probability * np.eye(4, dtype=complex) / 4.0
