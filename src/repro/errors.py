"""Error taxonomy: every failure the platform can survive has a name.

The hardening layers (``repro.faults``, ``repro.utils.retry``, the campaign
quarantine, the CLI exit-code discipline) all speak this vocabulary:

* **classification** — retry logic keys on :class:`TransientError` (worth
  another attempt) vs everything else (a genuine defect, fail fast);
* **attribution** — :class:`WorkerError` and :class:`ArtifactError` carry
  the failing item / path so a crash deep inside a 10k-cell campaign names
  its cause instead of surfacing a bare ``KeyError``;
* **exit codes** — ``python -m repro`` maps each class to a distinct
  nonzero code (see :func:`exit_code_for`), so scripts and CI can branch on
  *why* a run failed without parsing stderr.

Exit-code map (0 = success, 1 = unclassified, 2 = usage/configuration):

==========================  ====
:class:`ConfigurationError`    2
:class:`SolverError`           3
:class:`ArtifactError`         4
:class:`WorkerError`           5
:class:`WorkerCrashed`         5
:class:`DeadlineExceeded`      6
:class:`TransientIOError`      7
:class:`RetryExhausted`        8
:class:`FaultInjected`         9
:class:`ServerOverloaded`     10
==========================  ====

(:class:`WorkerCrashed` deliberately shares code 5: it *is* a worker
failure, distinguished only by being transient — the process died and a
supervisor will respawn it, so retrying is correct, whereas a plain
:class:`WorkerError` means the work itself raised and must fail fast.)
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TransientError",
    "SolverError",
    "ArtifactError",
    "WorkerError",
    "WorkerCrashed",
    "DeadlineExceeded",
    "TransientIOError",
    "RetryExhausted",
    "FaultInjected",
    "ServerOverloaded",
    "EXIT_UNCLASSIFIED",
    "exit_code_for",
]

#: Exit code for exceptions outside the taxonomy.
EXIT_UNCLASSIFIED = 1


class ReproError(Exception):
    """Base of the taxonomy; every subclass owns a distinct exit code."""

    exit_code: int = EXIT_UNCLASSIFIED


class ConfigurationError(ReproError, ValueError):
    """Bad parameters, malformed specs, impossible requests (usage-class)."""

    exit_code = 2


class TransientError(ReproError):
    """A failure expected to clear on retry (the retryable marker class)."""

    exit_code = 1


class SolverError(ReproError, ArithmeticError):
    """The optimizer failed: singular Newton system, NaN objective, …

    :meth:`repro.api.service.SolverService.solve` catches this and falls
    back to the scalar SLSQP reference path (marking the result
    ``degraded=True``) instead of crashing the sweep.
    """

    exit_code = 3


class ArtifactError(ReproError, ValueError):
    """A persisted artifact is unreadable: truncated, wrong kind, empty.

    Always names the offending path so a corrupt cell in a large campaign
    is locatable from the message alone.
    """

    exit_code = 4

    def __init__(self, message: str, *, path: Optional[str] = None) -> None:
        super().__init__(message)
        self.path = path


class WorkerError(ReproError):
    """A pool worker failed; carries the failing item's index/fingerprint."""

    exit_code = 5

    def __init__(
        self, message: str, *, index: Optional[int] = None,
        item: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.index = index
        self.item = item


class WorkerCrashed(TransientError, WorkerError):
    """A worker *process* died mid-item (OOM kill, segfault, injected crash).

    Unlike its parent :class:`WorkerError` — an exception raised *by* the
    work, a genuine defect that must fail fast — a crashed worker says
    nothing about the work item itself: the supervisor respawns the process
    and the item is safe to re-dispatch, so this branch is transient and
    retry policies pick it up by default.  Carries the worker's exit status
    when known (``173`` marks an injected ``kind="crash"`` fault).
    """

    # Explicit: the MRO would otherwise resolve TransientError's code 1.
    exit_code = 5

    def __init__(
        self, message: str, *, index: Optional[int] = None,
        item: Optional[str] = None, exit_status: Optional[int] = None,
    ) -> None:
        super().__init__(message, index=index, item=item)
        self.exit_status = exit_status


class DeadlineExceeded(TransientError, TimeoutError):
    """An attempt outlived its watchdog deadline (hung worker, stuck IO)."""

    exit_code = 6


class TransientIOError(TransientError, OSError):
    """An IO operation failed in a way that a bounded retry may clear."""

    exit_code = 7


class RetryExhausted(ReproError):
    """Every allowed attempt failed; ``__cause__`` chains the last error."""

    exit_code = 8

    def __init__(self, message: str, *, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class FaultInjected(ReproError):
    """An exception deliberately raised by :mod:`repro.faults`.

    Chaos tests assert on this class to distinguish injected failures from
    genuine defects uncovered while the fault plan was active.
    """

    exit_code = 9

    def __init__(self, message: str, *, seam: str = "") -> None:
        super().__init__(message)
        self.seam = seam


class ServerOverloaded(TransientError):
    """The allocation daemon shed this request (bounded queue full).

    The ``repro.serve`` admission queue is bounded; when it is full the
    server rejects new work with a structured 503-style response instead of
    queueing unboundedly.  Transient by definition: the client should retry
    after a backoff (the response carries ``retry_after_ms`` advice).
    """

    exit_code = 10

    def __init__(
        self, message: str, *, retry_after_ms: float = 100.0
    ) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


def exit_code_for(exc: BaseException) -> int:
    """The process exit code for ``exc`` (taxonomy-aware, 1 otherwise).

    >>> exit_code_for(SolverError("singular"))
    3
    >>> exit_code_for(ArtifactError("bad", path="x.json"))
    4
    >>> exit_code_for(RuntimeError("unclassified"))
    1
    """
    if isinstance(exc, ReproError):
        return exc.exit_code
    if isinstance(exc, FileNotFoundError):
        # Missing artifacts surface as the artifact class even when raised
        # by pathlib before our wrappers get a chance to classify them.
        return ArtifactError.exit_code
    return EXIT_UNCLASSIFIED
