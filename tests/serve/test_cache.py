"""SqliteResultCache: round-trips, eviction, corruption, concurrency.

The cross-process test spawns two real writer processes hammering one
database file — the property the serving stack depends on (WAL + busy
timeout + IMMEDIATE transactions means no writer ever sees a corrupt or
half-written row).
"""

import json
import subprocess
import sys

import pytest

from repro import io as repro_io
from repro.errors import ArtifactError
from repro.serve.cache import SqliteResultCache


@pytest.fixture()
def db(tmp_path):
    return str(tmp_path / "results.db")


class TestRoundTrip:
    def test_quhe_result_codec_round_trip(self, db, quhe_result):
        cache = SqliteResultCache(db)
        cache.put("k1", quhe_result)
        restored = cache.get("k1")
        assert restored.objective == quhe_result.objective
        assert repro_io.result_to_dict(restored) == repro_io.result_to_dict(
            quhe_result
        )

    def test_payload_bytes_stable(self, db, quhe_result):
        """What goes in comes out byte-for-byte (the daemon forwards rows)."""
        cache = SqliteResultCache(db)
        payload = repro_io.result_to_dict(quhe_result)
        cache.put_payload("k1", payload)
        assert json.dumps(cache.get_payload("k1"), sort_keys=True) == \
            json.dumps(payload, sort_keys=True)

    def test_missing_key_is_none(self, db):
        assert SqliteResultCache(db).get("nope") is None

    def test_visible_across_instances(self, db):
        SqliteResultCache(db).put_payload("k", {"kind": "x", "v": 1})
        assert SqliteResultCache(db).get_payload("k") == {"kind": "x", "v": 1}

    def test_clear_and_len(self, db):
        cache = SqliteResultCache(db)
        cache.put_payload("a", {"v": 1})
        cache.put_payload("b", {"v": 2})
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0


class TestEviction:
    def test_lru_eviction_at_capacity(self, db):
        cache = SqliteResultCache(db, capacity=2)
        cache.put_payload("a", {"v": 1})
        cache.put_payload("b", {"v": 2})
        cache.get_payload("a")  # bump a: b is now least recently used
        cache.put_payload("c", {"v": 3})
        assert len(cache) == 2
        assert cache.get_payload("b") is None
        assert cache.get_payload("a") == {"v": 1}
        assert cache.get_payload("c") == {"v": 3}

    def test_capacity_zero_stores_nothing(self, db):
        cache = SqliteResultCache(db, capacity=0)
        cache.put_payload("a", {"v": 1})
        assert len(cache) == 0

    def test_negative_capacity_rejected(self, db):
        with pytest.raises(ValueError, match="non-negative"):
            SqliteResultCache(db, capacity=-1)


class TestCorruption:
    def test_corrupt_database_raises_artifact_error_naming_path(self, tmp_path):
        bad = tmp_path / "corrupt.db"
        bad.write_bytes(b"this is not a sqlite database, not even close")
        with pytest.raises(ArtifactError, match="corrupt.db") as excinfo:
            cache = SqliteResultCache(bad)
            cache.put_payload("k", {"v": 1})  # header check may be lazy
        assert excinfo.value.path == str(bad)

    def test_corrupt_payload_row_raises_artifact_error(self, db):
        cache = SqliteResultCache(db)
        conn = cache._connection()
        conn.execute(
            "INSERT INTO results (key, payload, seq) VALUES ('bad', '{', 1)"
        )
        with pytest.raises(ArtifactError, match="corrupt cache payload"):
            cache.get_payload("bad")

    def test_undecodable_result_row_raises_artifact_error(self, db):
        cache = SqliteResultCache(db)
        cache.put_payload("k", {"kind": "no_such_kind"})
        with pytest.raises(ArtifactError, match="undecodable cache row"):
            cache.get("k")


_WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.serve.cache import SqliteResultCache
cache = SqliteResultCache({db!r}, capacity=10_000)
tag = sys.argv[1]
for i in range(60):
    cache.put_payload(f"{{tag}}-{{i}}", {{"writer": tag, "i": i}})
    assert cache.get_payload(f"{{tag}}-{{i}}") == {{"writer": tag, "i": i}}
print("ok")
"""

_DOOMED_WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.serve.cache import SqliteResultCache
cache = SqliteResultCache({db!r})
cache.put_payload("doomed", {{"v": 2}})
print("survived the crash seam")  # unreachable under the plan
"""


class TestConcurrency:
    def test_two_processes_write_one_database(self, db):
        from pathlib import Path

        src = str(Path(__file__).resolve().parents[2] / "src")
        script = _WRITER.format(src=src, db=db)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, tag],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for tag in ("p1", "p2")
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert out.strip() == "ok"
        cache = SqliteResultCache(db)
        assert len(cache) == 120
        for tag in ("p1", "p2"):
            for i in (0, 30, 59):
                assert cache.get_payload(f"{tag}-{i}") == {
                    "writer": tag, "i": i,
                }

    def test_writer_killed_mid_put_leaves_a_readable_database(self, db):
        """Crash consistency: a writer dying inside ``put_payload`` costs
        only its own entry.

        A ``cache.put`` crash plan (delivered via ``REPRO_FAULTS``, exactly
        how worker subprocesses inherit plans) kills the writer with the
        row inserted but the transaction open.  sqlite must roll back on
        the next open: the database stays readable, the pre-existing entry
        survives byte-for-byte, and the doomed entry is absent — never
        half-written.
        """
        import os
        from pathlib import Path

        from repro import faults
        from repro.faults import FaultPlan, FaultRule

        SqliteResultCache(db).put_payload("kept", {"v": 1})
        plan = FaultPlan(seed=3, rules=(
            FaultRule(seam="cache.put", kind="crash", probability=1.0),
        ))
        src = str(Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ, **{faults.ENV_VAR: plan.to_json()})
        proc = subprocess.run(
            [sys.executable, "-c", _DOOMED_WRITER.format(src=src, db=db)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == faults.CRASH_EXIT_STATUS, proc.stderr
        assert "survived" not in proc.stdout

        cache = SqliteResultCache(db)
        assert cache.get_payload("kept") == {"v": 1}
        assert cache.get_payload("doomed") is None
        assert len(cache) == 1
        # The database is not just readable but still writable.
        cache.put_payload("after", {"v": 3})
        assert cache.get_payload("after") == {"v": 3}

    def test_threaded_writers_one_instance(self, db):
        import threading

        cache = SqliteResultCache(db, capacity=10_000)
        errors = []

        def write(tag):
            try:
                for i in range(40):
                    cache.put_payload(f"{tag}-{i}", {"t": tag, "i": i})
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) == 160
