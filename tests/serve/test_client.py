"""ServeClient resilience: retries, backoff floors, deadlines, hedging.

Every test runs against a *scripted stub server* (a bare asyncio unix
server speaking the NDJSON protocol from canned behaviors), so the
client's failure handling is pinned without solver latency or timing
luck: backoff sleeps are recorded through the injectable ``_sleep``,
clocks are fakes, and the stub decides exactly which attempt fails how.
"""

import asyncio
import random

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    RetryExhausted,
    ServerOverloaded,
)
from repro.serve import ConfigSpec, ServeClient
from repro.serve.protocol import ServeResponse, decode_line, encode_line
from repro.utils.retry import Deadline, RetryPolicy

SPEC = ConfigSpec(seed=2)

#: A minimal successful solve payload (the client never decodes results).
_PAYLOAD = {"kind": "quhe_result", "objective": 1.0}


def _ok(request):
    return ServeResponse(
        id=request["id"], ok=True, result=dict(_PAYLOAD),
        meta={"cache": "hit"},
    )


def _overloaded(request, retry_after_ms=500.0):
    return ServeResponse(
        id=request["id"], ok=False,
        error={"type": "ServerOverloaded", "exit_code": 10,
               "message": "shed", "retry_after_ms": retry_after_ms},
    )


def _config_error(request):
    return ServeResponse(
        id=request["id"], ok=False,
        error={"type": "ConfigurationError", "exit_code": 2,
               "message": "bad spec"},
    )


#: Behavior sentinels beyond "reply with this response".
SILENT = "silent"          # swallow the request, never answer
DISCONNECT = "disconnect"  # drop the connection without answering


class StubServer:
    """Unix-socket NDJSON server answering from a scripted behavior list.

    Each incoming request consumes the next behavior: a callable
    ``request_dict -> ServeResponse``, ``SILENT``, or ``DISCONNECT``.
    An exhausted script answers ``_ok`` (keeps shutdown boring).
    """

    def __init__(self, path: str, behaviors):
        self.path = path
        self.behaviors = list(behaviors)
        self.requests = []
        self.connections = 0
        self._server = None

    async def __aenter__(self):
        self._server = await asyncio.start_unix_server(
            self._handle, path=self.path
        )
        return self

    async def __aexit__(self, *exc_info):
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer):
        self.connections += 1
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                request = decode_line(line)
                self.requests.append(request)
                behavior = (
                    self.behaviors.pop(0) if self.behaviors else _ok
                )
                if behavior is SILENT:
                    continue
                if behavior is DISCONNECT:
                    writer.transport.abort()
                    return
                writer.write(encode_line(behavior(request).to_dict()))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def _run(tmp_path, behaviors, body):
    path = str(tmp_path / "stub.sock")
    async with StubServer(path, behaviors) as stub:
        client = await ServeClient.connect(socket_path=path)
        try:
            return await body(stub, client)
        finally:
            await client.close()


def _recording_policy(**overrides):
    """A deterministic policy whose jitter cap is tiny (floors must win)."""
    base = dict(max_attempts=3, base_s=0.001, cap_s=0.002,
                rng=random.Random(0))
    base.update(overrides)
    return RetryPolicy(**base)


class TestRetryAfterFloor:
    def test_server_advice_floors_the_backoff(self, tmp_path):
        """retry_after_ms=500 beats a 2ms client-side cap, every attempt."""
        sleeps = []

        async def body(stub, client):
            async def fake_sleep(seconds):
                sleeps.append(seconds)

            client._sleep = fake_sleep
            response = await client.solve_with_retry(
                SPEC, policy=_recording_policy()
            )
            assert response.ok
            assert len(stub.requests) == 3

        asyncio.run(_run(
            tmp_path, [_overloaded, _overloaded, _ok], body
        ))
        assert len(sleeps) == 2
        assert all(pause >= 0.5 for pause in sleeps)

    def test_no_advice_keeps_jittered_backoff_under_cap(self, tmp_path):
        sleeps = []

        def transient(request):
            return ServeResponse(
                id=request["id"], ok=False,
                error={"type": "TransientIOError", "exit_code": 7,
                       "message": "blip"},
            )

        async def body(stub, client):
            async def fake_sleep(seconds):
                sleeps.append(seconds)

            client._sleep = fake_sleep
            response = await client.solve_with_retry(
                SPEC, policy=_recording_policy()
            )
            assert response.ok

        asyncio.run(_run(tmp_path, [transient, _ok], body))
        assert sleeps and all(pause <= 0.002 for pause in sleeps)


class TestRetryClassification:
    def test_non_transient_error_is_not_retried(self, tmp_path):
        async def body(stub, client):
            with pytest.raises(ConfigurationError):
                await client.solve_with_retry(
                    SPEC, policy=_recording_policy()
                )
            assert len(stub.requests) == 1  # no second attempt

        asyncio.run(_run(tmp_path, [_config_error], body))

    def test_exhaustion_raises_retry_exhausted_chaining_cause(self, tmp_path):
        async def body(stub, client):
            client._sleep = _no_sleep
            with pytest.raises(RetryExhausted) as excinfo:
                await client.solve_with_retry(
                    SPEC, policy=_recording_policy(max_attempts=2)
                )
            assert excinfo.value.attempts == 2
            assert isinstance(excinfo.value.__cause__, ServerOverloaded)
            assert len(stub.requests) == 2

        asyncio.run(_run(tmp_path, [_overloaded, _overloaded], body))


async def _no_sleep(seconds):
    return None


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestDeadline:
    def test_budget_spent_sleeping_stops_the_next_attempt(self, tmp_path):
        clock = _FakeClock()

        async def body(stub, client):
            async def slow_world_sleep(seconds):
                clock.now += 2.0  # the backoff outlives the budget

            client._sleep = slow_world_sleep
            with pytest.raises(DeadlineExceeded):
                await client.solve_with_retry(
                    SPEC,
                    policy=_recording_policy(),
                    deadline=Deadline(budget_s=1.0, clock=clock),
                )
            assert len(stub.requests) == 1  # attempt 2 never went out

        asyncio.run(_run(tmp_path, [_overloaded, _ok], body))

    def test_sleep_is_clipped_to_remaining_budget(self, tmp_path):
        clock = _FakeClock()
        sleeps = []

        async def body(stub, client):
            async def fake_sleep(seconds):
                sleeps.append(seconds)  # frozen clock: budget not consumed

            client._sleep = fake_sleep
            response = await client.solve_with_retry(
                SPEC,
                policy=_recording_policy(),
                deadline=Deadline(budget_s=0.2, clock=clock),
            )
            assert response.ok

        # The server asks for a 500ms floor but only a 200ms budget exists:
        # the pause is clipped to the remaining budget, not the floor.
        asyncio.run(_run(tmp_path, [_overloaded, _ok], body))
        assert sleeps == [pytest.approx(0.2)]


class TestReconnect:
    def test_dropped_connection_is_redialed_between_attempts(self, tmp_path):
        async def body(stub, client):
            client._sleep = _no_sleep
            response = await client.solve_with_retry(
                SPEC, policy=_recording_policy()
            )
            assert response.ok
            assert stub.connections == 2  # the retry arrived on a redial

        asyncio.run(_run(tmp_path, [DISCONNECT, _ok], body))

    def test_raw_stream_client_cannot_reconnect(self, tmp_path):
        async def body(stub, client):
            reader, writer = await asyncio.open_unix_connection(stub.path)
            raw = ServeClient(reader, writer)
            try:
                with pytest.raises(ConnectionError, match="cannot reconnect"):
                    await raw.reconnect()
            finally:
                await raw.close()

        asyncio.run(_run(tmp_path, [], body))


class TestHedging:
    def test_hedge_rescues_a_stuck_request(self, tmp_path):
        """First request swallowed; the hedge answers after delay_ms."""
        from repro.serve.client import HedgePolicy

        hedge = HedgePolicy(delay_ms=20.0)

        async def body(stub, client):
            response = await client.solve_with_retry(SPEC, hedge=hedge)
            assert response.ok
            assert len(stub.requests) == 2

        asyncio.run(_run(tmp_path, [SILENT, _ok], body))
        assert hedge.hedges_fired == 1

    def test_fast_response_fires_no_hedge(self, tmp_path):
        from repro.serve.client import HedgePolicy

        hedge = HedgePolicy(delay_ms=5_000.0)

        async def body(stub, client):
            response = await client.solve_with_retry(SPEC, hedge=hedge)
            assert response.ok
            assert len(stub.requests) == 1

        asyncio.run(_run(tmp_path, [_ok], body))
        assert hedge.hedges_fired == 0

    def test_derived_delay_needs_history_then_tracks_quantile(self):
        from repro.serve.client import HedgePolicy

        hedge = HedgePolicy(min_samples=4, min_delay_ms=10.0)
        assert hedge.hedge_delay_s() is None
        for latency in (20.0, 30.0, 40.0, 1000.0):
            hedge.observe(latency)
        # p99 of the window is the slowest sample.
        assert hedge.hedge_delay_s() == pytest.approx(1.0)

    def test_derived_delay_floor_protects_cache_fast_paths(self):
        from repro.serve.client import HedgePolicy

        hedge = HedgePolicy(min_samples=2, min_delay_ms=10.0)
        hedge.observe(0.1)
        hedge.observe(0.2)
        assert hedge.hedge_delay_s() == pytest.approx(0.010)
