"""Wire-protocol tests: specs, requests, responses, framing, codecs."""

import json

import pytest

from repro import io as repro_io
from repro.api.service import config_fingerprint
from repro.errors import (
    ConfigurationError,
    ReproError,
    ServerOverloaded,
    SolverError,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ConfigSpec,
    ServeRequest,
    ServeResponse,
    decode_line,
    encode_line,
    error_payload,
)


class TestConfigSpec:
    def test_round_trip(self):
        spec = ConfigSpec(seed=7, total_bandwidth_hz=2e6, max_power_w=0.5)
        assert ConfigSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_omits_unset_overrides(self):
        assert ConfigSpec(seed=3).to_dict() == {"seed": 3}

    def test_build_is_deterministic_across_instances(self):
        a = ConfigSpec(seed=2, total_bandwidth_hz=1.5e6).build()
        b = ConfigSpec(seed=2, total_bandwidth_hz=1.5e6).build()
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_overrides_change_the_fingerprint(self):
        base = ConfigSpec(seed=2).build()
        swept = ConfigSpec(seed=2, client_max_frequency_hz=2e9).build()
        assert config_fingerprint(base) != config_fingerprint(swept)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown config spec"):
            ConfigSpec.from_dict({"seed": 2, "bandwidth": 1e6})


class TestServeRequest:
    def test_round_trip(self):
        request = ServeRequest(id="r9", op="solve", spec=ConfigSpec(seed=4),
                               use_cache=False)
        assert ServeRequest.from_dict(request.to_dict()) == request

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown request op"):
            ServeRequest(id="r1", op="explode")

    def test_solve_without_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="needs a config spec"):
            ServeRequest(id="r1", op="solve")

    def test_missing_id_rejected(self):
        with pytest.raises(ConfigurationError, match="missing required"):
            ServeRequest.from_dict({"op": "ping"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown request field"):
            ServeRequest.from_dict({"id": "r1", "op": "ping", "mode": "x"})


class TestServeResponse:
    def test_round_trip_with_meta(self):
        response = ServeResponse(id="r1", ok=True, result={"kind": "x"},
                                 meta={"cache": "hit"})
        restored = ServeResponse.from_dict(response.to_dict())
        assert restored == response
        assert response.to_dict()["protocol"] == PROTOCOL_VERSION

    def test_raise_for_error_maps_taxonomy_types(self):
        response = ServeResponse(
            id="r1", ok=False,
            error=error_payload(ServerOverloaded("full", retry_after_ms=50.0)),
        )
        assert response.error["exit_code"] == 10
        assert response.error["retry_after_ms"] == 50.0
        with pytest.raises(ServerOverloaded):
            response.raise_for_error()

    def test_raise_for_error_maps_solver_error(self):
        response = ServeResponse(
            id="r1", ok=False, error=error_payload(SolverError("singular"))
        )
        with pytest.raises(SolverError, match="singular"):
            response.raise_for_error()

    def test_raise_for_error_unknown_type_degrades_to_repro_error(self):
        response = ServeResponse(
            id="r1", ok=False, error={"type": "Martian", "message": "???"}
        )
        with pytest.raises(ReproError, match=r"\?\?\?"):
            response.raise_for_error()

    def test_raise_for_error_on_ok_is_identity(self):
        response = ServeResponse(id="r1", ok=True)
        assert response.raise_for_error() is response


class TestFraming:
    def test_encode_decode_round_trip(self):
        payload = {"id": "r1", "op": "ping"}
        line = encode_line(payload)
        assert line.endswith(b"\n")
        assert decode_line(line) == payload

    def test_malformed_json_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="malformed protocol"):
            decode_line(b"{not json}\n")

    def test_non_object_line_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            decode_line(b"[1, 2, 3]\n")


class TestCodecs:
    def test_serve_request_codec_round_trip(self):
        request = ServeRequest(id="r2", op="solve",
                               spec=ConfigSpec(seed=5), use_cache=False)
        payload = repro_io.result_to_dict(request)
        assert payload["kind"] == "serve_request"
        assert repro_io.result_from_dict(payload) == request

    def test_serve_response_codec_round_trip(self):
        response = ServeResponse(id="r2", ok=False,
                                 error={"type": "SolverError",
                                        "exit_code": 3, "message": "x"})
        payload = repro_io.result_to_dict(response)
        assert payload["kind"] == "serve_response"
        assert repro_io.result_from_dict(payload) == response

    def test_payloads_survive_json_text(self):
        request = ServeRequest(id="r3", op="stats")
        text = json.dumps(repro_io.result_to_dict(request))
        assert repro_io.result_from_dict(json.loads(text)) == request
