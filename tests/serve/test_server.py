"""AllocationServer tier-1 tests: smoke, coalescing, batching, shedding.

Each test runs an embedded daemon on a private unix socket inside one
``asyncio.run``.  The headline smoke test is the acceptance criterion:
a solve through the daemon must be *identical* to a direct
``SolverService.solve`` of the same configuration.
"""

import asyncio
import json

import pytest

from repro import io as repro_io
from repro.api.service import SolverService
from repro.serve import (
    AllocationServer,
    ConfigSpec,
    ServeClient,
    ServeRequest,
    ServeSettings,
    SqliteResultCache,
)
from repro.serve.protocol import encode_line


def _sock(tmp_path) -> str:
    return str(tmp_path / "serve.sock")


async def _with_server(settings, body):
    """Start a server, run ``body(server, client)``, always stop cleanly."""
    server = AllocationServer(settings)
    await server.start()
    try:
        client = await ServeClient.connect(
            socket_path=settings.socket_path or "",
            host=settings.host,
            port=0 if settings.socket_path else server.address[1],
        )
        try:
            return await body(server, client)
        finally:
            await client.close()
    finally:
        await server.stop()


class TestSmoke:
    def test_daemon_solve_identical_to_direct_service_solve(self, tmp_path):
        """Unix-socket daemon result == direct SolverService.solve (bytes)."""
        db = str(tmp_path / "cache.db")
        spec = ConfigSpec(seed=2)

        async def body(server, client):
            response = await client.solve(spec)
            response.raise_for_error()
            return response

        response = asyncio.run(_with_server(
            ServeSettings(socket_path=_sock(tmp_path), cache_db=db), body
        ))
        assert response.meta["cache"] == "solved"
        # A direct service sharing the daemon's sqlite cache returns the
        # stored payload — byte-identical, the acceptance criterion.
        direct = SolverService(cache=SqliteResultCache(db))
        direct_payload = repro_io.result_to_dict(direct.solve(spec.build()))
        assert json.dumps(response.result, sort_keys=True) == json.dumps(
            direct_payload, sort_keys=True
        )

    def test_ping_and_stats_ops(self, tmp_path):
        async def body(server, client):
            assert await client.ping()
            stats = await client.stats()
            assert stats["requests"] >= 1
            assert set(stats["cache"]) == {
                "hits", "misses", "coalesced", "size",
            }
            assert stats["coalesce_enabled"] is True
            return stats

        asyncio.run(_with_server(
            ServeSettings(socket_path=_sock(tmp_path)), body
        ))

    def test_tcp_mode(self, tmp_path):
        async def body(server, client):
            response = await client.solve(ConfigSpec(seed=2))
            response.raise_for_error()
            assert response.result["kind"] == "quhe_result"

        asyncio.run(_with_server(ServeSettings(host="127.0.0.1", port=0), body))

    def test_second_solve_hits_cache_with_identical_payload(self, tmp_path):
        spec = ConfigSpec(seed=2)

        async def body(server, client):
            first = await client.solve(spec)
            second = await client.solve(spec)
            assert second.meta["cache"] == "hit"
            assert json.dumps(first.result, sort_keys=True) == json.dumps(
                second.result, sort_keys=True
            )

        asyncio.run(_with_server(
            ServeSettings(socket_path=_sock(tmp_path)), body
        ))


class TestCoalescing:
    def test_concurrent_identical_requests_reach_backend_once(self, tmp_path):
        spec = ConfigSpec(seed=2)

        async def body(server, client):
            responses = await asyncio.gather(*(
                client.solve(spec, use_cache=False) for _ in range(12)
            ))
            for response in responses:
                response.raise_for_error()
            payloads = {
                json.dumps(r.result, sort_keys=True) for r in responses
            }
            assert len(payloads) == 1  # every waiter got the same result
            assert server.stats["backend_solves"] == 1
            assert server.stats["coalesced"] == 11
            dispositions = sorted(r.meta["cache"] for r in responses)
            assert dispositions.count("coalesced") == 11

        asyncio.run(_with_server(
            ServeSettings(socket_path=_sock(tmp_path)), body
        ))

    def test_coalesce_off_still_dedups_within_a_batch(self, tmp_path):
        spec = ConfigSpec(seed=2)

        async def body(server, client):
            responses = await asyncio.gather(*(
                client.solve(spec, use_cache=False) for _ in range(6)
            ))
            for response in responses:
                response.raise_for_error()
            assert server.stats["coalesced"] == 0
            # solve_many dedups identical fingerprints inside each batch:
            # every batch of this single-spec burst costs exactly one solve.
            assert server.stats["backend_solves"] == server.stats[
                "backend_batches"
            ]

        asyncio.run(_with_server(
            ServeSettings(socket_path=_sock(tmp_path), coalesce=False,
                          max_batch=8, max_wait_ms=50.0),
            body,
        ))


class TestMicroBatching:
    def test_distinct_specs_share_a_backend_batch(self, tmp_path):
        specs = [
            ConfigSpec(seed=2, total_bandwidth_hz=1e6 + i * 2.5e5)
            for i in range(4)
        ]

        async def body(server, client):
            responses = await asyncio.gather(*(
                client.solve(spec, use_cache=False) for spec in specs
            ))
            for response in responses:
                response.raise_for_error()
            assert server.stats["backend_solves"] == len(specs)
            # The linger window is generous enough that the concurrent burst
            # lands in fewer dispatches than requests.
            assert server.stats["backend_batches"] < len(specs)
            assert any(r.meta["batch_size"] > 1 for r in responses)
            for r in responses:
                assert r.meta["queue_ms"] >= 0.0
                assert r.meta["solve_ms"] > 0.0

        asyncio.run(_with_server(
            ServeSettings(socket_path=_sock(tmp_path), max_batch=8,
                          max_wait_ms=200.0),
            body,
        ))


class TestLoadShedding:
    def test_overflow_is_shed_with_structured_503(self, tmp_path):
        specs = [
            ConfigSpec(seed=2, total_bandwidth_hz=1e6 + i * 1e5)
            for i in range(8)
        ]

        async def body(server, client):
            responses = await asyncio.gather(*(
                client.solve(spec, use_cache=False) for spec in specs
            ))
            ok = [r for r in responses if r.ok]
            shed = [r for r in responses if not r.ok]
            assert ok, "some requests must be admitted"
            assert shed, "a 1-deep queue must shed part of a burst of 8"
            for r in shed:
                assert r.error["type"] == "ServerOverloaded"
                assert r.error["exit_code"] == 10
                assert r.error["retry_after_ms"] > 0
            assert server.stats["shed"] == len(shed)
            # The daemon is not wedged: a clean request still succeeds.
            retry = await client.solve(specs[0])
            retry.raise_for_error()

        asyncio.run(_with_server(
            ServeSettings(socket_path=_sock(tmp_path), coalesce=False,
                          max_batch=1, max_queue=1, max_wait_ms=0.0),
            body,
        ))


class TestProtocolErrors:
    def test_malformed_line_yields_error_response_and_connection_survives(
        self, tmp_path
    ):
        async def body(server, client):
            # Inject a malformed line under the client's write lock, then
            # prove the same connection still serves clean requests.
            async with client._write_lock:
                client._writer.write(b"{not json}\n")
                await client._writer.drain()
            assert await client.ping()
            assert server.stats["errors"] >= 1

        asyncio.run(_with_server(
            ServeSettings(socket_path=_sock(tmp_path)), body
        ))

    def test_unknown_op_yields_configuration_error(self, tmp_path):
        async def body(server, client):
            response = await client.request(ServeRequest(id="x1", op="ping"))
            assert response.ok
            # Hand-craft an unknown-op line (ServeRequest refuses locally).
            future = asyncio.get_running_loop().create_future()
            client._pending["x2"] = future
            async with client._write_lock:
                client._writer.write(
                    encode_line({"id": "x2", "op": "explode"})
                )
                await client._writer.drain()
            bad = await future
            assert not bad.ok
            assert bad.error["type"] == "ConfigurationError"
            assert bad.error["exit_code"] == 2

        asyncio.run(_with_server(
            ServeSettings(socket_path=_sock(tmp_path)), body
        ))


class TestHealthAndDrain:
    def test_health_op_reports_ok_and_queue_state(self, tmp_path):
        async def body(server, client):
            health = await client.health()
            assert health["status"] == "ok"
            assert health["queue_depth"] == 0
            assert health["active_requests"] >= 1  # the health call itself
            assert health["workers"] == 0
            assert "supervisor" not in health  # inline mode

        asyncio.run(_with_server(
            ServeSettings(socket_path=_sock(tmp_path)), body
        ))

    def test_drain_op_flushes_inflight_then_terminates(self, tmp_path):
        specs = [
            ConfigSpec(seed=2, total_bandwidth_hz=1e6 + i * 2.5e5)
            for i in range(3)
        ]

        async def main():
            server = AllocationServer(ServeSettings(
                socket_path=_sock(tmp_path), max_wait_ms=100.0, max_batch=8,
            ))
            await server.start()
            client = await ServeClient.connect(
                socket_path=server.settings.socket_path
            )
            try:
                solves = [
                    asyncio.ensure_future(
                        client.solve(spec, use_cache=False)
                    )
                    for spec in specs
                ]
                await asyncio.sleep(0)  # let the requests hit the wire
                assert await client.drain()
                # Every admitted request is answered before shutdown.
                responses = await asyncio.gather(*solves)
                for response in responses:
                    response.raise_for_error()
                await asyncio.wait_for(server.wait_terminated(), timeout=15)
            finally:
                await client.close()
                await server.stop()  # idempotent
            # The listener is gone: fresh connections are refused.
            with pytest.raises((ConnectionError, FileNotFoundError)):
                await ServeClient.connect(
                    socket_path=server.settings.socket_path
                )

        asyncio.run(main())

    def test_draining_server_sheds_new_solves(self, tmp_path):
        from repro.errors import ServerOverloaded

        async def main():
            server = AllocationServer(
                ServeSettings(socket_path=_sock(tmp_path))
            )
            await server.start()
            try:
                server._draining = True
                with pytest.raises(ServerOverloaded) as excinfo:
                    await server._dispatch_solve(ServeRequest(
                        id="r", op="solve", spec=ConfigSpec(seed=2)
                    ))
                assert excinfo.value.retry_after_ms == 500.0
            finally:
                server._draining = False
                await server.stop()

        asyncio.run(main())


class TestSupervised:
    """The workers>0 path: same contract, solves in subprocesses."""

    def test_supervised_solve_then_cache_hit_is_byte_identical(self, tmp_path):
        spec = ConfigSpec(seed=2)

        async def body(server, client):
            first = await client.solve(spec)
            first.raise_for_error()
            assert first.meta["cache"] == "solved"
            assert first.meta["workers"] is True
            second = await client.solve(spec)
            assert second.meta["cache"] == "hit"
            assert json.dumps(first.result, sort_keys=True) == json.dumps(
                second.result, sort_keys=True
            )
            health = await client.health()
            assert health["supervisor"]["breaker"] == "closed"
            assert health["supervisor"]["worker_restarts"] == 0

        asyncio.run(_with_server(
            ServeSettings(socket_path=_sock(tmp_path), workers=1), body
        ))

    def test_result_cached_even_when_client_disconnects(self, tmp_path):
        """Drop-on-disconnect regression: a dead waiter loses nothing.

        The first client vanishes after its request is admitted but before
        the batch completes; the solved payload must still land in the
        result cache, so the client's retry (here: a second client) is a
        cache hit instead of a second backend solve.
        """
        spec = ConfigSpec(seed=2)

        async def main():
            server = AllocationServer(ServeSettings(
                socket_path=_sock(tmp_path), workers=1, max_wait_ms=150.0,
            ))
            await server.start()
            try:
                first = await ServeClient.connect(
                    socket_path=server.settings.socket_path
                )
                doomed = asyncio.ensure_future(first.solve(spec))
                # Wait for admission (the batcher is lingering), then yank
                # the connection out from under the in-flight solve.
                for _ in range(200):
                    if server.stats["requests"] >= 1:
                        break
                    await asyncio.sleep(0.005)
                assert server.stats["requests"] >= 1
                await first.close()
                with pytest.raises((ConnectionError, asyncio.CancelledError)):
                    await doomed
                # The batch still runs to completion and caches its result.
                for _ in range(600):
                    if server.stats["backend_solves"] >= 1:
                        break
                    await asyncio.sleep(0.01)
                assert server.stats["backend_solves"] == 1

                second = await ServeClient.connect(
                    socket_path=server.settings.socket_path
                )
                try:
                    retry = await second.solve(spec)
                    retry.raise_for_error()
                    assert retry.meta["cache"] == "hit"
                finally:
                    await second.close()
                assert server.stats["backend_solves"] == 1  # no re-solve
            finally:
                await server.stop()

        asyncio.run(main())


class TestLifecycle:
    def test_stop_fails_stranded_requests_not_hangs(self, tmp_path):
        async def main():
            server = AllocationServer(
                ServeSettings(socket_path=_sock(tmp_path))
            )
            await server.start()
            await server.stop()
            with pytest.raises(Exception):
                await server._dispatch_solve(
                    ServeRequest(id="r", op="solve", spec=ConfigSpec(seed=2))
                )

        asyncio.run(main())

    def test_double_start_rejected(self, tmp_path):
        async def main():
            server = AllocationServer(
                ServeSettings(socket_path=_sock(tmp_path))
            )
            await server.start()
            try:
                with pytest.raises(RuntimeError, match="already started"):
                    await server.start()
            finally:
                await server.stop()

        asyncio.run(main())

    def test_settings_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ServeSettings(max_batch=0)
        with pytest.raises(ConfigurationError):
            ServeSettings(max_queue=0)
        with pytest.raises(ConfigurationError):
            ServeSettings(max_wait_ms=-1.0)
