"""WorkerSupervisor: payload fidelity, poison isolation, crash/hang recovery.

Subprocess-spawning tests use a single worker with tight settings so the
whole file stays tier-1 fast; the circuit-breaker state machine is driven
with a fake clock and no processes at all.

Fault determinism: a respawned worker forks with fresh seam counters, so a
``serve.worker`` rule with ``after=1`` makes each *fresh* worker's first
batch safe — that is what guarantees recovery in the crash/hang tests.
"""

import asyncio
import json

import pytest

from repro import faults
from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    FaultInjected,
    ServerOverloaded,
    WorkerCrashed,
)
from repro.faults import CRASH_EXIT_STATUS, FaultPlan, FaultRule
from repro.serve.protocol import ConfigSpec
from repro.serve.supervisor import SupervisorSettings, WorkerSupervisor


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.clear()
    yield
    faults.clear()


#: Test pool: one worker, no respawn backoff (recovery paths stay fast).
def _settings(**overrides) -> SupervisorSettings:
    base = dict(
        workers=1,
        batch_deadline_s=20.0,
        respawn_backoff_base_s=0.0,
        max_restarts=1000,
    )
    base.update(overrides)
    return SupervisorSettings(**base)


def _specs(n: int):
    return [
        ConfigSpec(seed=2, total_bandwidth_hz=1e6 + i * 2.5e5).to_dict()
        for i in range(n)
    ]


def _scrub(payload):
    """Drop wall-clock fields: everything else is bit-deterministic."""
    clean = {}
    for key, value in payload.items():
        if key == "runtime_s":
            continue
        if isinstance(value, dict):
            value = _scrub(value)
        clean[key] = value
    return clean


async def _with_pool(settings, body, plan=None):
    """Run ``body(supervisor)`` on a started pool.

    ``plan`` is installed *before* the workers spawn: children pick the
    plan up at fork/spawn time, so activating it later would be invisible
    to them.
    """
    if plan is not None:
        with plan.activate():
            return await _with_pool(settings, body)
    supervisor = WorkerSupervisor(settings)
    await supervisor.start()
    try:
        return await body(supervisor)
    finally:
        await supervisor.stop(drain_timeout_s=5.0)


def _worker_plan(kind: str, **kwargs) -> FaultPlan:
    return FaultPlan(seed=11, rules=(
        FaultRule(seam="serve.worker", kind=kind, probability=1.0, **kwargs),
    ))


class TestSettings:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisorSettings(workers=0)
        with pytest.raises(ConfigurationError):
            SupervisorSettings(batch_deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            SupervisorSettings(max_attempts=0)
        with pytest.raises(ConfigurationError):
            SupervisorSettings(max_restarts=0)
        with pytest.raises(ConfigurationError):
            SupervisorSettings(restart_window_s=0.0)


class TestHappyPath:
    def test_worker_payloads_match_direct_batched_solve(self):
        """Worker output == in-process solve_many modulo runtime fields."""
        from repro import io as repro_io
        from repro.api.service import SolverService

        spec_dicts = _specs(2)

        async def body(supervisor):
            return await supervisor.solve_specs(spec_dicts)

        outcomes = asyncio.run(_with_pool(_settings(), body))
        assert len(outcomes) == 2
        configs = [ConfigSpec.from_dict(d).build() for d in spec_dicts]
        direct = SolverService(cache_size=0).solve_many(
            configs, backend="batched", use_cache=False
        )
        for outcome, result in zip(outcomes, direct):
            assert not isinstance(outcome, BaseException)
            expected = repro_io.result_to_dict(result)
            assert json.dumps(_scrub(outcome), sort_keys=True) == json.dumps(
                _scrub(expected), sort_keys=True
            )

    def test_empty_batch_is_a_noop(self):
        async def body(supervisor):
            assert await supervisor.solve_specs([]) == []
            assert supervisor.stats["dispatched_batches"] == 0

        asyncio.run(_with_pool(_settings(), body))

    def test_health_snapshot_shape(self):
        async def body(supervisor):
            await supervisor.solve_specs(_specs(1))
            return supervisor.health_snapshot()

        health = asyncio.run(_with_pool(_settings(), body))
        assert health["breaker"] == "closed"
        assert health["worker_restarts"] == 0
        (worker,) = health["workers"]
        assert worker["alive"] is True
        assert worker["state"] == "idle"
        assert isinstance(worker["pid"], int)


class TestPoisonIsolation:
    def test_one_poisoned_spec_fails_alone(self):
        """Batch fault + one retry fault: exactly one item pays for it.

        ``raise`` with ``max_fires=2`` on one worker: the batch attempt
        burns fire 1, the first individual re-dispatch burns fire 2, the
        second individual re-dispatch runs clean — so the batch-mate of a
        poisoned config still gets its payload.
        """
        plan = _worker_plan("raise", max_fires=2)

        async def body(supervisor):
            return await supervisor.solve_specs(_specs(2)), dict(
                supervisor.stats
            )

        outcomes, stats = asyncio.run(_with_pool(_settings(), body, plan))
        assert isinstance(outcomes[0], FaultInjected)
        assert not isinstance(outcomes[1], BaseException)
        assert outcomes[1]["kind"] == "quhe_result"
        assert stats["redispatched"] == 2
        # A `raise` fault is an in-worker exception, not a death: the
        # worker survives and no respawn happens.
        assert stats["worker_restarts"] == 0


class TestCrashRecovery:
    def test_crash_surfaces_worker_crashed_with_exit_status(self):
        """max_attempts=1: the injected crash comes back as the outcome."""
        plan = _worker_plan("crash")

        async def body(supervisor):
            return await supervisor.solve_specs(_specs(1)), dict(
                supervisor.stats
            )

        outcomes, stats = asyncio.run(
            _with_pool(_settings(max_attempts=1), body, plan)
        )
        (outcome,) = outcomes
        assert isinstance(outcome, WorkerCrashed)
        assert outcome.exit_status == CRASH_EXIT_STATUS
        assert outcome.exit_code == 5
        assert stats["worker_crashes"] == 1
        assert stats["worker_restarts"] == 1

    def test_respawn_and_individual_redispatch_recover(self):
        """after=1 crash: batch dies, the respawned worker carries it.

        Each fresh worker forks with zeroed seam counters, so the first
        eligible hit is always skipped: the second batch on the original
        worker crashes, and the replacement's re-dispatch succeeds.
        """
        plan = _worker_plan("crash", after=1)

        async def body(supervisor):
            first = await supervisor.solve_specs(_specs(1))
            second = await supervisor.solve_specs(_specs(1))
            return first, second, dict(supervisor.stats)

        first, second, stats = asyncio.run(
            _with_pool(_settings(), body, plan)
        )
        assert not isinstance(first[0], BaseException)
        assert not isinstance(second[0], BaseException)
        assert stats["worker_crashes"] == 1
        assert stats["worker_restarts"] == 1
        assert stats["redispatched"] == 1


class TestHangRecovery:
    def test_missed_deadline_kills_and_redispatches(self):
        plan = _worker_plan("hang", after=1, delay_s=60.0)

        async def body(supervisor):
            first = await supervisor.solve_specs(_specs(1))
            second = await supervisor.solve_specs(_specs(1))
            return first, second, dict(supervisor.stats)

        first, second, stats = asyncio.run(
            _with_pool(_settings(batch_deadline_s=1.0), body, plan)
        )
        assert not isinstance(first[0], BaseException)
        assert not isinstance(second[0], BaseException)
        assert stats["deadline_timeouts"] == 1
        assert stats["worker_restarts"] == 1

    def test_hang_with_single_attempt_surfaces_deadline_exceeded(self):
        plan = _worker_plan("hang", delay_s=60.0)

        async def body(supervisor):
            return await supervisor.solve_specs(_specs(1))

        outcomes = asyncio.run(
            _with_pool(
                _settings(batch_deadline_s=0.5, max_attempts=1), body, plan
            )
        )
        assert isinstance(outcomes[0], DeadlineExceeded)


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    """Pure state-machine tests: fake clock, no subprocesses."""

    def _supervisor(self, clock):
        return WorkerSupervisor(SupervisorSettings(
            workers=1, max_restarts=2, restart_window_s=60.0,
            breaker_cooldown_s=5.0, clock=clock,
        ))

    def test_restart_storm_opens_then_cooldown_half_opens(self):
        clock = _FakeClock()
        supervisor = self._supervisor(clock)
        supervisor._note_restart()
        supervisor._note_restart()
        assert supervisor.breaker_state() == "closed"
        supervisor._note_restart()  # 3 > max_restarts=2: storm
        assert supervisor.breaker_state() == "open"
        assert supervisor.stats["breaker_opens"] == 1
        with pytest.raises(ServerOverloaded) as excinfo:
            supervisor.check_breaker()
        assert 0.0 < excinfo.value.retry_after_ms <= 5000.0
        assert supervisor.stats["breaker_shed"] == 1
        clock.now += 5.1
        assert supervisor.breaker_state() == "half-open"
        supervisor.check_breaker()  # half-open admits the probe

    def test_half_open_probe_success_closes(self):
        clock = _FakeClock()
        supervisor = self._supervisor(clock)
        for _ in range(3):
            supervisor._note_restart()
        clock.now += 5.1
        assert supervisor.breaker_state() == "half-open"
        supervisor._note_success()
        assert supervisor.breaker_state() == "closed"
        assert supervisor.health_snapshot()["restarts_in_window"] == 0

    def test_half_open_probe_failure_reopens(self):
        clock = _FakeClock()
        supervisor = self._supervisor(clock)
        for _ in range(3):
            supervisor._note_restart()
        clock.now += 5.1
        assert supervisor.breaker_state() == "half-open"
        supervisor._note_restart()  # the probe crashed too
        assert supervisor.breaker_state() == "open"
        assert supervisor.stats["breaker_opens"] == 2

    def test_restarts_age_out_of_the_window(self):
        clock = _FakeClock()
        supervisor = self._supervisor(clock)
        supervisor._note_restart()
        supervisor._note_restart()
        clock.now += 61.0  # both fall out of the 60s window
        supervisor._note_restart()
        assert supervisor.breaker_state() == "closed"
        assert supervisor.health_snapshot()["restarts_in_window"] == 1
