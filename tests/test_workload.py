"""Tests for the synthetic NLP workload generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workload import (
    ClientWorkload,
    NLPWorkloadGenerator,
    Request,
    workload_to_client_parameters,
)


class TestRequest:
    def test_token_count(self):
        request = Request(tokens=(1, 2, 3), payload_bits=100)
        assert request.num_tokens == 3


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = NLPWorkloadGenerator(seed=1).generate_client(0)
        b = NLPWorkloadGenerator(seed=1).generate_client(0)
        assert a.num_tokens == b.num_tokens
        assert a.requests[0].tokens == b.requests[0].tokens

    def test_token_budget_reached(self):
        workload = NLPWorkloadGenerator(seed=2).generate_client(0, target_tokens=160)
        assert workload.num_tokens >= 160

    def test_tokens_in_vocabulary(self):
        gen = NLPWorkloadGenerator(vocabulary_size=100, seed=3)
        workload = gen.generate_client(0, target_tokens=50)
        for request in workload.requests:
            assert all(0 <= t < 100 for t in request.tokens)

    def test_mean_request_length_tracks_parameter(self):
        gen = NLPWorkloadGenerator(mean_request_tokens=40.0, seed=4)
        lengths = [gen.generate_request().num_tokens for _ in range(2000)]
        assert np.mean(lengths) == pytest.approx(40.0, rel=0.15)

    def test_fleet_generation(self):
        fleet = NLPWorkloadGenerator(seed=5).generate_fleet(6)
        assert len(fleet) == 6
        assert [w.client_index for w in fleet] == list(range(6))

    def test_validation(self):
        with pytest.raises(ValueError):
            NLPWorkloadGenerator(vocabulary_size=1)
        with pytest.raises(ValueError):
            NLPWorkloadGenerator(tokens_per_sample=0)
        with pytest.raises(ValueError):
            NLPWorkloadGenerator(seed=0).generate_client(0, target_tokens=0)
        with pytest.raises(ValueError):
            NLPWorkloadGenerator(seed=0).generate_fleet(0)


class TestClientWorkload:
    def test_sample_count_matches_paper_formula(self):
        """num_samples == ceil(d_cmp / ϱ) — the Eq. 13 divisor."""
        workload = NLPWorkloadGenerator(seed=6).generate_client(0, target_tokens=160)
        assert workload.num_samples == -(-workload.num_tokens // 10)

    def test_samples_are_fixed_size(self):
        workload = NLPWorkloadGenerator(seed=7).generate_client(0, target_tokens=60)
        samples = workload.samples()
        assert all(len(s) == workload.tokens_per_sample for s in samples)
        assert len(samples) == workload.num_samples

    def test_samples_preserve_token_stream(self):
        workload = NLPWorkloadGenerator(seed=8).generate_client(0, target_tokens=40)
        stream = [t for r in workload.requests for t in r.tokens]
        flattened = [t for s in workload.samples() for t in s][: len(stream)]
        assert flattened == stream

    def test_parameter_mapping(self):
        workload = NLPWorkloadGenerator(seed=9).generate_client(0, target_tokens=160)
        params = workload_to_client_parameters(workload)
        assert params["num_tokens"] == workload.num_tokens
        assert params["tokens_per_sample"] == 10.0
        assert params["upload_bits"] == workload.upload_bits

    def test_paper_operating_point_approximated(self):
        """With defaults, aggregate upload bits land near d_tr = 3e9 when the
        token budget is the paper's d_cmp = 160."""
        workload = NLPWorkloadGenerator(seed=10).generate_client(0, target_tokens=160)
        assert workload.upload_bits == pytest.approx(3e9, rel=0.5)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=300), st.integers(min_value=1, max_value=20))
    def test_sample_batching_invariant(self, target, per_sample):
        gen = NLPWorkloadGenerator(tokens_per_sample=per_sample, seed=11)
        workload = gen.generate_client(0, target_tokens=target)
        total_sample_tokens = workload.num_samples * per_sample
        assert total_sample_tokens >= workload.num_tokens
