"""Codec version gating: every registered kind, both directions.

The contract: a payload whose ``format_version`` differs from the codec's
— older (written by a past release) or newer (written by a future one) —
must raise a clear ``ValueError`` naming the kind and versions, and must
never reach the decoder where it could silently mis-parse.

These tests are *generated over the registry* (``registered_kinds``), so a
newly added codec (e.g. ``campaign_result`` in this PR) is covered the
moment it registers, with no per-kind test to forget.
"""

import pytest

from repro.io import (
    _CODECS_BY_KIND,
    registered_kinds,
    result_from_dict,
    result_to_dict,
)

#: Every codec kind the platform ships (campaign_result joined in PR 5;
#: the npz-backed columnar batches joined in PR 10).
EXPECTED_KINDS = {
    "ablation_suite", "adaptive_sim_study", "allocation", "campaign_result",
    "config_batch", "convergence_traces", "dynamic_study", "fig5_bundle",
    "method_comparison", "metrics", "optimality_study", "pipeline_report",
    "quhe_result", "report_bundle", "simulation_result", "solution_batch",
    "stage1_method_comparison", "stage1_result", "stage2_result",
    "stage3_result", "stage_call_report", "sweep_series", "sweep_set",
}


def all_kinds():
    return registered_kinds()


class TestRegistryCoverage:
    def test_expected_kinds_present(self):
        assert EXPECTED_KINDS <= set(all_kinds())

    def test_every_codec_declares_a_positive_version(self):
        registered_kinds()  # force built-in registration
        for kind, codec in _CODECS_BY_KIND.items():
            assert isinstance(codec.version, int) and codec.version >= 1, kind


class TestVersionGating:
    """No codec may decode a payload from a different format version."""

    @pytest.mark.parametrize("kind", all_kinds())
    def test_newer_version_rejected_with_clear_error(self, kind):
        """A v-old reader meeting a v-new payload must fail loudly."""
        codec = _CODECS_BY_KIND[kind]
        payload = {"kind": kind, "format_version": codec.version + 1}
        with pytest.raises(ValueError) as excinfo:
            result_from_dict(payload)
        message = str(excinfo.value)
        assert kind in message
        assert "version" in message
        assert str(codec.version) in message  # says what *is* supported

    @pytest.mark.parametrize("kind", all_kinds())
    def test_older_version_rejected_with_clear_error(self, kind):
        """A v-new reader meeting a v-old payload must fail loudly, never
        guess its way through a stale schema."""
        codec = _CODECS_BY_KIND[kind]
        payload = {"kind": kind, "format_version": codec.version - 1}
        with pytest.raises(ValueError, match="version"):
            result_from_dict(payload)

    @pytest.mark.parametrize("kind", all_kinds())
    def test_missing_version_rejected(self, kind):
        with pytest.raises(ValueError, match="version"):
            result_from_dict({"kind": kind})

    def test_unknown_kind_lists_known_kinds(self):
        with pytest.raises(ValueError, match="campaign_result"):
            result_from_dict({"kind": "no_such_kind", "format_version": 1})


class TestNpzArtifactGating:
    """The npz container enforces the same gate as the JSON path: a
    tampered or truncated archive fails loudly with an ``ArtifactError``
    that names the offending file."""

    @pytest.fixture()
    def config_batch_path(self, tmp_path, typical_cfg):
        from repro.core.batch import ConfigBatch
        from repro.io import save_batch_npz

        path = tmp_path / "batch.npz"
        save_batch_npz(ConfigBatch.from_configs([typical_cfg]), path)
        return path

    @staticmethod
    def _rewrite_meta(path, mutate):
        """Re-pack the archive with a mutated ``__meta__`` header."""
        import json

        import numpy as np

        with np.load(path, allow_pickle=False) as archive:
            members = {name: archive[name] for name in archive.files}
        header = json.loads(str(members["__meta__"][()]))
        mutate(header)
        members["__meta__"] = np.asarray(json.dumps(header))
        np.savez(path, **members)

    def test_future_format_version_rejected(self, config_batch_path):
        from repro.io import ArtifactError, load_batch_npz

        def bump(header):
            header["format_version"] += 1

        self._rewrite_meta(config_batch_path, bump)
        with pytest.raises(ArtifactError) as excinfo:
            load_batch_npz(config_batch_path)
        message = str(excinfo.value)
        assert "config_batch" in message and "version" in message
        assert "batch.npz" in message

    def test_unknown_kind_lists_known_kinds(self, config_batch_path):
        from repro.io import ArtifactError, load_batch_npz

        def rename(header):
            header["kind"] = "no_such_kind"

        self._rewrite_meta(config_batch_path, rename)
        with pytest.raises(ArtifactError, match="solution_batch"):
            load_batch_npz(config_batch_path)

    def test_truncated_archive_names_the_path(self, config_batch_path):
        from repro.io import ArtifactError, load_batch_npz

        data = config_batch_path.read_bytes()
        config_batch_path.write_bytes(data[: len(data) // 3])
        with pytest.raises(ArtifactError, match="batch.npz"):
            load_batch_npz(config_batch_path)

    def test_zero_byte_archive_names_the_path(self, config_batch_path):
        from repro.io import ArtifactError, load_batch_npz

        config_batch_path.write_bytes(b"")
        with pytest.raises(ArtifactError, match="batch.npz"):
            load_batch_npz(config_batch_path)

    def test_missing_meta_member_rejected(self, tmp_path):
        import numpy as np

        from repro.io import ArtifactError, load_batch_npz

        path = tmp_path / "bare.npz"
        np.savez(path, some_column=np.zeros(3))
        with pytest.raises(ArtifactError, match="bare.npz"):
            load_batch_npz(path)


class TestRoundTripVersionStamp:
    """Encoded payloads carry the codec's version, and a stamped payload
    with a bumped version no longer round-trips."""

    def test_campaign_result_roundtrip_and_bump(self):
        from repro.campaign.result import CampaignResult, GridPointAggregate

        result = CampaignResult(
            name="t", scenario="sim-keyrate", base={"duration": 4.0},
            axes={"demand_factor": [0.0, 0.5]}, seeds=[1, 2], backend="auto",
            cells_total=4, cells_completed=4,
            points=[GridPointAggregate(
                params={"demand_factor": 0.0},
                metrics={"total_key_bits": {
                    "count": 2, "mean": 10.0, "std": 1.0, "min": 9.0,
                    "max": 11.0, "ci95": 0.5, "p05": 9.1, "p50": 10.0,
                    "p95": 10.9,
                }},
            )],
        )
        payload = result_to_dict(result)
        assert payload["kind"] == "campaign_result"
        assert payload["format_version"] == 1
        restored = result_from_dict(payload)
        assert result_to_dict(restored) == payload

        stale = dict(payload)
        stale["format_version"] = 0  # a past release's artifact
        with pytest.raises(ValueError, match="campaign_result.*version"):
            result_from_dict(stale)
        future = dict(payload)
        future["format_version"] = 2  # a future release's artifact
        with pytest.raises(ValueError, match="campaign_result.*version"):
            result_from_dict(future)

    @pytest.mark.parametrize(
        "kind,builder",
        [
            ("allocation", "alloc"),
            ("metrics", "metrics"),
            ("quhe_result", "quhe"),
            ("simulation_result", "sim"),
        ],
    )
    def test_real_payload_with_bumped_version_rejected(
        self, kind, builder, quhe_result
    ):
        if builder == "alloc":
            obj = quhe_result.allocation
        elif builder == "metrics":
            obj = quhe_result.metrics
        elif builder == "quhe":
            obj = quhe_result
        else:
            from repro.api.service import SolverService
            from repro.experiments.simulation import run_keyrate_sim

            obj = run_keyrate_sim(
                seed=2, duration_s=4.0, service=SolverService()
            )
        payload = result_to_dict(obj)
        assert payload["kind"] == kind
        payload["format_version"] += 1
        with pytest.raises(ValueError, match="version"):
            result_from_dict(payload)
