"""Tests for the experiment CLI (python -m repro ...)."""

import pytest

from repro import faults
from repro.cli import main
from repro.errors import ConfigurationError, FaultInjected


class TestCLI:
    def test_solve(self, capsys):
        assert main(["--seed", "2", "solve"]) == 0
        out = capsys.readouterr().out
        assert "phi:" in out and "converged=True" in out

    def test_table5(self, capsys):
        assert main(["--seed", "0", "table5"]) == 0
        assert "Table V" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["--seed", "0", "table6"]) == 0
        assert "Table VI" in capsys.readouterr().out

    def test_fig3_small(self, capsys):
        assert main(["--seed", "1", "fig3", "--samples", "2"]) == 0
        assert "histogram" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["--seed", "2", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "stage1" in out and "stage3 gap" in out

    def test_fig6_single_panel(self, capsys):
        assert main(["--seed", "2", "fig6", "--panel", "server_cpu"]) == 0
        out = capsys.readouterr().out
        assert "server_cpu" in out and "QuHE" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


_RAISE_PLAN = '{"seed": 1, "rules": [{"seam": "worker.solve", "kind": "raise"}]}'


class TestCLIFailurePaths:
    """Exit-code discipline: each taxonomy class maps to a distinct code."""

    @pytest.fixture(autouse=True)
    def _no_leaked_plan(self):
        # A warm service cache would satisfy `solve` without ever reaching
        # the worker.solve seam; chaos paths need the cold path.
        from repro.api.scenarios import SERVICE

        SERVICE.clear_cache()
        faults.clear()
        yield
        faults.clear()

    def test_missing_campaign_dir_exits_4(self, tmp_path, capsys):
        code = main(["campaign", "status", str(tmp_path / "nowhere")])
        assert code == 4
        err = capsys.readouterr().err
        assert err.startswith("repro: FileNotFoundError:")
        assert err.count("\n") == 1  # one line, no traceback

    def test_bad_fault_plan_exits_2(self, capsys):
        assert main(["--faults", "{not json", "solve"]) == 2
        assert "repro: ConfigurationError:" in capsys.readouterr().err

    def test_injected_fault_exits_9(self, capsys):
        code = main(["--faults", _RAISE_PLAN, "solve", "--seed", "2"])
        assert code == 9
        assert "repro: FaultInjected:" in capsys.readouterr().err

    def test_debug_raises_instead_of_exit_code(self):
        with pytest.raises(FaultInjected):
            main(["--debug", "--faults", _RAISE_PLAN, "solve", "--seed", "2"])

    def test_debug_raises_configuration_errors(self):
        with pytest.raises(ConfigurationError):
            main(["--debug", "--faults", "{not json", "solve"])

    def test_set_faults_intercepted_not_passed_to_scenario(self, capsys):
        # `--set faults=PLAN` must install the plan, not hit the scenario's
        # parameter table (solve has no 'faults' parameter).
        code = main([
            "run", "solve", "--set", f"faults={_RAISE_PLAN}",
            "--set", "seed=2",
        ])
        assert code == 9
        assert "FaultInjected" in capsys.readouterr().err

    def test_faultfree_run_still_exits_0(self, capsys):
        assert main(["solve", "--seed", "2"]) == 0
        assert "converged=True" in capsys.readouterr().out
