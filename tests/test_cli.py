"""Tests for the experiment CLI (python -m repro ...)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_solve(self, capsys):
        assert main(["--seed", "2", "solve"]) == 0
        out = capsys.readouterr().out
        assert "phi:" in out and "converged=True" in out

    def test_table5(self, capsys):
        assert main(["--seed", "0", "table5"]) == 0
        assert "Table V" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["--seed", "0", "table6"]) == 0
        assert "Table VI" in capsys.readouterr().out

    def test_fig3_small(self, capsys):
        assert main(["--seed", "1", "fig3", "--samples", "2"]) == 0
        assert "histogram" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["--seed", "2", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "stage1" in out and "stage3 gap" in out

    def test_fig6_single_panel(self, capsys):
        assert main(["--seed", "2", "fig6", "--panel", "server_cpu"]) == 0
        out = capsys.readouterr().out
        assert "server_cpu" in out and "QuHE" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
