"""Tests for the KeyCenter (QKD key pooling and consumption)."""

import numpy as np
import pytest

from repro.quantum.key_manager import KeyCenter, KeyPoolEmptyError
from repro.quantum.topology import surfnet_network
from repro.quantum.utility import optimal_link_werner


@pytest.fixture(scope="module")
def net():
    return surfnet_network()


@pytest.fixture()
def allocation(net):
    phi = np.full(net.num_routes, 0.8)
    w = optimal_link_werner(phi, net.incidence, net.betas) * 0.999
    return phi, w


class TestReplenish:
    def test_pools_grow(self, net, allocation):
        phi, w = allocation
        center = KeyCenter(net, seed=0)
        assert all(v == 0 for v in center.pool_summary().values())
        center.replenish(phi, w, duration_s=600.0)
        assert sum(center.pool_summary().values()) > 0

    def test_one_session_per_route(self, net, allocation):
        phi, w = allocation
        center = KeyCenter(net, seed=0)
        results = center.replenish(phi, w, duration_s=100.0)
        assert len(results) == net.num_routes
        assert len(center.session_history) == net.num_routes

    def test_deterministic_given_seed(self, net, allocation):
        phi, w = allocation
        pools = []
        for _ in range(2):
            center = KeyCenter(net, seed=42)
            center.replenish(phi, w, duration_s=200.0)
            pools.append(center.pool_summary())
        assert pools[0] == pools[1]


class TestDrawKey:
    def test_draw_consumes_pool(self, net, allocation):
        phi, w = allocation
        center = KeyCenter(net, seed=1)
        center.replenish(phi, w, duration_s=800.0)
        before = center.available_bytes(0)
        if before < 16:
            pytest.skip("seeded run delivered too little key material")
        key = center.draw_key(0, 16)
        assert len(key) == 16
        assert center.available_bytes(0) == before - 16

    def test_empty_pool_raises(self, net):
        center = KeyCenter(net, seed=2)
        with pytest.raises(KeyPoolEmptyError):
            center.draw_key(0, 1)

    def test_nonpositive_request_rejected(self, net):
        center = KeyCenter(net, seed=3)
        with pytest.raises(ValueError):
            center.draw_key(0, 0)

    def test_distinct_draws_are_distinct_bytes(self, net, allocation):
        phi, w = allocation
        center = KeyCenter(net, seed=4)
        for _ in range(10):
            center.replenish(phi, w, duration_s=600.0)
        if center.available_bytes(0) < 32:
            pytest.skip("not enough key material in seeded run")
        k1 = center.draw_key(0, 16)
        k2 = center.draw_key(0, 16)
        assert k1 != k2
