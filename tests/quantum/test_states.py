"""Density-matrix validation of the Werner-state facts used by the paper.

These tests *derive* the two scalar rules the optimization layer assumes:
QBER = (1-w)/2 for matched-basis measurement, and the w-product rule of
Eq. 5 under entanglement swapping.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum.states import (
    bell_projector,
    bell_state,
    depolarize,
    entanglement_swap,
    fidelity_with_bell,
    is_density_matrix,
    matched_basis_error_probability,
    werner_parameter,
    werner_state,
)


class TestBellStates:
    def test_normalised(self):
        for i in range(4):
            assert np.linalg.norm(bell_state(i)) == pytest.approx(1.0)

    def test_orthogonal(self):
        for i in range(4):
            for j in range(i + 1, 4):
                assert abs(bell_state(i).conj() @ bell_state(j)) < 1e-12

    def test_projectors_sum_to_identity(self):
        total = sum(bell_projector(i) for i in range(4))
        assert np.allclose(total, np.eye(4))

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            bell_state(4)


class TestWernerStates:
    @pytest.mark.parametrize("w", [0.0, 0.3, 0.7794, 0.95, 1.0])
    def test_valid_density_matrix(self, w):
        assert is_density_matrix(werner_state(w))

    def test_w_one_is_bell(self):
        assert np.allclose(werner_state(1.0), bell_projector(0))

    def test_w_zero_is_maximally_mixed(self):
        assert np.allclose(werner_state(0.0), np.eye(4) / 4)

    @pytest.mark.parametrize("w", [0.1, 0.5, 0.9])
    def test_parameter_recovery(self, w):
        assert werner_parameter(werner_state(w)) == pytest.approx(w)

    def test_fidelity_formula(self):
        # F = w + (1-w)/4.
        w = 0.8
        assert fidelity_with_bell(werner_state(w)) == pytest.approx(w + (1 - w) / 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            werner_state(1.1)


class TestQBERDerivation:
    @pytest.mark.parametrize("w", [0.0, 0.5, 0.779944, 0.9, 1.0])
    def test_matched_basis_error_is_half_one_minus_w(self, w):
        """The QBER behind Eq. 4, derived from the density matrix."""
        qber = matched_basis_error_probability(werner_state(w))
        assert qber == pytest.approx((1 - w) / 2)


class TestSwapping:
    @settings(max_examples=15, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_product_rule_eq5(self, w1, w2):
        """Swapping Werner(w1) and Werner(w2) yields Werner(w1·w2)."""
        out = entanglement_swap(werner_state(w1), werner_state(w2))
        assert is_density_matrix(out)
        assert werner_parameter(out) == pytest.approx(w1 * w2, abs=1e-9)

    def test_perfect_pairs_swap_perfectly(self):
        out = entanglement_swap(werner_state(1.0), werner_state(1.0))
        assert np.allclose(out, bell_projector(0), atol=1e-12)

    def test_three_hop_chain(self):
        """Iterated swapping reproduces the route product Π w_l."""
        ws = [0.95, 0.9, 0.85]
        rho = werner_state(ws[0])
        for w in ws[1:]:
            rho = entanglement_swap(rho, werner_state(w))
        assert werner_parameter(rho) == pytest.approx(np.prod(ws), abs=1e-9)


class TestDepolarize:
    def test_scales_werner_parameter(self):
        rho = depolarize(werner_state(0.9), 0.2)
        assert werner_parameter(rho) == pytest.approx(0.9 * 0.8)

    def test_probability_one_gives_mixed(self):
        rho = depolarize(werner_state(0.9), 1.0)
        assert np.allclose(rho, np.eye(4) / 4)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            depolarize(werner_state(0.9), 1.5)
