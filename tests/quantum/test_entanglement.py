"""Tests for the entanglement generation/swapping simulator."""

import numpy as np
import pytest

from repro.quantum.entanglement import EntanglementSimulator
from repro.quantum.topology import surfnet_network
from repro.quantum.utility import optimal_link_werner, route_werner_parameters


@pytest.fixture(scope="module")
def net():
    return surfnet_network()


@pytest.fixture()
def feasible_allocation(net):
    phi = np.full(net.num_routes, 0.6)
    w = optimal_link_werner(phi, net.incidence, net.betas) * 0.999
    return phi, w


class TestRun:
    def test_delivers_batches_per_route(self, net, feasible_allocation):
        phi, w = feasible_allocation
        sim = EntanglementSimulator(net, seed=1)
        batches = sim.run(phi, w, duration_s=50.0)
        assert len(batches) == net.num_routes
        assert all(b.count >= 0 for b in batches)

    def test_batch_werner_matches_eq5(self, net, feasible_allocation):
        phi, w = feasible_allocation
        sim = EntanglementSimulator(net, seed=1)
        batches = sim.run(phi, w, duration_s=10.0)
        varpi = route_werner_parameters(w, net.incidence)
        for n, batch in enumerate(batches):
            assert batch.werner == pytest.approx(varpi[n])

    def test_delivered_rate_concentrates_on_allocation(self, net, feasible_allocation):
        phi, w = feasible_allocation
        sim = EntanglementSimulator(net, seed=2)
        rates = sim.delivered_rates(phi, w, duration_s=2000.0)
        for n, route in enumerate(net.routes):
            # Swapping takes the min across links, so the delivered rate is
            # at most φ and concentrates near it for long windows.
            assert rates[route.route_id] == pytest.approx(phi[n], rel=0.25)
            assert rates[route.route_id] <= phi[n] * 1.05

    def test_overload_rejected(self, net):
        phi = np.full(net.num_routes, 100.0)
        w = np.full(net.num_links, 0.99)
        sim = EntanglementSimulator(net, seed=0)
        with pytest.raises(ValueError, match="exceeds capacity"):
            sim.run(phi, w)

    def test_wrong_shapes_rejected(self, net, feasible_allocation):
        phi, w = feasible_allocation
        sim = EntanglementSimulator(net, seed=0)
        with pytest.raises(ValueError):
            sim.run(phi[:-1], w)
        with pytest.raises(ValueError):
            sim.run(phi, w[:-1])
        with pytest.raises(ValueError):
            sim.run(phi, w, duration_s=0.0)

    def test_deterministic_given_seed(self, net, feasible_allocation):
        phi, w = feasible_allocation
        runs = [
            EntanglementSimulator(net, seed=7).run(phi, w, duration_s=20.0)
            for _ in range(2)
        ]
        assert [b.count for b in runs[0]] == [b.count for b in runs[1]]


class TestQBER:
    def test_qber_concentrates_on_theory(self, net, feasible_allocation):
        phi, w = feasible_allocation
        sim = EntanglementSimulator(net, seed=3)
        batches = sim.run(phi, w, duration_s=3000.0)
        varpi = route_werner_parameters(w, net.incidence)
        for n, batch in enumerate(batches):
            if batch.count < 200:
                continue
            qber = sim.measure_qber(batch)
            assert qber == pytest.approx((1 - varpi[n]) / 2, abs=0.05)

    def test_empty_batch_yields_nan(self, net, feasible_allocation):
        phi, w = feasible_allocation
        sim = EntanglementSimulator(net, seed=0)
        batches = sim.run(phi, w, duration_s=1e-6)
        empty = [b for b in batches if b.count == 0]
        assert empty, "expected at least one empty batch in a tiny window"
        assert np.isnan(sim.measure_qber(empty[0]))
