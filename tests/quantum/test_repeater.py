"""Tests for the time-stepped repeater-chain simulator."""

import numpy as np
import pytest

from repro.quantum.repeater import (
    ChainStatistics,
    RepeaterChainSimulator,
    RepeaterLink,
    calibrate_link_abstraction,
)


def chain(probs, werner=0.95, **kwargs):
    links = [RepeaterLink(p, werner) for p in probs]
    return RepeaterChainSimulator(links, **kwargs)


class TestSingleLink:
    def test_rate_matches_generation_probability(self):
        sim = chain([0.3], seed=0)
        stats = sim.run(30_000)
        assert stats.delivery_rate == pytest.approx(0.3, rel=0.05)

    def test_fresh_pairs_keep_base_werner(self):
        # A single link swaps immediately on generation: age 0, no decay.
        sim = chain([0.5], werner=0.9, seed=1)
        stats = sim.run(5_000)
        assert stats.mean_werner == pytest.approx(0.9, rel=1e-6)


class TestChainBehaviour:
    def test_rate_below_weakest_link(self):
        sim = chain([0.4, 0.2, 0.4], seed=2)
        stats = sim.run(30_000)
        assert stats.delivery_rate < 0.2
        assert stats.delivery_rate > 0.05

    def test_fast_links_long_memory_approach_eq5(self):
        """The paper's static abstraction is accurate in the fast/coherent regime."""
        sim = chain([0.9, 0.9, 0.9], werner=0.95, coherence_slots=10_000, seed=3)
        report = calibrate_link_abstraction(sim, time_slots=20_000)
        assert report["mean_werner"] == pytest.approx(report["ideal_werner"], rel=0.01)
        assert report["decoherence_shortfall"] < 0.01

    def test_slow_links_short_memory_degrade(self):
        """Decoherence bites when partners are slow: ϖ < Π w_l."""
        sim = chain([0.05, 0.05], werner=0.95, coherence_slots=20.0, seed=4)
        report = calibrate_link_abstraction(sim, time_slots=40_000)
        assert report["decoherence_shortfall"] > 0.1

    def test_cutoff_discards_and_preserves_fidelity(self):
        loose = chain([0.05, 0.05], werner=0.95, coherence_slots=30.0, seed=5)
        strict = chain(
            [0.05, 0.05], werner=0.95, coherence_slots=30.0, cutoff_slots=10, seed=5
        )
        loose_stats = loose.run(40_000)
        strict_stats = strict.run(40_000)
        assert strict_stats.discarded_pairs > 0
        assert loose_stats.discarded_pairs == 0
        # Discarding old pairs raises delivered fidelity at some rate cost.
        assert strict_stats.mean_werner > loose_stats.mean_werner
        assert strict_stats.delivered_pairs <= loose_stats.delivered_pairs

    def test_deterministic_given_seed(self):
        a = chain([0.3, 0.3], seed=7).run(5_000)
        b = chain([0.3, 0.3], seed=7).run(5_000)
        assert a.delivered_pairs == b.delivered_pairs
        assert a.mean_werner == pytest.approx(b.mean_werner)

    def test_no_delivery_gives_nan_werner(self):
        sim = chain([1e-6, 1e-6], seed=8)
        stats = sim.run(100)
        assert stats.delivered_pairs == 0
        assert np.isnan(stats.mean_werner)


class TestValidation:
    def test_link_validation(self):
        with pytest.raises(ValueError):
            RepeaterLink(0.0, 0.9)
        with pytest.raises(ValueError):
            RepeaterLink(0.5, 1.5)

    def test_simulator_validation(self):
        with pytest.raises(ValueError):
            RepeaterChainSimulator([])
        with pytest.raises(ValueError):
            chain([0.5], coherence_slots=0.0)
        with pytest.raises(ValueError):
            chain([0.5], cutoff_slots=0)
        with pytest.raises(ValueError):
            chain([0.5]).run(0)
