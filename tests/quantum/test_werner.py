"""Unit + property tests for the Werner-state link model (paper Eq. 3-5)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.quantum.werner import (
    F_SKF_ZERO_CROSSING,
    end_to_end_werner,
    link_capacity,
    secret_key_fraction,
    secret_key_fraction_derivative,
)


class TestSecretKeyFraction:
    def test_perfect_pair_yields_full_fraction(self):
        assert secret_key_fraction(1.0) == pytest.approx(1.0)

    def test_maximally_mixed_yields_zero(self):
        assert secret_key_fraction(0.0) == 0.0

    def test_zero_below_crossing(self):
        assert secret_key_fraction(F_SKF_ZERO_CROSSING - 1e-6) == 0.0

    def test_positive_above_crossing(self):
        assert secret_key_fraction(F_SKF_ZERO_CROSSING + 1e-3) > 0.0

    def test_crossing_value_matches_paper_constant(self):
        # The paper: 0.779944 is the largest w with F_skf(w) = 0.
        assert secret_key_fraction(0.779944) == pytest.approx(0.0, abs=1e-5)

    def test_matches_paper_formula_explicitly(self):
        # Compare against the verbatim Eq. 4 expression at a few points.
        for w in (0.85, 0.9, 0.95, 0.99):
            expected = 1.0 + (1 + w) * np.log2((1 + w) / 2) + (1 - w) * np.log2((1 - w) / 2)
            assert secret_key_fraction(w) == pytest.approx(max(0.0, expected), rel=1e-12)

    def test_array_input_shape(self):
        w = np.array([0.0, 0.5, 0.9, 1.0])
        out = secret_key_fraction(w)
        assert out.shape == w.shape

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            secret_key_fraction(1.5)
        with pytest.raises(ValueError):
            secret_key_fraction(-0.1)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_bounded_between_zero_and_one(self, w):
        assert 0.0 <= secret_key_fraction(w) <= 1.0

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_monotone_nondecreasing(self, w1, w2):
        lo, hi = sorted((w1, w2))
        assert secret_key_fraction(lo) <= secret_key_fraction(hi) + 1e-12


class TestDerivative:
    def test_zero_below_crossing(self):
        assert secret_key_fraction_derivative(0.5) == 0.0

    def test_positive_above_crossing(self):
        assert secret_key_fraction_derivative(0.9) > 0.0

    def test_matches_finite_difference(self):
        for w in (0.85, 0.9, 0.95):
            h = 1e-7
            numeric = (secret_key_fraction(w + h) - secret_key_fraction(w - h)) / (2 * h)
            assert secret_key_fraction_derivative(w) == pytest.approx(numeric, rel=1e-5)

    def test_infinite_at_one(self):
        assert np.isinf(secret_key_fraction_derivative(1.0))


class TestLinkCapacity:
    def test_eq3_formula(self):
        assert link_capacity(89.84, 0.9766) == pytest.approx(89.84 * (1 - 0.9766))

    def test_zero_at_full_fidelity(self):
        assert link_capacity(50.0, 1.0) == 0.0

    def test_rejects_nonpositive_beta(self):
        with pytest.raises(ValueError):
            link_capacity(0.0, 0.5)

    @given(
        st.floats(min_value=1e-3, max_value=1e3),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_capacity_nonnegative_and_below_beta(self, beta, w):
        c = link_capacity(beta, w)
        assert 0.0 <= c <= beta


class TestEndToEndWerner:
    def test_single_link_identity(self):
        assert end_to_end_werner([0.9], [0]) == pytest.approx(0.9)

    def test_product_over_route(self):
        w = [0.9, 0.8, 0.95]
        assert end_to_end_werner(w, [0, 1, 2]) == pytest.approx(0.9 * 0.8 * 0.95)

    def test_subset_of_links(self):
        w = [0.9, 0.8, 0.95, 0.7]
        assert end_to_end_werner(w, [0, 2]) == pytest.approx(0.9 * 0.95)

    def test_empty_route_rejected(self):
        with pytest.raises(ValueError):
            end_to_end_werner([0.9], [])

    @given(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=8))
    def test_swapping_never_improves_fidelity(self, ws):
        varpi = end_to_end_werner(ws, list(range(len(ws))))
        assert varpi <= min(ws) + 1e-12
