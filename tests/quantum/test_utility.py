"""Tests for the QKD network utility (Eq. 6) and the Stage-1 objective."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum.topology import surfnet_network
from repro.quantum.utility import (
    log_qkd_utility,
    optimal_link_werner,
    qkd_utility,
    route_werner_parameters,
    stage1_objective_and_gradient,
)
from repro.quantum.werner import secret_key_fraction


@pytest.fixture(scope="module")
def net():
    return surfnet_network()


class TestRouteWerner:
    def test_matches_manual_product(self, net):
        w = np.linspace(0.9, 0.99, net.num_links)
        varpi = route_werner_parameters(w, net.incidence)
        # Route 4 = links 15, 18 (0-based 14, 17).
        assert varpi[3] == pytest.approx(w[14] * w[17])

    def test_unit_werner_gives_unit_route(self, net):
        varpi = route_werner_parameters(np.ones(net.num_links), net.incidence)
        assert np.allclose(varpi, 1.0)

    def test_rejects_zero_werner(self, net):
        w = np.ones(net.num_links)
        w[0] = 0.0
        with pytest.raises(ValueError):
            route_werner_parameters(w, net.incidence)

    def test_shape_mismatch_rejected(self, net):
        with pytest.raises(ValueError):
            route_werner_parameters(np.ones(3), net.incidence)


class TestUtility:
    def test_eq6_product_form(self):
        phi = np.array([1.0, 2.0])
        varpi = np.array([0.9, 0.95])
        expected = (
            1.0 * secret_key_fraction(0.9) * 2.0 * secret_key_fraction(0.95)
        )
        assert qkd_utility(phi, varpi) == pytest.approx(expected)

    def test_zero_fraction_kills_utility(self):
        phi = np.array([1.0, 2.0])
        varpi = np.array([0.9, 0.5])  # second below the crossing
        assert qkd_utility(phi, varpi) == 0.0
        assert log_qkd_utility(phi, varpi) == -np.inf

    def test_log_consistency(self):
        phi = np.array([1.5, 0.7, 2.0])
        varpi = np.array([0.9, 0.92, 0.97])
        assert log_qkd_utility(phi, varpi) == pytest.approx(
            np.log(qkd_utility(phi, varpi))
        )

    def test_utility_increasing_in_rate(self):
        varpi = np.array([0.9, 0.9])
        low = qkd_utility(np.array([1.0, 1.0]), varpi)
        high = qkd_utility(np.array([2.0, 1.0]), varpi)
        assert high > low

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            qkd_utility(np.array([-1.0]), np.array([0.9]))


class TestOptimalWerner:
    def test_eq18_closed_form(self, net):
        phi = np.full(net.num_routes, 0.6)
        w = optimal_link_werner(phi, net.incidence, net.betas)
        load = net.incidence @ phi
        assert np.allclose(w, 1.0 - load / net.betas)

    def test_unused_link_gets_unity(self, net):
        phi = np.full(net.num_routes, 0.6)
        w = optimal_link_werner(phi, net.incidence, net.betas)
        assert w[5] == 1.0  # link 6 is on no route

    def test_overload_rejected(self, net):
        phi = np.full(net.num_routes, 1e4)
        with pytest.raises(ValueError, match="overload"):
            optimal_link_werner(phi, net.incidence, net.betas)

    def test_capacity_constraint_tight(self, net):
        # Eq. 18 saturates (17c): load == β (1 - w).
        phi = np.full(net.num_routes, 0.8)
        w = optimal_link_werner(phi, net.incidence, net.betas)
        load = net.incidence @ phi
        assert np.allclose(load, net.betas * (1.0 - w))


class TestStage1Objective:
    def test_gradient_matches_finite_difference(self, net):
        x = np.log(np.full(net.num_routes, 0.7))
        value, grad = stage1_objective_and_gradient(x, net.incidence, net.betas)
        assert np.isfinite(value)
        for k in range(len(x)):
            h = 1e-6
            xp, xm = x.copy(), x.copy()
            xp[k] += h
            xm[k] -= h
            vp, _ = stage1_objective_and_gradient(xp, net.incidence, net.betas)
            vm, _ = stage1_objective_and_gradient(xm, net.incidence, net.betas)
            assert grad[k] == pytest.approx((vp - vm) / (2 * h), rel=1e-4, abs=1e-6)

    def test_outside_domain_returns_inf(self, net):
        x = np.log(np.full(net.num_routes, 1e5))
        value, _ = stage1_objective_and_gradient(x, net.incidence, net.betas)
        assert value == np.inf

    def test_objective_equals_negative_log_utility(self, net):
        phi = np.full(net.num_routes, 0.7)
        x = np.log(phi)
        value, _ = stage1_objective_and_gradient(x, net.incidence, net.betas)
        w = optimal_link_werner(phi, net.incidence, net.betas)
        varpi = route_werner_parameters(w, net.incidence)
        assert value == pytest.approx(-log_qkd_utility(phi, varpi))

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.5, max_value=0.9))
    def test_convexity_along_random_segments(self, phi_level):
        """The P3 objective is convex in ϕ (Kar-Wehner); check midpoint convexity."""
        net = surfnet_network()
        rng = np.random.default_rng(int(phi_level * 1e6))
        x1 = np.log(np.full(net.num_routes, phi_level) * rng.uniform(0.9, 1.1, net.num_routes))
        x2 = np.log(np.full(net.num_routes, phi_level) * rng.uniform(0.9, 1.1, net.num_routes))
        v1, _ = stage1_objective_and_gradient(x1, net.incidence, net.betas)
        v2, _ = stage1_objective_and_gradient(x2, net.incidence, net.betas)
        vm, _ = stage1_objective_and_gradient((x1 + x2) / 2, net.incidence, net.betas)
        if np.isfinite(v1) and np.isfinite(v2) and np.isfinite(vm):
            assert vm <= (v1 + v2) / 2 + 1e-9
