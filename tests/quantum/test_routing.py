"""Tests for Route and the incidence-matrix builder."""

import numpy as np
import pytest

from repro.quantum.routing import Route, incidence_matrix, routes_from_paths


class TestRoute:
    def test_link_indices_are_zero_based(self):
        route = Route(1, "A", "B", (3, 1, 2))
        assert route.link_indices == (2, 0, 1)

    def test_hop_count(self):
        assert Route(1, "A", "B", (5, 6)).hop_count == 2

    def test_repeated_link_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            Route(1, "A", "B", (1, 1))

    def test_empty_route_rejected(self):
        with pytest.raises(ValueError, match="at least one link"):
            Route(1, "A", "B", ())

    def test_nonpositive_route_id_rejected(self):
        with pytest.raises(ValueError):
            Route(0, "A", "B", (1,))

    def test_nonpositive_link_id_rejected(self):
        with pytest.raises(ValueError, match="1-based"):
            Route(1, "A", "B", (0,))


class TestIncidenceMatrix:
    def test_shape_and_entries(self):
        routes = [Route(1, "A", "B", (1, 2)), Route(2, "A", "C", (2, 3))]
        a = incidence_matrix(routes, 4)
        assert a.shape == (4, 2)
        assert a[0].tolist() == [1, 0]
        assert a[1].tolist() == [1, 1]
        assert a[2].tolist() == [0, 1]
        assert a[3].tolist() == [0, 0]

    def test_out_of_range_link_rejected(self):
        with pytest.raises(ValueError, match="only 2 links"):
            incidence_matrix([Route(1, "A", "B", (3,))], 2)

    def test_column_sums_are_hop_counts(self):
        routes = [Route(1, "A", "B", (1, 2, 3)), Route(2, "A", "C", (4,))]
        a = incidence_matrix(routes, 4)
        assert a.sum(axis=0).tolist() == [3, 1]


class TestRoutesFromPaths:
    def test_builds_routes_in_order(self):
        edge_map = {
            frozenset(("KC", "A")): 1,
            frozenset(("A", "B")): 2,
        }
        routes = routes_from_paths([["KC", "A"], ["KC", "A", "B"]], edge_map)
        assert routes[0].link_ids == (1,)
        assert routes[1].link_ids == (1, 2)
        assert routes[1].target == "B"

    def test_unknown_edge_rejected(self):
        with pytest.raises(ValueError, match="unknown edge"):
            routes_from_paths([["KC", "X"]], {})

    def test_short_path_rejected(self):
        with pytest.raises(ValueError, match="two nodes"):
            routes_from_paths([["KC"]], {})
