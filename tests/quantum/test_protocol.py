"""Tests for the BBM92 QKD protocol pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum.protocol import (
    BBM92Protocol,
    QBER_ABORT_THRESHOLD,
    binary_entropy,
    bits_to_bytes,
)
from repro.quantum.werner import F_SKF_ZERO_CROSSING, secret_key_fraction


class TestBinaryEntropy:
    def test_extremes(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_maximum_at_half(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_symmetry(self):
        assert binary_entropy(0.1) == pytest.approx(binary_entropy(0.9))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            binary_entropy(1.2)


class TestAbortThreshold:
    def test_matches_werner_crossing(self):
        # 1 - 2 h(Q) = 0 at Q = (1 - 0.779944)/2.
        assert QBER_ABORT_THRESHOLD == pytest.approx((1 - F_SKF_ZERO_CROSSING) / 2)
        assert 1 - 2 * binary_entropy(QBER_ABORT_THRESHOLD) == pytest.approx(0.0, abs=1e-4)


class TestPhases:
    def test_measurement_shapes(self):
        proto = BBM92Protocol(seed=0)
        alice, bob, match = proto.measure(500, 0.95)
        assert alice.shape == bob.shape == match.shape == (500,)

    def test_perfect_pairs_agree(self):
        proto = BBM92Protocol(seed=0)
        alice, bob, _ = proto.measure(1000, 1.0)
        assert np.array_equal(alice, bob)

    def test_error_rate_tracks_werner(self):
        proto = BBM92Protocol(seed=1)
        w = 0.9
        alice, bob, _ = proto.measure(40000, w)
        qber = np.mean(alice != bob)
        assert qber == pytest.approx((1 - w) / 2, abs=0.01)

    def test_sifting_keeps_about_half(self):
        proto = BBM92Protocol(seed=2)
        alice, bob, match = proto.measure(10000, 0.95)
        a, b = proto.sift(alice, bob, match)
        assert len(a) == len(b)
        assert 0.4 < len(a) / 10000 < 0.6

    def test_reconcile_fixes_all_errors(self):
        proto = BBM92Protocol(seed=3)
        alice = np.array([0, 1, 1, 0, 1], dtype=np.uint8)
        bob = np.array([0, 0, 1, 0, 0], dtype=np.uint8)
        corrected, n_err, leak = proto.reconcile(alice, bob, qber=0.4)
        assert np.array_equal(corrected, alice)
        assert n_err == 2
        assert leak >= 1

    def test_amplify_output_shorter_than_input(self):
        proto = BBM92Protocol(seed=4)
        bits = np.ones(1000, dtype=np.uint8)
        out = proto.amplify(bits, leaked_bits=200, qber=0.05)
        assert 0 < len(out) < 1000


class TestFullSession:
    def test_high_fidelity_yields_key(self):
        proto = BBM92Protocol(seed=5)
        result = proto.run_session(pair_count=20000, werner=0.95)
        assert not result.aborted
        assert result.key_bits > 0
        assert result.sifted_bits > 0
        assert result.estimated_qber < QBER_ABORT_THRESHOLD

    def test_secret_fraction_tracks_eq4(self):
        # Empirical key bits per raw pair ≈ 0.5 (sifting) × F_skf(w) minus
        # the estimation sample; verify the right order.
        proto = BBM92Protocol(seed=6)
        w = 0.95
        result = proto.run_session(pair_count=200000, werner=w)
        ideal = 0.5 * secret_key_fraction(w)
        assert 0.3 * ideal < result.secret_fraction <= ideal * 1.05

    def test_low_fidelity_aborts(self):
        proto = BBM92Protocol(seed=7)
        result = proto.run_session(pair_count=20000, werner=0.6)
        assert result.aborted
        assert result.key == b""

    def test_zero_pairs_aborts(self):
        proto = BBM92Protocol(seed=8)
        result = proto.run_session(pair_count=0, werner=0.99)
        assert result.aborted

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BBM92Protocol(error_correction_efficiency=0.9)
        with pytest.raises(ValueError):
            BBM92Protocol(sample_fraction=0.0)

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=0.85, max_value=1.0), st.integers(min_value=5000, max_value=20000))
    def test_key_never_longer_than_sifted_bits(self, werner, pairs):
        proto = BBM92Protocol(seed=9)
        result = proto.run_session(pairs, werner)
        assert result.key_bits <= result.sifted_bits


class TestCascadeReconciliation:
    def test_cascade_mode_produces_identical_keys(self):
        """With the real Cascade reconciler, Alice's and Bob's final keys
        match because Bob's string is actually corrected (not copied)."""
        proto = BBM92Protocol(seed=11, reconciliation="cascade")
        result = proto.run_session(pair_count=30000, werner=0.95)
        assert not result.aborted
        assert result.key_bits > 0

    def test_cascade_leak_comparable_to_analytic(self):
        ideal = BBM92Protocol(seed=12, reconciliation="ideal")
        cascade = BBM92Protocol(seed=12, reconciliation="cascade")
        r_ideal = ideal.run_session(40000, 0.94)
        r_cascade = cascade.run_session(40000, 0.94)
        assert not r_ideal.aborted and not r_cascade.aborted
        # Cascade leaks at most ~2x the Shannon bound the analytic model uses.
        assert r_cascade.leaked_bits < 2.5 * max(r_ideal.leaked_bits, 1)

    def test_cascade_reconcile_actually_corrects(self):
        proto = BBM92Protocol(seed=13, reconciliation="cascade")
        rng = np.random.default_rng(0)
        alice = rng.integers(0, 2, 2048, dtype=np.uint8)
        flips = (rng.random(2048) < 0.03).astype(np.uint8)
        bob = alice ^ flips
        corrected, n_err, leak = proto.reconcile(alice, bob, qber=0.03)
        assert n_err == int(flips.sum())
        assert np.array_equal(corrected, alice)
        assert leak > 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="reconciliation"):
            BBM92Protocol(reconciliation="turbo")


class TestBitsToBytes:
    def test_packs_whole_bytes(self):
        bits = np.array([1, 0, 0, 0, 0, 0, 0, 1], dtype=np.uint8)
        assert bits_to_bytes(bits) == b"\x81"

    def test_discards_partial_byte(self):
        bits = np.ones(10, dtype=np.uint8)
        assert len(bits_to_bytes(bits)) == 1

    def test_empty(self):
        assert bits_to_bytes(np.zeros(0, dtype=np.uint8)) == b""
