"""Tests for the QKD network analysis helpers."""

import numpy as np
import pytest

from repro.quantum.analysis import (
    binding_links,
    link_reports,
    outage_impact,
    remove_link,
    route_reports,
    total_secret_key_rate,
)
from repro.quantum.topology import surfnet_network
from repro.quantum.utility import optimal_link_werner


@pytest.fixture(scope="module")
def net():
    return surfnet_network()


@pytest.fixture(scope="module")
def allocation(net):
    phi = np.full(net.num_routes, 0.7)
    w = optimal_link_werner(phi, net.incidence, net.betas)
    return phi, w


class TestLinkReports:
    def test_one_report_per_link(self, net, allocation):
        reports = link_reports(net, *allocation)
        assert len(reports) == net.num_links
        assert [r.link_id for r in reports] == list(range(1, 19))

    def test_idle_link_utilization_zero(self, net, allocation):
        reports = link_reports(net, *allocation)
        link6 = reports[5]
        assert link6.load == 0.0
        assert link6.utilization == 0.0

    def test_eq18_allocation_saturates_used_links(self, net, allocation):
        """With w from Eq. 18 every used link runs at 100% utilization."""
        reports = link_reports(net, *allocation)
        for report in reports:
            if report.load > 0:
                assert report.utilization == pytest.approx(1.0)

    def test_binding_links_match_saturation(self, net, allocation):
        bound = binding_links(net, *allocation)
        used = {l for r in net.routes for l in r.link_ids}
        assert set(bound) == used


class TestRouteReports:
    def test_one_report_per_route(self, net, allocation):
        reports = route_reports(net, *allocation)
        assert [r.route_id for r in reports] == [1, 2, 3, 4, 5, 6]

    def test_key_rate_positive_above_floor(self, net, allocation):
        for report in route_reports(net, *allocation):
            assert report.above_fidelity_floor
            assert report.secret_key_rate > 0

    def test_bottleneck_on_route(self, net, allocation):
        for report, route in zip(route_reports(net, *allocation), net.routes):
            assert report.bottleneck_link_id in route.link_ids

    def test_total_rate_is_sum(self, net, allocation):
        reports = route_reports(net, *allocation)
        assert total_secret_key_rate(net, *allocation) == pytest.approx(
            sum(r.secret_key_rate for r in reports)
        )


class TestOutage:
    def test_impact_counts(self, net, allocation):
        impact = outage_impact(net, *allocation)
        assert impact[15] == 3  # link 15 serves routes 4, 5, 6
        assert impact[6] == 0   # unused link
        assert impact[1] == 1

    def test_remove_unused_link_keeps_all_routes(self, net):
        reduced = remove_link(net, 6)
        assert reduced.num_links == 17
        assert reduced.num_routes == 6

    def test_remove_shared_link_drops_routes(self, net):
        reduced = remove_link(net, 15)
        assert reduced.num_routes == 3  # routes 4, 5, 6 severed
        assert {r.route_id for r in reduced.routes} == {1, 2, 3}

    def test_surviving_routes_still_valid_paths(self, net):
        reduced = remove_link(net, 7)  # kills route 6 only
        assert reduced.num_routes == 5
        # The constructor re-validates connectivity; reaching here suffices,
        # but also check the incidence matrix is consistent.
        assert reduced.incidence.shape == (17, 5)

    def test_unknown_link_rejected(self, net):
        with pytest.raises(ValueError, match="no link"):
            remove_link(net, 99)

    def test_severing_all_routes_rejected(self):
        from repro.quantum.topology import QKDNetwork

        single = QKDNetwork.from_edge_list([("KC", "A", 10.0)], ["A"], key_center="KC")
        with pytest.raises(ValueError, match="severs every route"):
            remove_link(single, 1)


class TestFailureInjectionEndToEnd:
    def test_quhe_recovers_after_outage(self, net):
        """Failure injection: after a link outage, re-optimizing on the
        surviving network still produces a feasible, convergent solution."""
        from repro.core.config import paper_config
        from repro.core.quhe import QuHE
        from repro.core.problem import QuHEProblem

        reduced = remove_link(net, 15)
        cfg = paper_config(seed=2, network=reduced)
        result = QuHE(cfg).solve()
        assert result.converged
        assert QuHEProblem(cfg).is_feasible(result.allocation, tol=1e-5)

    def test_outage_reduces_total_key_rate(self, net, allocation):
        from repro.core.config import paper_config
        from repro.core.stage1 import Stage1Solver

        full_cfg = paper_config(seed=2)
        full = Stage1Solver(full_cfg).solve()
        full_rate = total_secret_key_rate(net, full.phi, full.w)

        reduced_net = remove_link(net, 15)
        reduced_cfg = paper_config(seed=2, network=reduced_net)
        reduced = Stage1Solver(reduced_cfg).solve()
        reduced_rate = total_secret_key_rate(reduced_net, reduced.phi, reduced.w)
        assert reduced_rate < full_rate
