"""Tests for the Cascade reconciliation protocol."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum.cascade import CascadeReconciler, cascade_efficiency


def correlated_strings(n, qber, seed):
    rng = np.random.default_rng(seed)
    alice = rng.integers(0, 2, size=n, dtype=np.uint8)
    flips = (rng.random(n) < qber).astype(np.uint8)
    return alice, alice ^ flips, int(flips.sum())


class TestReconcile:
    @pytest.mark.parametrize("qber", [0.01, 0.03, 0.05, 0.10])
    def test_corrects_all_errors(self, qber):
        alice, bob, _ = correlated_strings(4096, qber, seed=1)
        result = CascadeReconciler(seed=2).reconcile(alice, bob, estimated_qber=qber)
        assert result.success
        assert np.array_equal(result.corrected, alice)

    def test_no_errors_low_leak(self):
        alice, bob, _ = correlated_strings(2048, 0.0, seed=3)
        result = CascadeReconciler(seed=4).reconcile(alice, bob, estimated_qber=0.02)
        assert result.success
        # Only top-level parities leak when nothing mismatches.
        assert result.leaked_bits < len(alice) // 2

    def test_leak_increases_with_qber(self):
        leaks = []
        for qber in (0.01, 0.05, 0.10):
            alice, bob, _ = correlated_strings(4096, qber, seed=5)
            result = CascadeReconciler(seed=6).reconcile(alice, bob, estimated_qber=qber)
            leaks.append(result.leaked_bits)
        assert leaks[0] < leaks[1] < leaks[2]

    def test_efficiency_in_practical_band(self):
        """Cascade leaks close to the Shannon bound: f_ec typically ≤ ~1.6."""
        alice, bob, _ = correlated_strings(8192, 0.05, seed=7)
        result = CascadeReconciler(seed=8).reconcile(alice, bob, estimated_qber=0.05)
        assert result.success
        f_ec = cascade_efficiency(result, 0.05, len(alice))
        assert 1.0 <= f_ec < 2.0

    def test_inputs_not_mutated(self):
        alice, bob, _ = correlated_strings(512, 0.05, seed=9)
        bob_copy = bob.copy()
        CascadeReconciler(seed=10).reconcile(alice, bob, estimated_qber=0.05)
        assert np.array_equal(bob, bob_copy)

    def test_empty_strings(self):
        result = CascadeReconciler(seed=0).reconcile([], [], estimated_qber=0.05)
        assert result.success and result.leaked_bits == 0

    def test_validation(self):
        rec = CascadeReconciler()
        with pytest.raises(ValueError):
            rec.reconcile([0, 1], [0], estimated_qber=0.05)
        with pytest.raises(ValueError):
            rec.reconcile([0], [1], estimated_qber=0.7)
        with pytest.raises(ValueError):
            CascadeReconciler(num_passes=0)

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=64, max_value=1024),
        st.floats(min_value=0.0, max_value=0.08),
        st.integers(min_value=0, max_value=100),
    )
    def test_random_instances_converge(self, n, qber, seed):
        alice, bob, _ = correlated_strings(n, qber, seed=seed)
        result = CascadeReconciler(seed=seed + 1).reconcile(
            alice, bob, estimated_qber=max(qber, 0.01)
        )
        assert result.residual_errors == 0


class TestEfficiencyHelper:
    def test_zero_entropy_gives_inf(self):
        from repro.quantum.cascade import CascadeResult

        result = CascadeResult(np.zeros(4, dtype=np.uint8), 10, 0, 2)
        assert cascade_efficiency(result, 0.0, 4) == float("inf")

    def test_invalid_length(self):
        from repro.quantum.cascade import CascadeResult

        result = CascadeResult(np.zeros(4, dtype=np.uint8), 10, 0, 2)
        with pytest.raises(ValueError):
            cascade_efficiency(result, 0.05, 0)
