"""Tests for the SURFnet topology and the QKDNetwork container (Tables III-IV)."""

import numpy as np
import pytest

from repro.quantum.routing import Route
from repro.quantum.topology import (
    Link,
    QKDNetwork,
    SURFNET_LINKS,
    SURFNET_ROUTES,
    beta_from_length,
    surfnet_network,
)


class TestTableIV:
    def test_eighteen_links(self):
        assert len(SURFNET_LINKS) == 18

    def test_betas_match_paper(self):
        expected = {1: 89.84, 6: 40.76, 9: 99.02, 10: 100.98, 18: 46.82}
        for link_id, beta in expected.items():
            assert SURFNET_LINKS[link_id - 1].beta == pytest.approx(beta)

    def test_lengths_match_paper(self):
        expected = {1: 30.6, 2: 60.4, 12: 66.3, 17: 30.2, 18: 70.0}
        for link_id, length in expected.items():
            assert SURFNET_LINKS[link_id - 1].length_km == pytest.approx(length)

    def test_beta_physics_model_fits_table(self):
        # The calibrated β(length) model should match Table IV within ~3%.
        for link in SURFNET_LINKS:
            model = beta_from_length(link.length_km)
            assert model == pytest.approx(link.beta, rel=0.03)

    def test_beta_decreases_with_length(self):
        assert beta_from_length(20.0) > beta_from_length(50.0) > beta_from_length(80.0)


class TestTableIII:
    def test_six_routes(self):
        assert len(SURFNET_ROUTES) == 6

    def test_routes_match_paper_links(self):
        expected = {
            1: (17, 2, 1),
            2: (17, 3, 4, 5),
            3: (16, 4, 5, 11, 10),
            4: (15, 18),
            5: (15, 14, 13, 12, 9),
            6: (15, 14, 13, 12, 8, 7),
        }
        for route in SURFNET_ROUTES:
            assert route.link_ids == expected[route.route_id]

    def test_all_routes_start_at_hilversum(self):
        assert all(r.source == "Hilversum" for r in SURFNET_ROUTES)

    def test_route_destinations(self):
        targets = [r.target for r in SURFNET_ROUTES]
        assert targets == ["Delft", "Zwolle", "Apeldoorn", "Rotterdam", "Arnhem", "Enschede"]

    def test_link_six_unused(self):
        # Table VI reports w_6 = 1.0000 — link 6 carries no route.
        used = {l for r in SURFNET_ROUTES for l in r.link_ids}
        assert 6 not in used
        assert used == set(range(1, 19)) - {6}


class TestQKDNetwork:
    def test_surfnet_shape(self):
        net = surfnet_network()
        assert net.num_links == 18
        assert net.num_routes == 6
        assert net.key_center == "Hilversum"

    def test_incidence_matrix(self):
        net = surfnet_network()
        a = net.incidence
        assert a.shape == (18, 6)
        # Route 4 = links 15 and 18.
        assert a[14, 3] == 1.0 and a[17, 3] == 1.0
        assert a[:, 3].sum() == 2
        # Link 15 carries routes 4, 5, 6.
        assert a[14].tolist() == [0, 0, 0, 1, 1, 1]

    def test_betas_vector_ordering(self):
        net = surfnet_network()
        assert net.betas[0] == pytest.approx(89.84)
        assert net.betas[17] == pytest.approx(46.82)

    def test_routes_are_connected_paths(self):
        # The constructor validates each route walks the graph; just build it.
        surfnet_network()

    def test_invalid_route_rejected(self):
        links = list(SURFNET_LINKS)
        bad = Route(1, "Hilversum", "Delft", (1, 2))  # link 1 does not touch Hilversum
        with pytest.raises(ValueError, match="does not touch"):
            QKDNetwork(links, [bad], key_center="Hilversum")

    def test_route_must_start_at_key_center(self):
        links = list(SURFNET_LINKS)
        bad = Route(1, "Delft", "Leiden", (1,))
        with pytest.raises(ValueError, match="key centre"):
            QKDNetwork(links, [bad], key_center="Hilversum")

    def test_wrong_target_rejected(self):
        links = list(SURFNET_LINKS)
        bad = Route(1, "Hilversum", "Leiden", (17, 2, 1))  # actually ends at Delft
        with pytest.raises(ValueError, match="ends at"):
            QKDNetwork(links, [bad], key_center="Hilversum")

    def test_link_ids_must_be_contiguous(self):
        links = [Link(2, ("A", "B"), 10.0, 50.0)]
        with pytest.raises(ValueError, match="1..L"):
            QKDNetwork(links, [Route(1, "A", "B", (2,))], key_center="A")

    def test_max_uniform_rate_positive(self):
        net = surfnet_network()
        assert net.max_uniform_rate() > 0

    def test_from_edge_list_shortest_paths(self):
        edges = [("KC", "A", 10.0), ("A", "B", 10.0), ("KC", "B", 50.0)]
        net = QKDNetwork.from_edge_list(edges, ["B"], key_center="KC")
        # Shortest path KC->B goes via A (20 km < 50 km).
        assert net.routes[0].link_ids == (1, 2)

    def test_from_edge_list_with_explicit_betas(self):
        edges = [("KC", "A", 10.0)]
        net = QKDNetwork.from_edge_list(edges, ["A"], key_center="KC", betas={1: 77.0})
        assert net.betas[0] == 77.0

    def test_from_edge_list_unknown_client(self):
        with pytest.raises(ValueError, match="not in the edge list"):
            QKDNetwork.from_edge_list([("KC", "A", 1.0)], ["Z"], key_center="KC")


class TestLinkValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Link(1, ("A", "A"), 10.0, 50.0)

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError):
            Link(1, ("A", "B"), 0.0, 50.0)

    def test_nonpositive_beta_rejected(self):
        with pytest.raises(ValueError):
            Link(1, ("A", "B"), 10.0, -1.0)
