"""Integration: every subsystem wired together on one scenario.

Exercises the full QuHE story — optimize resources, run QKD at the optimal
rates, encrypt, transcipher, compute — and the custom-topology extension
path, in single tests that cross all package boundaries.
"""

import numpy as np
import pytest

from repro import QuHE, QuHEProblem, SecureEdgePipeline, SystemConfig, paper_config
from repro.compute.cost_models import paper_cost_model
from repro.compute.devices import ClientNode, EdgeServer
from repro.quantum.topology import QKDNetwork
from repro.utils.units import NOISE_PSD_W_PER_HZ
from repro.wireless.channel import ChannelModel


class TestOptimizeThenRun:
    def test_allocation_drives_real_crypto_pipeline(self, typical_cfg, quhe_result):
        """The optimizer's (φ, w) feed the actual QKD + HE data path."""
        alloc = quhe_result.allocation
        pipeline = SecureEdgePipeline(ckks_ring_degree=32, transcipher_key_length=4, seed=6)
        pipeline.distribute_keys(alloc.phi, alloc.w, duration_s=500.0, min_bytes=16)

        rng = np.random.default_rng(0)
        features = rng.normal(size=8)
        weights = rng.normal(size=8)
        report = pipeline.run_client(
            client_index=0,
            features=features,
            model_weights=weights,
            model_bias=-0.3,
            bandwidth_hz=float(alloc.b[0]),
            power_w=float(alloc.p[0]),
            channel_gain=float(typical_cfg.channel_gains[0]),
            noise_psd=typical_cfg.noise_psd,
        )
        assert report.max_abs_error < 1e-2

    def test_quhe_allocation_satisfies_every_paper_constraint(
        self, typical_cfg, quhe_result
    ):
        problem = QuHEProblem(typical_cfg)
        assert problem.is_feasible(quhe_result.allocation, tol=1e-5)

    def test_qkd_rates_sustainable_by_protocol_sim(self, typical_cfg, quhe_result):
        """The allocated rates are physically deliverable by the simulator."""
        from repro.quantum.entanglement import EntanglementSimulator

        alloc = quhe_result.allocation
        sim = EntanglementSimulator(typical_cfg.network, seed=0)
        delivered = sim.delivered_rates(alloc.phi, alloc.w, duration_s=1000.0)
        for n, route in enumerate(typical_cfg.network.routes):
            assert delivered[route.route_id] >= 0.5 * alloc.phi[n]


class TestCustomDeployment:
    def test_full_stack_on_custom_topology(self):
        edges = [
            ("HQ", "Plant", 12.0),
            ("HQ", "Lab", 20.0),
            ("Plant", "Depot", 15.0),
        ]
        network = QKDNetwork.from_edge_list(
            edges, ["Plant", "Lab", "Depot"], key_center="HQ"
        )
        clients = tuple(
            ClientNode(index=i, privacy_weight=0.2 + 0.1 * i, upload_bits=1e8)
            for i in range(3)
        )
        gains = ChannelModel(cell_radius_m=300.0).sample(3, rng=1).gains
        config = SystemConfig(
            network=network,
            clients=clients,
            server=EdgeServer(total_frequency_hz=8e9, total_bandwidth_hz=5e6),
            cost_model=paper_cost_model(),
            channel_gains=gains,
        )
        result = QuHE(config).solve()
        assert result.converged
        assert QuHEProblem(config).is_feasible(result.allocation, tol=1e-5)
        # Rates clear the per-client floors and utilities are positive.
        assert np.all(result.allocation.phi >= config.min_rates - 1e-9)
        assert result.metrics.u_qkd > 0


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_quhe_beats_aa_across_channel_draws(self, seed):
        from repro import average_allocation

        cfg = paper_config(seed=seed)
        result = QuHE(cfg).solve()
        aa = average_allocation(cfg, stage1_result=result.stage1)
        assert result.objective >= aa.objective - 1e-6
