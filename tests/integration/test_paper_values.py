"""Integration: direct reproduction checks against the paper's published numbers.

These tests pin the quantitative claims our substrate reproduces *exactly*
(Stage 1 is a convex program over published constants) and the qualitative
orderings the paper reports for the full system (where absolute values depend
on the authors' unpublished channel realization — see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro import QuHE, average_allocation, occr_baseline, olaa_baseline, paper_config
from repro.core.stage1 import Stage1Solver

#: Paper Table V, QuHE Stage 1 column.
TABLE_V_PHI = [2.098, 1.106, 1.103, 1.872, 0.6864, 0.5781]

#: Paper Table VI, QuHE Stage 1 column (all 18 links).
TABLE_VI_W = [
    0.9766, 0.9610, 0.9857, 0.9682, 0.9661, 1.0000,
    0.9893, 0.9897, 0.9931, 0.9891, 0.9840, 0.9744,
    0.9759, 0.9851, 0.9611, 0.9866, 0.9646, 0.9600,
]


class TestTableV:
    def test_phi_exact(self, stage1_solution):
        assert np.allclose(stage1_solution.phi, TABLE_V_PHI, atol=2e-3)


class TestTableVI:
    def test_w_exact_all_links(self, stage1_solution):
        assert np.allclose(stage1_solution.w, TABLE_VI_W, atol=2e-3)


class TestFig5c:
    def test_stage1_value(self, stage1_solution):
        """Paper: QuHE Stage-1 objective = 4.58."""
        assert stage1_solution.value == pytest.approx(4.58, abs=0.02)


class TestFig5aShape:
    def test_single_stage1_call_and_fast_convergence(self, typical_cfg):
        result = QuHE(typical_cfg).solve()
        assert result.stage1_calls == 1
        assert result.outer_iterations <= 5
        assert result.converged


class TestFig5dShape:
    @pytest.fixture(scope="class")
    def results(self, typical_cfg):
        import dataclasses

        cfg = dataclasses.replace(typical_cfg, alpha_msl=0.1)
        quhe = QuHE(cfg).solve()
        s1 = quhe.stage1
        return {
            "AA": average_allocation(cfg, stage1_result=s1).metrics,
            "OLAA": olaa_baseline(cfg, stage1_result=s1).metrics,
            "OCCR": occr_baseline(cfg, stage1_result=s1).metrics,
            "QuHE": quhe.metrics,
        }

    def test_quhe_best_objective(self, results):
        assert results["QuHE"].objective == max(m.objective for m in results.values())

    def test_energy_quhe_occr_dominate(self, results):
        assert results["QuHE"].total_energy < results["AA"].total_energy
        assert results["OCCR"].total_energy < results["AA"].total_energy

    def test_security_quhe_olaa_dominate(self, results):
        assert results["QuHE"].u_msl > results["AA"].u_msl
        assert results["OLAA"].u_msl > results["OCCR"].u_msl

    def test_delays_same_order_of_magnitude(self, results):
        """Paper: 'all methods deliver comparable [delay] performance, with
        QuHE exhibiting a slightly higher delay'."""
        delays = [m.total_delay for m in results.values()]
        assert max(delays) < 25 * min(delays)
