"""The public-API docstring examples must actually run.

The docs promise runnable examples in the :mod:`repro.api` surface
(registry, service, artifacts, catalog) and the :mod:`repro.io` codec
registry; CI additionally runs the same selection via ``pytest
--doctest-modules``.  This keeps the examples from rotting inside tier 1.
"""

import doctest

import pytest

import repro.api.artifacts
import repro.api.catalog
import repro.api.registry
import repro.api.service
import repro.io
import repro.serve.cache
import repro.serve.protocol
import repro.utils.stats

MODULES = [
    repro.api.registry,
    repro.api.service,
    repro.api.artifacts,
    repro.api.catalog,
    repro.io,
    repro.serve.protocol,
    repro.serve.cache,
    repro.utils.stats,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests_pass(module):
    results = doctest.testmod(
        module, optionflags=doctest.ELLIPSIS, verbose=False
    )
    assert results.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert results.failed == 0


def test_every_module_has_examples():
    """Each swept module keeps at least two runnable examples."""
    for module in MODULES:
        finder = doctest.DocTestFinder()
        examples = sum(len(t.examples) for t in finder.find(module))
        assert examples >= 2, f"{module.__name__} has only {examples} examples"
