"""Shared fixtures for the repro.api test suite.

Scenario executions are expensive (each is a real experiment), so one
session-scoped cache hands the same result object to every test that needs
scenario ``name`` — always run with the scenario's ``smoke_overrides`` so
the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.api import get_scenario

_RESULTS = {}


@pytest.fixture(scope="session")
def scenario_result():
    """``scenario_result(name)`` → cached smoke-parameter run of ``name``."""

    def run(name: str):
        if name not in _RESULTS:
            scenario = get_scenario(name)
            _RESULTS[name] = scenario.execute(scenario.smoke_overrides)
        return _RESULTS[name]

    return run
