"""Tests for SolverService: fingerprinting, caching, batching, artifacts."""

import dataclasses

import numpy as np
import pytest

from repro.api import RunRecord, SolverService, config_fingerprint, run_scenario
from repro.api.service import FingerprintError
from repro.compute.cost_models import CostModel, f_eval_paper
from repro.core.config import paper_config
from repro.utils.parallel import parallel_map


def _closure_cost_config(seed=2):
    """A config whose cost curve is a local closure (no stable identity)."""
    def eval_cycles(lam):
        return f_eval_paper(lam)

    base = paper_config(seed=seed)
    return dataclasses.replace(
        base, cost_model=dataclasses.replace(base.cost_model, eval_cycles=eval_cycles)
    )


class TestFingerprint:
    def test_stable_across_identical_configs(self):
        assert config_fingerprint(paper_config(seed=3)) == config_fingerprint(
            paper_config(seed=3)
        )

    def test_differs_across_seeds(self):
        assert config_fingerprint(paper_config(seed=3)) != config_fingerprint(
            paper_config(seed=4)
        )

    def test_sensitive_to_modified_budgets(self, typical_cfg):
        modified = typical_cfg.with_total_bandwidth(2e7)
        assert config_fingerprint(typical_cfg) != config_fingerprint(modified)

    def test_closure_cost_curve_refused(self):
        """Closures have no stable identity — never hash a memory address."""
        with pytest.raises(FingerprintError, match="no stable identity"):
            config_fingerprint(_closure_cost_config())

    def test_unserializable_component_raises_fingerprint_error(self):
        """Duck-typed components degrade to FingerprintError, not TypeError."""
        class Duck:
            pass

        with pytest.raises(FingerprintError, match="uncached"):
            config_fingerprint(Duck())


class TestCache:
    def test_cache_hit_returns_identical_object(self, typical_cfg):
        service = SolverService()
        first = service.solve(typical_cfg)
        second = service.solve(typical_cfg)
        assert second is first
        info = service.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1

    def test_equivalent_config_instance_hits(self):
        """A freshly built but identical config hits the same cache entry."""
        service = SolverService()
        first = service.solve(paper_config(seed=2))
        second = service.solve(paper_config(seed=2))
        assert second is first

    def test_warm_start_bypasses_cache(self, typical_cfg):
        service = SolverService()
        baseline = service.solve(typical_cfg)
        warm = service.solve(typical_cfg, initial=baseline.allocation)
        assert warm is not baseline
        assert service.cache_info()["size"] == 1

    def test_unfingerprintable_config_solved_without_caching(self):
        service = SolverService()
        cfg = _closure_cost_config()
        result = service.solve(cfg)
        assert result.converged
        assert service.cache_info()["size"] == 0
        assert service.solve(cfg) is not result  # re-solved, never cached

    def test_solve_many_mixes_cacheable_and_uncacheable(self):
        service = SolverService()
        configs = [paper_config(seed=2), _closure_cost_config(), paper_config(seed=2)]
        results = service.solve_many(configs)
        assert results[0] is results[2]  # deduplicated via fingerprint
        assert service.cache_info()["size"] == 1  # closure config not cached
        assert results[1].objective == pytest.approx(results[0].objective, rel=1e-6)

    def test_lru_eviction(self):
        service = SolverService(cache_size=1)
        service.solve(paper_config(seed=2))
        service.solve(paper_config(seed=3))
        assert service.cache_info()["size"] == 1
        # seed-2 was evicted: solving it again is a miss.
        before = service.cache_info()["misses"]
        service.solve(paper_config(seed=2))
        assert service.cache_info()["misses"] == before + 1


class TestLRUResultCache:
    def test_eviction_order_is_least_recently_used(self):
        from repro.api.service import LRUResultCache

        cache = LRUResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # bump a: b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_capacity_zero_stores_nothing(self):
        from repro.api.service import LRUResultCache

        cache = LRUResultCache(capacity=0)
        cache.put("a", 1)
        assert len(cache) == 0 and cache.get("a") is None


class TestPluggableCacheBackend:
    def test_custom_backend_receives_puts_and_serves_gets(self, typical_cfg):
        class DictBackend:
            capacity = 99

            def __init__(self):
                self.store = {}

            def get(self, key):
                return self.store.get(key)

            def put(self, key, result):
                self.store[key] = result

            def clear(self):
                self.store.clear()

            def __len__(self):
                return len(self.store)

        backend = DictBackend()
        service = SolverService(cache=backend)
        assert service.cache_size == 99  # capacity read off the backend
        assert service.cache_backend is backend
        first = service.solve(typical_cfg)
        assert len(backend.store) == 1
        assert service.solve(typical_cfg) is first
        assert service.cache_info()["hits"] == 1

    def test_cache_lookup_counts_hit_and_miss(self, typical_cfg):
        service = SolverService()
        key = config_fingerprint(typical_cfg)
        assert service.cache_lookup(key) is None
        result = service.solve(typical_cfg)
        assert service.cache_lookup(key) is result
        info = service.cache_info()
        assert info["hits"] == 1 and info["misses"] == 2


class TestConcurrencySafety:
    def test_threaded_prime_and_lookup_stay_consistent(self):
        """Hammer the cache from several threads: no exceptions, size
        bounded by capacity, counters sum to the number of operations."""
        import threading

        service = SolverService(cache_size=8)
        errors = []

        def worker(tag):
            try:
                for i in range(200):
                    key = f"{tag}-{i % 16}"
                    service._cache_put(key, object())
                    service._cache_get(key)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        info = service.cache_info()
        assert info["size"] <= 8
        assert info["hits"] + info["misses"] == 4 * 200

    def test_note_coalesced_is_atomic_across_threads(self):
        import threading

        service = SolverService()
        threads = [
            threading.Thread(
                target=lambda: [service.note_coalesced() for _ in range(500)]
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert service.cache_info()["coalesced"] == 2000

    def test_solve_many_duplicates_count_as_coalesced(self):
        service = SolverService()
        cfg = paper_config(seed=2)
        service.solve_many([cfg, cfg, cfg, paper_config(seed=3)])
        assert service.cache_info()["coalesced"] == 2

    def test_dispatch_booked_requests_count_exactly_once(self):
        """Regression (ISSUE 10): a dispatcher that books hit/miss itself
        at lookup time (the serve daemon pattern) must be able to hand the
        misses to ``solve_many``/``solve_batch`` without the solve path
        booking them a second time.  Each logical request lands in the
        counters exactly once — even when a waiter that coalesced behind an
        in-flight solve retries and finds the entry already cached."""
        import threading

        from repro.core.batch import ConfigBatch

        service = SolverService()
        cfg = paper_config(seed=2)
        key = config_fingerprint(cfg)
        n_threads, per_thread = 4, 3
        barrier = threading.Barrier(n_threads)
        errors = []

        def dispatcher(use_batch):
            try:
                barrier.wait()
                for _ in range(per_thread):
                    # Dispatch-time booking: cache_lookup counts the hit or
                    # the miss for this logical request.
                    if service.cache_lookup(key) is not None:
                        continue
                    if use_batch:
                        service.solve_batch(
                            ConfigBatch.from_configs([cfg]),
                            count_cache_stats=False,
                        )
                    else:
                        service.solve_many(
                            [cfg], count_cache_stats=False
                        )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=dispatcher, args=(t % 2 == 0,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        info = service.cache_info()
        # Every logical request was booked exactly once at dispatch; the
        # uncounted solve-path probes must not inflate either counter.
        assert info["hits"] + info["misses"] == n_threads * per_thread
        assert info["coalesced"] == 0

    def test_count_cache_stats_false_still_uses_cache(self):
        """Uncounted probes are probes, not bypasses: a warm entry is
        still served (identical object), just without touching counters."""
        service = SolverService()
        cfg = paper_config(seed=2)
        first = service.solve(cfg)
        info_before = service.cache_info()
        again = service.solve_many([cfg, cfg], count_cache_stats=False)
        assert again[0] is first and again[1] is first
        info_after = service.cache_info()
        assert info_after["hits"] == info_before["hits"]
        assert info_after["misses"] == info_before["misses"]
        assert info_after["coalesced"] == info_before["coalesced"]


class TestSolveMany:
    @pytest.fixture(scope="class")
    def configs(self):
        return [paper_config(seed=s) for s in (2, 3, 2)]

    def test_parallel_identical_to_serial(self, configs):
        serial = SolverService().solve_many(configs, backend="serial")
        pooled = SolverService().solve_many(
            configs, backend="pool", workers=2
        )
        batched = SolverService().solve_many(configs, backend="batched")
        for a, b, c in zip(serial, pooled, batched):
            # The pool runs the same scalar code bit-for-bit; the batched
            # backend shares the scalar core within the 1e-9 contract.
            assert a.objective == pytest.approx(b.objective, rel=1e-12)
            assert abs(a.objective - c.objective) <= 1e-9
            assert np.allclose(a.allocation.phi, b.allocation.phi)
            assert np.allclose(a.allocation.b, b.allocation.b)

    def test_duplicates_solved_once_and_shared(self, configs):
        service = SolverService()
        results = service.solve_many(configs)
        assert results[0] is results[2]
        assert service.cache_info()["size"] == 2

    def test_cached_entries_skip_solving(self, configs):
        service = SolverService()
        first = service.solve(configs[0])
        results = service.solve_many(configs)
        assert results[0] is first

    def test_progress_reaches_total(self, configs):
        ticks = []
        SolverService().solve_many(
            configs, progress=lambda done, total: ticks.append((done, total))
        )
        assert ticks[-1] == (len(configs), len(configs))
        done_values = [d for d, _ in ticks]
        assert done_values == sorted(done_values)

    def test_batched_progress_fires_per_config(self):
        """The batched backend must tick per input config, not once for
        the whole batch (or once per shape group)."""
        configs = [paper_config(seed=s) for s in (2, 3, 4)]
        ticks = []
        service = SolverService()
        service.solve_many(
            configs,
            backend="batched",
            progress=lambda done, total: ticks.append((done, total)),
        )
        assert service.last_backend == "batched"
        assert ticks == [(1, 3), (2, 3), (3, 3)]

    def test_batched_progress_counts_duplicates_and_cache_hits(self):
        """Duplicates and pre-cached configs count toward done on the tick
        of the config that owns them; the final tick is (total, total)."""
        service = SolverService()
        a, b = paper_config(seed=2), paper_config(seed=3)
        service.solve(a)  # pre-cache a
        ticks = []
        service.solve_many(
            [a, b, a, b],
            backend="batched",
            progress=lambda done, total: ticks.append((done, total)),
        )
        # a (and its duplicate) are done before solving starts; b's solve
        # then completes b and its duplicate in one per-config tick.
        assert ticks[0] == (2, 4)
        assert ticks[-1] == (4, 4)

    def test_batched_progress_across_shape_groups(self):
        """A ragged batch spans shape groups; ticks stay per-config and
        monotonic, ending exactly at (total, total)."""
        from repro.quantum.topology import QKDNetwork

        small = QKDNetwork.from_edge_list(
            [("KC", "A", 8.0)], ["A"], key_center="KC"
        )
        configs = [
            paper_config(seed=2),
            paper_config(seed=5, network=small),
            paper_config(seed=3),
        ]
        ticks = []
        SolverService().solve_many(
            configs,
            backend="batched",
            progress=lambda done, total: ticks.append((done, total)),
        )
        assert len(ticks) == 3
        assert ticks[-1] == (3, 3)
        done_values = [d for d, _ in ticks]
        assert done_values == sorted(done_values)


class TestSolveBatch:
    """Service-level columnar entry point: ``solve_batch(ConfigBatch)``."""

    def test_matches_solve_many_and_populates_cache(self):
        from repro.core.batch import ConfigBatch, SolutionBatch

        configs = [paper_config(seed=s) for s in (2, 3)]
        reference = SolverService().solve_many(
            configs, backend="batched", use_cache=False
        )
        service = SolverService()
        solution = service.solve_batch(ConfigBatch.from_configs(configs))
        assert isinstance(solution, SolutionBatch)
        assert service.last_backend == "batched"
        for view, ref in zip(solution, reference):
            assert view.objective == ref.objective
        # The batch solve primed the scalar cache: solve() now hits.
        assert service.solve(configs[0]).objective == reference[0].objective
        assert service.cache_info()["hits"] == 1

    def test_mixed_cached_and_pending_keeps_submission_order(self):
        from repro.core.batch import ConfigBatch

        service = SolverService()
        a, b, c = (paper_config(seed=s) for s in (2, 3, 4))
        service.solve(b)  # pre-cache the middle config only
        solution = service.solve_batch(ConfigBatch.from_configs([a, b, c]))
        fresh = SolverService().solve_batch(
            ConfigBatch.from_configs([a, b, c]), use_cache=False
        )
        for i in range(3):
            assert solution[i].objective == fresh[i].objective

    def test_duplicates_coalesce(self):
        from repro.core.batch import ConfigBatch

        service = SolverService()
        cfg = paper_config(seed=2)
        service.solve_batch(ConfigBatch.from_configs([cfg, cfg, cfg]))
        info = service.cache_info()
        assert info["coalesced"] == 2
        assert info["misses"] == 1


class TestParallelMap:
    def test_order_preserved(self):
        assert parallel_map(str, [3, 1, 2], workers=2) == ["3", "1", "2"]

    def test_unpicklable_fn_falls_back_to_serial(self):
        offset = 10
        result = parallel_map(lambda x: x + offset, [1, 2, 3], workers=2)
        assert result == [11, 12, 13]

    def test_progress_serial(self):
        ticks = []
        parallel_map(str, [1, 2], progress=lambda d, t: ticks.append((d, t)))
        assert ticks == [(1, 2), (2, 2)]


class TestRunRecords:
    def test_record_contains_params_seed_result_timings(self, tmp_path):
        record = run_scenario("fig3", {"samples": 2, "seed": 1})
        assert record.scenario == "fig3"
        assert record.seed == 1
        assert record.params["samples"] == 2
        assert record.runtime_s > 0
        payload = record.to_dict()
        assert payload["result"]["kind"] == "optimality_study"

    def test_save_and_load_roundtrip(self, tmp_path):
        record = run_scenario("fig3", {"samples": 2, "seed": 1})
        target = record.save(tmp_path)
        assert (target / "record.json").exists()
        assert (target / "result.json").exists()
        loaded = RunRecord.load(target)
        assert loaded.scenario == record.scenario
        assert loaded.params == record.params
        assert np.allclose(loaded.result.values, record.result.values)

    def test_out_dir_plumbing(self, tmp_path):
        record = run_scenario("fig3", {"samples": 2}, out_dir=str(tmp_path))
        assert (tmp_path / record.run_id / "record.json").exists()

    def test_record_carries_cache_stats_delta(self, tmp_path):
        """Scenario runs record the solver-cache activity they caused."""
        from repro.api.scenarios import SERVICE

        SERVICE.clear_cache()
        first = run_scenario("solve", {"seed": 6})
        assert first.cache_stats == {"hits": 0, "misses": 1, "coalesced": 0}
        second = run_scenario("solve", {"seed": 6})
        assert second.cache_stats == {"hits": 1, "misses": 0, "coalesced": 0}
        target = second.save(tmp_path)
        assert RunRecord.load(target).cache_stats == second.cache_stats

    def test_identical_runs_get_distinct_run_ids(self, tmp_path):
        """Same scenario + params within one second must not overwrite."""
        first = run_scenario("fig3", {"samples": 2}, out_dir=str(tmp_path))
        second = run_scenario("fig3", {"samples": 2}, out_dir=str(tmp_path))
        assert first.run_id != second.run_id
        assert len(list(tmp_path.glob("*/record.json"))) == 2
