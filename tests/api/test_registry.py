"""Tests for the scenario registry and result round-trips.

The headline guarantee: every registered scenario's result object survives
``repro.io`` serialization (`to_dict`/`from_dict`) bit-for-bit at the
payload level.
"""

import pytest

from repro.api import REGISTRY, get_scenario, scenario_names
from repro.api.registry import ParamSpec, Scenario, ScenarioRegistry
from repro.io import result_from_dict, result_to_dict

EXPECTED_SCENARIOS = {
    "solve", "table5", "table6", "fig3", "fig4", "fig5", "fig6",
    "ablations", "dynamic", "pipeline", "report",
}


class TestRegistryContents:
    def test_all_paper_scenarios_registered(self):
        assert EXPECTED_SCENARIOS <= set(scenario_names())

    def test_every_scenario_has_seed_parameter(self):
        """The seed is a per-scenario parameter, recorded with every run."""
        for scenario in REGISTRY:
            assert "seed" in scenario.param_names, scenario.name

    def test_aliases_resolve(self):
        for scenario in REGISTRY:
            for alias in scenario.aliases:
                assert get_scenario(alias) is scenario

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nonsense")


class TestParamSpec:
    def test_typed_parse(self):
        spec = ParamSpec("samples", int, 10)
        assert spec.parse("42") == 42
        with pytest.raises(ValueError, match="cannot parse"):
            spec.parse("many")

    @pytest.mark.parametrize("text,expected", [
        ("true", True), ("1", True), ("yes", True),
        ("false", False), ("0", False), ("off", False),
    ])
    def test_bool_parse(self, text, expected):
        spec = ParamSpec("flag", bool, True)
        assert spec.parse(text) is expected

    def test_bool_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="boolean"):
            ParamSpec("flag", bool, True).parse("maybe")

    def test_choices_enforced(self):
        spec = ParamSpec("panel", str, "all", choices=("all", "bandwidth"))
        assert spec.parse("bandwidth") == "bandwidth"
        with pytest.raises(ValueError, match="not one of"):
            spec.parse("power")

    def test_default_must_be_a_choice(self):
        with pytest.raises(ValueError, match="not in choices"):
            ParamSpec("panel", str, "nope", choices=("all",))

    def test_reserved_names_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            ParamSpec("json", bool, False)

    def test_validate_rejects_wrongly_typed_values(self):
        with pytest.raises(ValueError, match="expected int"):
            ParamSpec("workers", int, 1).validate(2.5)
        with pytest.raises(ValueError, match="expected bool"):
            ParamSpec("flag", bool, True).validate(1)
        assert ParamSpec("rate", float, 1.0).validate(2) == 2.0


class TestBinding:
    def test_defaults_applied(self):
        scenario = get_scenario("fig3")
        bound = scenario.bind({})
        assert bound["samples"] == 20
        assert bound["seed"] == 2

    def test_override_validated_and_typed(self):
        scenario = get_scenario("fig3")
        bound = scenario.bind({"samples": "7"})
        assert bound["samples"] == 7

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            get_scenario("solve").bind({"bogus": 1})

    def test_wrongly_typed_override_rejected_at_bind(self):
        with pytest.raises(ValueError, match="expected int"):
            get_scenario("fig6").bind({"workers": 2.5})

    def test_registry_rejects_duplicate_names(self):
        registry = ScenarioRegistry()
        scenario = Scenario(
            name="x", help="", run=lambda: None, render=str,
        )
        registry.register(scenario)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(Scenario(name="x", help="", run=lambda: None, render=str))


class TestResultRoundTrips:
    """Every scenario result must survive to_dict → from_dict losslessly."""

    @pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
    def test_payload_roundtrip(self, name, scenario_result):
        result = scenario_result(name)
        payload = result_to_dict(result)
        assert payload["kind"]
        assert payload["format_version"] == 1
        restored = result_from_dict(payload)
        assert type(restored) is type(result)
        assert result_to_dict(restored) == payload

    @pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
    def test_render_accepts_result(self, name, scenario_result):
        scenario = get_scenario(name)
        text = scenario.render(scenario_result(name))
        assert isinstance(text, str) and text
