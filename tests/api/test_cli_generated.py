"""Smoke tests for the registry-generated CLI surface.

One smoke test per generated subcommand (plus the ``run``/``list``
umbrella commands, ``--json`` payloads and ``--out`` artifacts).  The
``report`` subcommand is exercised end-to-end in
``tests/experiments/test_report.py`` and skipped here to avoid rerunning
the full battery.
"""

import json

import pytest

from repro.api import REGISTRY, get_scenario
from repro.cli import main

#: Scenarios smoked here; report's CLI path is covered by test_report.py.
SMOKED = [name for name in (s.name for s in REGISTRY) if name != "report"]


def _smoke_args(name):
    scenario = get_scenario(name)
    args = ["run", name]
    for key, value in scenario.smoke_overrides.items():
        args += ["--set", f"{key}={value}"]
    return args


class TestGeneratedSubcommands:
    """Direct subcommands exist for every scenario with flags per parameter."""

    @pytest.mark.parametrize("name", SMOKED)
    def test_subcommand_smoke(self, name, capsys):
        scenario = get_scenario(name)
        args = [name]
        for key, value in scenario.smoke_overrides.items():
            args += [f"--{key.replace('_', '-')}", str(value)]
        assert main(args) == 0
        assert capsys.readouterr().out.strip()

    def test_flags_are_typed(self, capsys):
        assert main(["fig3", "--samples", "2", "--seed", "1"]) == 0
        assert "histogram" in capsys.readouterr().out

    def test_bad_choice_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--panel", "nonsense"])


class TestRunUmbrella:
    # Light scenarios only: the per-subcommand smoke above already runs all.
    @pytest.mark.parametrize("name", ["solve", "fig3", "fig4", "dynamic", "pipeline"])
    def test_run_json_smoke(self, name, capsys):
        assert main(_smoke_args(name) + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format_version"] == 1
        assert payload["kind"]

    def test_unknown_set_key_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "solve", "--set", "bogus=1"])

    def test_malformed_set_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "solve", "--set", "no-equals-sign"])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nonsense"])

    def test_out_writes_run_record(self, tmp_path, capsys):
        assert main(
            ["run", "fig3", "--set", "samples=2", "--out", str(tmp_path)]
        ) == 0
        records = list(tmp_path.glob("*/record.json"))
        assert len(records) == 1
        data = json.loads(records[0].read_text())
        assert data["scenario"] == "fig3"
        assert data["params"]["samples"] == 2
        assert data["seed"] == 2
        assert data["result"]["kind"] == "optimality_study"


class TestSeedPlumbing:
    def test_subcommand_without_seed_uses_scenario_default(self, capsys):
        """No --seed anywhere → the scenario default (2), deterministically."""
        assert main(["fig3", "--samples", "2", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["fig3", "--samples", "2", "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert main(["fig3", "--samples", "2", "--seed", "2", "--json"]) == 0
        explicit = json.loads(capsys.readouterr().out)
        assert first == second == explicit

    def test_global_seed_alias_still_works(self, capsys):
        """``repro --seed 5 fig3`` behaves like ``--set seed=5``."""
        assert main(["--seed", "1", "run", "fig3", "--set", "samples=2",
                     "--json"]) == 0
        aliased = json.loads(capsys.readouterr().out)
        assert main(["run", "fig3", "--set", "samples=2", "--set", "seed=1",
                     "--json"]) == 0
        explicit = json.loads(capsys.readouterr().out)
        assert aliased == explicit

    def test_per_scenario_seed_wins_over_global(self, capsys):
        assert main(["--seed", "4", "fig3", "--samples", "2", "--seed", "1",
                     "--json"]) == 0
        per_scenario = json.loads(capsys.readouterr().out)
        assert main(["fig3", "--samples", "2", "--seed", "1", "--json"]) == 0
        reference = json.loads(capsys.readouterr().out)
        assert per_scenario == reference


class TestList:
    def test_lists_every_scenario_and_params(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for scenario in REGISTRY:
            assert scenario.name in out
        assert "--set panel=" in out
