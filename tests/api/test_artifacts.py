"""Corrupt-artifact handling and durable-write ordering for RunRecords."""

import json

import pytest

from repro import faults, io as repro_io
from repro.api.artifacts import (
    RECORD_FILENAME,
    RESULT_FILENAME,
    RunRecord,
)
from repro.errors import ArtifactError, TransientIOError
from repro.faults import FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture()
def record(quhe_result):
    return RunRecord(
        scenario="solve",
        params={"seed": 2},
        result=quhe_result,
        started_at="20260808T000000",
        runtime_s=0.25,
    )


@pytest.fixture()
def run_dir(record, tmp_path):
    return record.save(tmp_path)


class TestSaveOrdering:
    def test_result_lands_before_record(self, record, tmp_path, monkeypatch):
        order = []
        real = repro_io.atomic_write_text

        def spy(path, text):
            order.append(path.name)
            return real(path, text)

        monkeypatch.setattr(repro_io, "atomic_write_text", spy)
        record.save(tmp_path / "ordered")
        assert order == [RESULT_FILENAME, RECORD_FILENAME]

    def test_no_temp_files_left_behind(self, run_dir):
        names = {p.name for p in run_dir.iterdir()}
        assert names == {RECORD_FILENAME, RESULT_FILENAME}


class TestCorruptRunRecords:
    def test_truncated_json(self, run_dir):
        target = run_dir / RECORD_FILENAME
        target.write_text(target.read_text()[:40])
        with pytest.raises(ArtifactError, match="corrupt run record") as err:
            RunRecord.load(run_dir)
        assert str(target) in str(err.value)
        assert err.value.path == str(target)

    def test_zero_byte_file(self, run_dir):
        (run_dir / RECORD_FILENAME).write_text("")
        with pytest.raises(ArtifactError, match="zero-byte file"):
            RunRecord.load(run_dir)

    def test_wrong_kind(self, run_dir):
        (run_dir / RECORD_FILENAME).write_text(
            json.dumps({"kind": "quhe_result"})
        )
        with pytest.raises(ArtifactError,
                           match="not a run record .kind='quhe_result'"):
            RunRecord.load(run_dir)

    def test_non_object_payload(self, run_dir):
        (run_dir / RECORD_FILENAME).write_text("[1, 2, 3]")
        with pytest.raises(ArtifactError, match="not a run record"):
            RunRecord.load(run_dir)

    def test_undecodable_result_payload(self, run_dir):
        target = run_dir / RECORD_FILENAME
        data = json.loads(target.read_text())
        data["result"] = {"kind": "no_such_kind"}
        target.write_text(json.dumps(data))
        with pytest.raises(ArtifactError, match="undecodable run record"):
            RunRecord.load(run_dir)

    def test_missing_record_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunRecord.load(tmp_path)

    def test_intact_record_roundtrips(self, record, run_dir):
        restored = RunRecord.load(run_dir)
        assert restored.run_id == record.run_id
        assert restored.result.converged == record.result.converged


class TestCorruptResultArtifacts:
    def test_truncated_result_json(self, quhe_result, tmp_path):
        path = tmp_path / "result.json"
        repro_io.save_result(quhe_result, path)
        path.write_text(path.read_text()[:25])
        with pytest.raises(ArtifactError, match="corrupt result artifact"):
            repro_io.load_result(path)

    def test_zero_byte_result(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        with pytest.raises(ArtifactError, match="zero-byte file") as err:
            repro_io.load_result(path)
        assert str(path) in str(err.value)

    def test_unknown_kind_payload(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"kind": "alien", "format_version": 1}))
        with pytest.raises(ArtifactError, match="unknown result kind"):
            repro_io.load_result(path)

    def test_version_mismatch(self, quhe_result, tmp_path):
        path = tmp_path / "future.json"
        payload = repro_io.result_to_dict(quhe_result)
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactError, match="unsupported format version"):
            repro_io.load_result(path)

    def test_missing_result_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            repro_io.load_result(tmp_path / "absent.json")


class TestAtomicWriteFaultSeam:
    def test_torn_write_leaves_corrupt_file_and_raises(self, tmp_path):
        path = tmp_path / "artifact.json"
        text = '{"kind": "x"}'
        plan = FaultPlan(rules=(
            FaultRule(seam="artifact.write", kind="torn_write"),))
        with plan.activate():
            with pytest.raises(TransientIOError, match="torn_write"):
                repro_io.atomic_write_text(path, text)
            # The torn file is on disk (half the payload) — exactly the
            # mess a crash mid-write would leave without atomic writes.
            assert path.read_text() == text[: len(text) // 2]
            # Retry succeeds once the rule's max_fires budget is spent.
            repro_io.atomic_write_text(path, text)
            assert json.loads(path.read_text()) == {"kind": "x"}

    def test_truncate_leaves_zero_byte_file(self, tmp_path):
        path = tmp_path / "artifact.json"
        plan = FaultPlan(rules=(
            FaultRule(seam="artifact.write", kind="truncate"),))
        with plan.activate():
            with pytest.raises(TransientIOError, match="truncate"):
                repro_io.atomic_write_text(path, "payload")
        assert path.read_text() == ""

    def test_read_seam_fires_on_load(self, record, run_dir):
        plan = FaultPlan(rules=(
            FaultRule(seam="artifact.read", kind="io_error"),))
        with plan.activate():
            with pytest.raises(TransientIOError):
                RunRecord.load(run_dir)
            # Budget spent: the record is untouched and loads fine.
            assert RunRecord.load(run_dir).run_id == record.run_id
