"""Tests for the FDMA bandwidth allocator (constraint 17f)."""

import numpy as np
import pytest

from repro.wireless.fdma import FDMAAllocator


class TestAllocator:
    def test_assign_and_track(self):
        alloc = FDMAAllocator(10e6)
        alloc.assign(0, 3e6)
        alloc.assign(1, 4e6)
        assert alloc.assigned_hz == pytest.approx(7e6)
        assert alloc.available_hz == pytest.approx(3e6)

    def test_oversubscription_rejected(self):
        alloc = FDMAAllocator(10e6)
        alloc.assign(0, 8e6)
        with pytest.raises(ValueError, match="exceeds"):
            alloc.assign(1, 3e6)

    def test_reassignment_replaces(self):
        alloc = FDMAAllocator(10e6)
        alloc.assign(0, 8e6)
        alloc.assign(0, 2e6)  # shrink: now 2 MHz used
        alloc.assign(1, 7e6)
        assert alloc.assigned_hz == pytest.approx(9e6)

    def test_release(self):
        alloc = FDMAAllocator(10e6)
        alloc.assign(0, 5e6)
        alloc.release(0)
        assert alloc.assigned_hz == 0.0
        alloc.release(99)  # releasing an unknown client is a no-op

    def test_nonpositive_slice_rejected(self):
        alloc = FDMAAllocator(10e6)
        with pytest.raises(ValueError):
            alloc.assign(0, 0.0)

    def test_allocation_snapshot(self):
        alloc = FDMAAllocator(10e6)
        alloc.assign(2, 1e6)
        snapshot = alloc.allocation()
        assert snapshot == {2: 1e6}
        snapshot[2] = 0.0  # mutating the snapshot must not affect the allocator
        assert alloc.allocation() == {2: 1e6}

    def test_validate_vector(self):
        alloc = FDMAAllocator(10e6)
        assert alloc.validate_vector(np.full(5, 2e6))
        assert not alloc.validate_vector(np.full(6, 2e6))
        assert not alloc.validate_vector(np.array([1e6, 0.0]))

    def test_equal_split_is_aa_baseline(self):
        alloc = FDMAAllocator(10e6)
        split = alloc.equal_split(6)
        assert np.allclose(split, 10e6 / 6)
        assert alloc.validate_vector(split)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FDMAAllocator(0.0)
        with pytest.raises(ValueError):
            FDMAAllocator(10e6).equal_split(0)
