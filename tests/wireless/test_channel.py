"""Tests for the client-placement channel model."""

import numpy as np
import pytest

from repro.wireless.channel import ChannelModel, ChannelRealization


class TestSampling:
    def test_distances_within_cell(self):
        model = ChannelModel(cell_radius_m=1000.0)
        d = model.sample_distances(1000, rng=0)
        assert np.all(d >= model.min_distance_m)
        assert np.all(d <= 1000.0)

    def test_uniform_in_disk_density(self):
        # Uniform-in-disk: P(d <= r) = (r/R)²; check the median ≈ R/√2.
        model = ChannelModel(cell_radius_m=1000.0)
        d = model.sample_distances(200_000, rng=1)
        assert np.median(d) == pytest.approx(1000.0 / np.sqrt(2), rel=0.02)

    def test_gains_positive(self):
        model = ChannelModel()
        real = model.sample(6, rng=2)
        assert real.num_clients == 6
        assert np.all(real.gains > 0)

    def test_rayleigh_toggle(self):
        distances = np.array([500.0, 500.0])
        with_fading = ChannelModel(use_rayleigh=True).gains_at(distances, rng=3)
        without = ChannelModel(use_rayleigh=False).gains_at(distances, rng=3)
        # Without fading both gains are identical (same distance).
        assert without.gains[0] == pytest.approx(without.gains[1])
        ratio = with_fading.gains[0] / with_fading.gains[1]
        assert abs(ratio - 1.0) > 1e-6

    def test_deterministic_given_seed(self):
        a = ChannelModel().sample(4, rng=11).gains
        b = ChannelModel().sample(4, rng=11).gains
        assert np.allclose(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelModel(cell_radius_m=0.0)
        with pytest.raises(ValueError):
            ChannelModel(min_distance_m=2000.0)


class TestRealization:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ChannelRealization(distances_m=np.ones(3), gains=np.ones(2))

    def test_nonpositive_gain_rejected(self):
        with pytest.raises(ValueError):
            ChannelRealization(distances_m=np.ones(2), gains=np.array([1e-12, 0.0]))
