"""Tests for the 3GPP path-loss and Rayleigh fading models (§VI-A)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.wireless.pathloss import (
    path_loss_db,
    path_loss_linear,
    rayleigh_power_gain,
)


class TestPathLoss:
    def test_paper_model_at_one_km(self):
        # 128.1 + 37.6 log10(1) = 128.1 dB at 1 km.
        assert path_loss_db(1000.0) == pytest.approx(128.1)

    def test_paper_model_at_100_m(self):
        assert path_loss_db(100.0) == pytest.approx(128.1 - 37.6)

    def test_linear_is_db_inverted(self):
        d = 500.0
        assert path_loss_linear(d) == pytest.approx(10 ** (-path_loss_db(d) / 10))

    def test_monotone_in_distance(self):
        assert path_loss_db(100.0) < path_loss_db(500.0) < path_loss_db(1000.0)

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ValueError):
            path_loss_db(0.0)

    def test_array_input(self):
        out = path_loss_db(np.array([100.0, 1000.0]))
        assert out.shape == (2,)

    @given(st.floats(min_value=1.0, max_value=1e5))
    def test_linear_gain_below_unity(self, distance):
        assert 0.0 < path_loss_linear(distance) < 1.0


class TestRayleigh:
    def test_unit_mean(self):
        rng = np.random.default_rng(0)
        samples = rayleigh_power_gain(rng, size=200_000)
        assert np.mean(samples) == pytest.approx(1.0, rel=0.02)

    def test_exponential_distribution_shape(self):
        rng = np.random.default_rng(1)
        samples = rayleigh_power_gain(rng, size=200_000)
        # P(X > 1) = e^-1 for Exp(1).
        assert np.mean(samples > 1.0) == pytest.approx(np.exp(-1), abs=0.01)

    def test_deterministic_with_seed(self):
        a = rayleigh_power_gain(7, size=10)
        b = rayleigh_power_gain(7, size=10)
        assert np.allclose(a, b)
