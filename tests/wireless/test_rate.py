"""Tests for the Shannon-rate uplink model (Eq. 10-12)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.wireless.rate import (
    transmission_delay,
    transmission_energy,
    uplink_rate,
    uplink_rate_gradient,
)

G = 1e-12  # a typical macro-cell channel gain


class TestRate:
    def test_eq10_formula(self):
        b, p = 1e6, 0.1
        n0 = 4e-21
        expected = b * np.log2(1 + p * G / (n0 * b))
        assert uplink_rate(b, p, G, noise_psd=n0) == pytest.approx(expected)

    def test_zero_power_zero_rate(self):
        assert uplink_rate(1e6, 0.0, G) == 0.0

    def test_increasing_in_power(self):
        assert uplink_rate(1e6, 0.2, G) > uplink_rate(1e6, 0.1, G)

    def test_increasing_in_bandwidth(self):
        assert uplink_rate(2e6, 0.1, G) > uplink_rate(1e6, 0.1, G)

    def test_bandwidth_saturation(self):
        # r -> p g / (N0 ln 2) as b -> inf; the marginal gain shrinks.
        r1 = uplink_rate(1e6, 0.1, G)
        r2 = uplink_rate(2e6, 0.1, G)
        r4 = uplink_rate(4e6, 0.1, G)
        assert (r2 - r1) > (r4 - r2) / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            uplink_rate(0.0, 0.1, G)
        with pytest.raises(ValueError):
            uplink_rate(1e6, -0.1, G)
        with pytest.raises(ValueError):
            uplink_rate(1e6, 0.1, 0.0)

    @settings(max_examples=40)
    @given(
        st.floats(min_value=1e4, max_value=1e8),
        st.floats(min_value=1e-3, max_value=1.0),
    )
    def test_jointly_concave_along_segments(self, b, p):
        """r(p, b) is jointly concave (Stage 3 relies on this)."""
        b2, p2 = b * 1.7, p * 0.4
        mid = uplink_rate((b + b2) / 2, (p + p2) / 2, G)
        ends = (uplink_rate(b, p, G) + uplink_rate(b2, p2, G)) / 2
        assert mid >= ends - 1e-6 * max(1.0, ends)


class TestGradient:
    def test_matches_finite_difference(self):
        b, p = 2e6, 0.15
        d_b, d_p = uplink_rate_gradient(b, p, G)
        h = 1e-3
        num_b = (uplink_rate(b + h * b, p, G) - uplink_rate(b - h * b, p, G)) / (2 * h * b)
        num_p = (uplink_rate(b, p + h * p, G) - uplink_rate(b, p - h * p, G)) / (2 * h * p)
        assert d_b == pytest.approx(num_b, rel=1e-4)
        assert d_p == pytest.approx(num_p, rel=1e-4)

    def test_gradients_positive(self):
        d_b, d_p = uplink_rate_gradient(1e6, 0.1, G)
        assert d_b > 0 and d_p > 0


class TestDelayEnergy:
    def test_eq11_delay(self):
        r = uplink_rate(1e6, 0.1, G)
        assert transmission_delay(3e9, 1e6, 0.1, G) == pytest.approx(3e9 / r)

    def test_eq12_energy(self):
        delay = transmission_delay(3e9, 1e6, 0.1, G)
        assert transmission_energy(3e9, 1e6, 0.1, G) == pytest.approx(0.1 * delay)

    def test_zero_data_zero_cost(self):
        assert transmission_delay(0.0, 1e6, 0.1, G) == 0.0
        assert transmission_energy(0.0, 1e6, 0.1, G) == 0.0

    def test_negative_data_rejected(self):
        with pytest.raises(ValueError):
            transmission_delay(-1.0, 1e6, 0.1, G)

    def test_array_broadcasting(self):
        b = np.array([1e6, 2e6])
        p = np.array([0.1, 0.2])
        g = np.array([G, G])
        delays = transmission_delay(np.array([3e9, 3e9]), b, p, g)
        assert delays.shape == (2,)
        assert delays[1] < delays[0]

    def test_energy_power_tradeoff_is_nonmonotone_in_p(self):
        # E = p d / r(p): raising p raises the numerator but also r; for a
        # log-capacity channel at high SNR, energy eventually grows with p.
        p_grid = np.linspace(0.01, 1.0, 50)
        energies = [transmission_energy(3e9, 1e6, p, G) for p in p_grid]
        assert energies[-1] > min(energies)
