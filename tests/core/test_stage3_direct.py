"""Ablation: the quadratic transform vs a direct pseudoconvex solve.

The paper's §V-E optimality argument says both must reach the same
(globally optimal) stationary point of Problem P5; verifying that here
validates the Eq. 25-26 machinery end to end.
"""

import numpy as np
import pytest

from repro.core.quhe import QuHE
from repro.core.stage3 import Stage3Solver
from repro.core.stage3_direct import Stage3DirectSolver


@pytest.fixture(scope="module")
def base_alloc(typical_cfg):
    return QuHE(typical_cfg).initial_allocation()


@pytest.fixture(scope="module")
def transform_result(typical_cfg, base_alloc):
    return Stage3Solver(typical_cfg).solve(base_alloc)


@pytest.fixture(scope="module")
def direct_result(typical_cfg, base_alloc):
    return Stage3DirectSolver(typical_cfg).solve(base_alloc)


class TestAgreement:
    def test_same_objective_value(self, transform_result, direct_result):
        """Both solvers reach the same P5 optimum (paper §V-E)."""
        assert transform_result.value == pytest.approx(direct_result.value, rel=2e-3)

    def test_same_delay_bound(self, transform_result, direct_result):
        assert transform_result.T == pytest.approx(direct_result.T, rel=0.02)

    def test_comparable_energy_terms(self, typical_cfg, transform_result, direct_result):
        solver = Stage3Solver(typical_cfg)
        cycles = typical_cfg.server_cycle_demand(np.full(typical_cfg.num_clients, 2**15))
        e_t = sum(
            np.sum(term)
            for term in solver._energy_terms(
                transform_result.p, transform_result.b,
                transform_result.f_c, transform_result.f_s, cycles,
            )
        )
        e_d = sum(
            np.sum(term)
            for term in solver._energy_terms(
                direct_result.p, direct_result.b,
                direct_result.f_c, direct_result.f_s, cycles,
            )
        )
        assert e_t == pytest.approx(e_d, rel=0.02)


class TestDirectSolver:
    def test_respects_caps(self, typical_cfg, direct_result):
        cfg = typical_cfg
        assert np.all(direct_result.p <= cfg.max_power * (1 + 1e-9))
        assert np.sum(direct_result.b) <= cfg.server.total_bandwidth_hz * (1 + 1e-9)
        assert np.sum(direct_result.f_s) <= cfg.server.total_frequency_hz * (1 + 1e-9)

    def test_no_surrogate_gap(self, direct_result):
        assert direct_result.transform_gap == [0.0]

    def test_usable_inside_quhe(self, typical_cfg):
        """QuHE accepts the direct solver as a drop-in Stage 3."""
        solver = QuHE(typical_cfg, stage3_solver=Stage3DirectSolver(typical_cfg))
        result = solver.solve()
        assert result.converged
        reference = QuHE(typical_cfg).solve()
        assert result.objective == pytest.approx(reference.objective, abs=0.02)
