"""Tests for the whole QuHE procedure (Alg. 4)."""

import dataclasses

import numpy as np
import pytest

from repro.core.problem import QuHEProblem
from repro.core.quhe import QuHE


class TestSolve:
    def test_converges(self, quhe_result):
        assert quhe_result.converged

    def test_objective_history_improves(self, quhe_result):
        h = np.asarray(quhe_result.objective_history)
        assert h[-1] > h[0]
        # The alternation never decreases the objective between outer rounds.
        assert np.all(np.diff(h) >= -1e-6)

    def test_final_allocation_feasible(self, typical_cfg, quhe_result):
        problem = QuHEProblem(typical_cfg)
        violations = problem.check_constraints(quhe_result.allocation, tol=1e-5)
        assert not violations, [str(v) for v in violations]

    def test_metrics_match_allocation(self, typical_cfg, quhe_result):
        problem = QuHEProblem(typical_cfg)
        recomputed = problem.metrics(quhe_result.allocation)
        assert recomputed.objective == pytest.approx(quhe_result.objective)

    def test_stage_results_populated(self, quhe_result):
        assert quhe_result.stage1 is not None
        assert quhe_result.stage2 is not None
        assert quhe_result.stage3 is not None

    def test_one_stage1_call(self, quhe_result):
        """Fig. 5(a): Stage 1 is called exactly once (the block is decoupled)."""
        assert quhe_result.stage1_calls == 1

    def test_stage1_block_at_paper_optimum(self, quhe_result):
        expected = np.array([2.098, 1.106, 1.103, 1.872, 0.6864, 0.5781])
        assert np.allclose(quhe_result.allocation.phi, expected, atol=2e-3)

    def test_lambda_in_admissible_set(self, typical_cfg, quhe_result):
        for v in quhe_result.allocation.lam:
            assert int(v) in typical_cfg.cost_model.lambda_set

    def test_runtime_recorded(self, quhe_result):
        assert quhe_result.runtime_s > 0

    def test_custom_initial_allocation(self, typical_cfg):
        solver = QuHE(typical_cfg)
        initial = solver.initial_allocation()
        perturbed = initial.with_updates(p=initial.p * 0.5)
        result = solver.solve(perturbed)
        assert result.converged

    def test_iteration_cap_respected(self, typical_cfg):
        solver = QuHE(typical_cfg, max_outer_iterations=1)
        result = solver.solve()
        assert result.outer_iterations == 1


class TestAgainstBruteForce:
    def test_quhe_at_least_as_good_as_grid_probe(self, typical_cfg, quhe_result):
        """QuHE beats a coarse random probe of the full variable space."""
        problem = QuHEProblem(typical_cfg)
        solver = QuHE(typical_cfg)
        rng = np.random.default_rng(0)
        best_probe = -np.inf
        for _ in range(200):
            base = solver.initial_allocation()
            n = typical_cfg.num_clients
            raw_b = rng.uniform(0.1, 1.0, n)
            raw_fs = rng.uniform(0.1, 1.0, n)
            lam = rng.choice(typical_cfg.cost_model.lambda_set, n).astype(float)
            candidate = base.with_updates(
                p=rng.uniform(0.02, 0.2, n),
                b=raw_b / raw_b.sum() * typical_cfg.server.total_bandwidth_hz,
                f_c=rng.uniform(0.5e9, 3e9, n),
                f_s=raw_fs / raw_fs.sum() * typical_cfg.server.total_frequency_hz,
                lam=lam,
            )
            if problem.is_feasible(candidate):
                best_probe = max(best_probe, problem.objective(candidate))
        assert quhe_result.objective >= best_probe - 1e-6


class TestWeightSensitivity:
    def test_high_msl_weight_selects_larger_lambda(self, typical_cfg):
        """Ablation: raising α_msl flips the λ choice to the secure end."""
        low = QuHE(typical_cfg).solve()
        high_cfg = dataclasses.replace(typical_cfg, alpha_msl=0.1)
        high = QuHE(high_cfg).solve()
        assert np.max(high.allocation.lam) > np.max(low.allocation.lam)

    def test_zero_delay_weight_prefers_energy(self, typical_cfg):
        """With α_t = 0 nothing pushes against energy minimisation, so the
        achieved energy is no worse than under the default weights."""
        frugal_cfg = dataclasses.replace(typical_cfg, alpha_t=0.0)
        default = QuHE(typical_cfg).solve()
        frugal = QuHE(frugal_cfg).solve()
        assert frugal.metrics.total_energy <= default.metrics.total_energy * 1.05
