"""Failure injection: stress the optimizer at the edges of its envelope.

Deep fades, starved budgets and impossible demands should produce either a
feasible (if costly) solution or a clean, diagnosable error — never a crash
or a silently infeasible allocation.
"""

import dataclasses

import numpy as np
import pytest

from repro.compute.devices import ClientNode
from repro.core.config import paper_config
from repro.core.problem import QuHEProblem
from repro.core.quhe import QuHE
from repro.core.stage1 import Stage1Solver


class TestChannelFailures:
    def test_deep_fade_still_feasible(self, typical_cfg):
        """One client 60 dB below the rest: QuHE must stay feasible and give
        the victim the lion's share of bandwidth."""
        gains = typical_cfg.channel_gains.copy()
        gains[3] *= 1e-6
        cfg = dataclasses.replace(typical_cfg, channel_gains=gains)
        result = QuHE(cfg).solve()
        assert QuHEProblem(cfg).is_feasible(result.allocation, tol=1e-5)
        assert np.argmax(result.allocation.b) == 3

    def test_uniformly_terrible_channels(self, typical_cfg):
        cfg = dataclasses.replace(
            typical_cfg, channel_gains=typical_cfg.channel_gains * 1e-4
        )
        result = QuHE(cfg).solve()
        assert result.converged
        assert QuHEProblem(cfg).is_feasible(result.allocation, tol=1e-5)
        # Delay explodes but is correctly reported, not hidden.
        assert result.metrics.total_delay > QuHE(typical_cfg).solve().metrics.total_delay


class TestBudgetStarvation:
    def test_tiny_server_cpu(self, typical_cfg):
        cfg = typical_cfg.with_total_server_frequency(1e9)  # 1 GHz for 6 clients
        result = QuHE(cfg).solve()
        assert QuHEProblem(cfg).is_feasible(result.allocation, tol=1e-5)
        assert np.sum(result.allocation.f_s) <= 1e9 * (1 + 1e-9)

    def test_tiny_bandwidth(self, typical_cfg):
        cfg = typical_cfg.with_total_bandwidth(5e5)  # 0.5 MHz total
        result = QuHE(cfg).solve()
        assert QuHEProblem(cfg).is_feasible(result.allocation, tol=1e-5)

    def test_tiny_power_cap(self, typical_cfg):
        cfg = typical_cfg.with_max_power(1e-3)
        result = QuHE(cfg).solve()
        assert QuHEProblem(cfg).is_feasible(result.allocation, tol=1e-5)
        assert np.all(result.allocation.p <= 1e-3 * (1 + 1e-9))

    def test_starved_objective_worse_than_default(self, typical_cfg):
        starved = typical_cfg.with_total_bandwidth(5e5)
        default = QuHE(typical_cfg).solve()
        result = QuHE(starved).solve()
        assert result.objective < default.objective


class TestImpossibleDemands:
    def test_infeasible_min_rates_raise_cleanly(self, typical_cfg):
        """φ_min beyond the fidelity-feasible region must raise, not hang."""
        clients = tuple(
            dataclasses.replace(c, min_entanglement_rate=50.0)
            for c in typical_cfg.clients
        )
        cfg = dataclasses.replace(typical_cfg, clients=clients)
        with pytest.raises(ValueError, match="feasible starting point"):
            Stage1Solver(cfg).feasible_start()

    def test_single_violating_client(self, typical_cfg):
        clients = list(typical_cfg.clients)
        clients[0] = dataclasses.replace(clients[0], min_entanglement_rate=100.0)
        cfg = dataclasses.replace(typical_cfg, clients=tuple(clients))
        with pytest.raises(ValueError):
            Stage1Solver(cfg).solve()


class TestDegenerateWeights:
    def test_all_cost_weights_zero(self, typical_cfg):
        """Pure utility maximisation: λ jumps to the top of the set."""
        cfg = dataclasses.replace(typical_cfg, alpha_t=0.0, alpha_e=0.0)
        result = QuHE(cfg).solve()
        assert result.converged
        assert np.all(result.allocation.lam == max(cfg.cost_model.lambda_set))

    def test_zero_qkd_weight_keeps_stage1_feasible(self, typical_cfg):
        cfg = dataclasses.replace(typical_cfg, alpha_qkd=0.0)
        result = QuHE(cfg).solve()
        assert QuHEProblem(cfg).is_feasible(result.allocation, tol=1e-5)
        assert np.all(result.allocation.phi >= cfg.min_rates - 1e-9)

    def test_huge_delay_weight_minimises_delay(self, typical_cfg):
        slow = QuHE(typical_cfg).solve()
        cfg = dataclasses.replace(typical_cfg, alpha_t=1.0)
        fast = QuHE(cfg).solve()
        assert fast.metrics.total_delay <= slow.metrics.total_delay * 1.01


class TestHeterogeneousFleet:
    def test_mixed_client_classes(self):
        """Clients with wildly different payloads and CPU classes coexist."""
        base = paper_config(seed=2)
        clients = tuple(
            ClientNode(
                index=i,
                privacy_weight=w,
                upload_bits=bits,
                max_frequency_hz=freq,
                max_power_w=p,
            )
            for i, (w, bits, freq, p) in enumerate([
                (0.1, 3e9, 3e9, 0.2),      # the paper's class
                (0.1, 1e7, 1e9, 0.05),     # tiny IoT sensor
                (0.1, 5e9, 4e9, 0.4),      # heavy uploader
                (0.2, 1e8, 2e9, 0.1),
                (0.2, 3e9, 3e9, 0.2),
                (0.3, 1e9, 3e9, 0.3),
            ])
        )
        cfg = dataclasses.replace(base, clients=clients)
        result = QuHE(cfg).solve()
        assert result.converged
        assert QuHEProblem(cfg).is_feasible(result.allocation, tol=1e-5)
        # The heavy uploader should hold more bandwidth than the sensor.
        assert result.allocation.b[2] > result.allocation.b[1]
