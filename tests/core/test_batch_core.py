"""Columnar ``ConfigBatch``/``SolutionBatch`` core (ISSUE 10).

The contract: the structure-of-arrays batches are a lossless interchange
format.  ``batch[i]`` views must fingerprint/serialize identically to the
original scalar objects, every round trip (jsonable, npz, memmapped npz)
must restore them byte-for-byte, and Stage-1 sharing — the dedup identity
``results[i].stage1 is results[j].stage1`` — must survive both the solve
and the artifact round trip.
"""

import dataclasses

import numpy as np
import pytest

from repro import io as repro_io
from repro.api.service import config_fingerprint
from repro.core.batch import ConfigBatch, SolutionBatch
from repro.core.batched import BatchedQuHE
from repro.core.config import paper_config
from repro.compute.cost_models import f_eval_paper
from repro.io import ArtifactError, result_to_dict


@pytest.fixture(scope="module")
def sweep_cfgs():
    base = paper_config(seed=2)
    return [
        base.with_total_bandwidth(float(v))
        for v in np.linspace(0.5e7, 1.5e7, 5)
    ]


@pytest.fixture(scope="module")
def solved(sweep_cfgs):
    return BatchedQuHE().solve_config_batch(ConfigBatch.from_configs(sweep_cfgs))


def strip_runtimes(payload):
    """Drop wall-clock fields so two separate solves compare equal."""
    if isinstance(payload, dict):
        return {
            k: strip_runtimes(v)
            for k, v in payload.items()
            if k != "runtime_s"
        }
    if isinstance(payload, list):
        return [strip_runtimes(v) for v in payload]
    return payload


class TestConfigBatch:
    def test_columns_are_contiguous_float_arrays(self, sweep_cfgs):
        batch = ConfigBatch.from_configs(sweep_cfgs)
        assert len(batch) == 5
        assert batch.num_clients == sweep_cfgs[0].num_clients
        assert batch.min_rates.shape == (5, batch.num_clients)
        assert batch.min_rates.flags["C_CONTIGUOUS"]
        assert batch.b_total.shape == (5,)
        assert batch.b_total[2] == sweep_cfgs[2].server.total_bandwidth_hz

    def test_views_fingerprint_identically(self, sweep_cfgs):
        batch = ConfigBatch.from_configs(sweep_cfgs)
        for i, cfg in enumerate(sweep_cfgs):
            assert config_fingerprint(batch[i]) == config_fingerprint(cfg)

    def test_rebuilt_views_fingerprint_identically(self, sweep_cfgs):
        """Views rebuilt purely from columns + meta (no original objects)
        must carry the same fingerprint as the sources."""
        batch = ConfigBatch.from_jsonable(
            ConfigBatch.from_configs(sweep_cfgs).to_jsonable()
        )
        for i, cfg in enumerate(sweep_cfgs):
            view = batch[i]
            assert view is not cfg
            assert config_fingerprint(view) == config_fingerprint(cfg)

    def test_select_preserves_order_and_identity(self, sweep_cfgs):
        batch = ConfigBatch.from_configs(sweep_cfgs)
        sub = batch.select([3, 0, 4])
        assert len(sub) == 3
        assert [config_fingerprint(c) for c in sub] == [
            config_fingerprint(sweep_cfgs[i]) for i in (3, 0, 4)
        ]

    def test_closure_cost_model_is_solvable_but_not_serializable(self):
        """Stacking must not reject configs that only fail at serialization
        time — mirroring the FingerprintError contract for the cache."""
        base = paper_config(seed=2)

        def eval_cycles(lam):
            return f_eval_paper(lam)

        cfg = dataclasses.replace(
            base,
            cost_model=dataclasses.replace(
                base.cost_model, eval_cycles=eval_cycles
            ),
        )
        batch = ConfigBatch.from_configs([cfg, base])
        result = BatchedQuHE().solve_config_batch(batch)[0]
        assert result.converged
        with pytest.raises(ValueError, match="locals|module-level"):
            batch.to_jsonable()


class TestSolutionBatch:
    def test_views_serialize_identically_to_list_path(
        self, sweep_cfgs, solved
    ):
        """The columnar solve and the legacy list-of-results path are the
        same computation — payloads match exactly (modulo wall clock)."""
        legacy = BatchedQuHE().solve_batch(sweep_cfgs)
        for i in range(len(sweep_cfgs)):
            a = strip_runtimes(result_to_dict(legacy[i]))
            b = strip_runtimes(result_to_dict(solved[i]))
            assert a == b

    def test_from_results_round_trip_is_exact(self, solved):
        rebuilt = SolutionBatch.from_results(solved.to_results())
        for i in range(len(solved)):
            assert result_to_dict(rebuilt[i]) == result_to_dict(solved[i])

    def test_jsonable_round_trip_is_exact(self, solved):
        rebuilt = SolutionBatch.from_jsonable(solved.to_jsonable())
        for i in range(len(solved)):
            assert result_to_dict(rebuilt[i]) == result_to_dict(solved[i])

    def test_stage1_sharing_survives_solve_and_round_trip(self, solved):
        """A bandwidth sweep shares one Stage-1 block; the shared identity
        must survive serialization, not just the in-memory solve."""
        results = solved.to_results()
        assert results[0].stage1 is results[-1].stage1
        rebuilt = SolutionBatch.from_jsonable(solved.to_jsonable())
        restored = rebuilt.to_results()
        assert restored[0].stage1 is restored[-1].stage1


class TestNpzArtifacts:
    @pytest.mark.parametrize("memmap", [True, False])
    def test_config_batch_npz_round_trip(self, sweep_cfgs, tmp_path, memmap):
        path = tmp_path / "configs.npz"
        repro_io.save_batch_npz(ConfigBatch.from_configs(sweep_cfgs), path)
        loaded = repro_io.load_batch_npz(path, memmap=memmap)
        assert isinstance(loaded, ConfigBatch)
        for i, cfg in enumerate(sweep_cfgs):
            assert config_fingerprint(loaded[i]) == config_fingerprint(cfg)

    @pytest.mark.parametrize("memmap", [True, False])
    def test_solution_batch_npz_round_trip(self, solved, tmp_path, memmap):
        path = tmp_path / "solutions.npz"
        repro_io.save_batch_npz(solved, path)
        loaded = repro_io.load_batch_npz(path, memmap=memmap)
        assert isinstance(loaded, SolutionBatch)
        for i in range(len(solved)):
            assert result_to_dict(loaded[i]) == result_to_dict(solved[i])
        restored = loaded.to_results()
        assert restored[0].stage1 is restored[-1].stage1

    def test_memmap_load_is_zero_copy(self, sweep_cfgs, tmp_path):
        path = tmp_path / "configs.npz"
        repro_io.save_batch_npz(ConfigBatch.from_configs(sweep_cfgs), path)
        loaded = repro_io.load_batch_npz(path, memmap=True)
        arr = loaded.min_rates
        assert isinstance(arr, np.memmap) or isinstance(arr.base, np.memmap)

    def test_truncated_npz_names_the_path(self, sweep_cfgs, tmp_path):
        path = tmp_path / "torn.npz"
        repro_io.save_batch_npz(ConfigBatch.from_configs(sweep_cfgs), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ArtifactError, match="torn.npz"):
            repro_io.load_batch_npz(path)

    def test_unsupported_object_raises_type_error(self, tmp_path):
        with pytest.raises(TypeError):
            repro_io.save_batch_npz(object(), tmp_path / "x.npz")
