"""Tests for Stage 1: the convexified QKD-utility solver (Alg. 1)."""

import numpy as np
import pytest

from repro.core.stage1 import Stage1Solver
from repro.quantum.utility import (
    optimal_link_werner,
    route_werner_parameters,
    stage1_objective_and_gradient,
)
from repro.quantum.werner import F_SKF_ZERO_CROSSING


class TestFeasibleStart:
    def test_start_is_interior(self, paper_cfg):
        solver = Stage1Solver(paper_cfg)
        phi = solver.feasible_start()
        assert np.all(phi >= paper_cfg.min_rates)
        value, _ = stage1_objective_and_gradient(
            np.log(phi), paper_cfg.network.incidence, paper_cfg.network.betas
        )
        assert np.isfinite(value)


class TestSolve:
    def test_reproduces_paper_table_v(self, stage1_solution):
        """The paper's Table V: φ* = (2.098, 1.106, 1.103, 1.872, 0.6864, 0.5781)."""
        expected = np.array([2.098, 1.106, 1.103, 1.872, 0.6864, 0.5781])
        assert np.allclose(stage1_solution.phi, expected, atol=2e-3)

    def test_reproduces_paper_table_vi(self, stage1_solution):
        """The paper's Table VI w values (spot-checked entries + unused link)."""
        w = stage1_solution.w
        expected = {
            0: 0.9766, 1: 0.9610, 2: 0.9857, 3: 0.9682, 4: 0.9661,
            5: 1.0000, 8: 0.9931, 14: 0.9611, 17: 0.9600,
        }
        for idx, value in expected.items():
            assert w[idx] == pytest.approx(value, abs=2e-3)

    def test_reproduces_paper_objective_value(self, stage1_solution):
        """Fig. 5(c): the Stage-1 objective value is 4.58."""
        assert stage1_solution.value == pytest.approx(4.58, abs=0.02)

    def test_converged(self, stage1_solution):
        assert stage1_solution.converged
        assert stage1_solution.iterations > 0

    def test_log_utility_consistency(self, stage1_solution):
        assert stage1_solution.log_utility == pytest.approx(-stage1_solution.value)

    def test_w_matches_eq18(self, paper_cfg, stage1_solution):
        w = optimal_link_werner(
            stage1_solution.phi, paper_cfg.network.incidence, paper_cfg.network.betas
        )
        assert np.allclose(stage1_solution.w, w)

    def test_solution_feasible(self, paper_cfg, stage1_solution):
        net = paper_cfg.network
        assert np.all(stage1_solution.phi >= paper_cfg.min_rates - 1e-9)
        load = net.incidence @ stage1_solution.phi
        assert np.all(load <= net.betas * (1 - stage1_solution.w) + 1e-6)
        varpi = route_werner_parameters(stage1_solution.w, net.incidence)
        assert np.all(varpi > F_SKF_ZERO_CROSSING)

    def test_history_decreases(self, stage1_solution):
        h = np.asarray(stage1_solution.history)
        assert h[-1] <= h[0] + 1e-9

    def test_insensitive_to_starting_point(self, paper_cfg):
        solver = Stage1Solver(paper_cfg)
        a = solver.solve()
        b = solver.solve(initial_phi=np.full(6, 0.9))
        assert np.allclose(a.phi, b.phi, atol=1e-3)
        assert a.value == pytest.approx(b.value, abs=1e-5)

    def test_bad_start_recovered(self, paper_cfg):
        # An infeasible initial point falls back to the feasible start.
        solver = Stage1Solver(paper_cfg)
        result = solver.solve(initial_phi=np.full(6, 1e4))
        assert result.value == pytest.approx(4.58, abs=0.02)

    def test_stage1_independent_of_channel(self):
        # The QKD block shares nothing with the wireless side: different
        # channel seeds give identical Stage-1 solutions.
        from repro.core.config import paper_config

        a = Stage1Solver(paper_config(seed=1)).solve()
        b = Stage1Solver(paper_config(seed=9)).solve()
        assert np.allclose(a.phi, b.phi, atol=1e-6)

    def test_kkt_stationarity_at_optimum(self, paper_cfg, stage1_solution):
        """Projected gradient at the optimum is (near) zero on free coordinates."""
        x = np.log(stage1_solution.phi)
        _, grad = stage1_objective_and_gradient(
            x, paper_cfg.network.incidence, paper_cfg.network.betas
        )
        at_lower = np.isclose(stage1_solution.phi, paper_cfg.min_rates, atol=1e-6)
        free_grad = grad[~at_lower]
        assert np.all(np.abs(free_grad) < 5e-3)
