"""Tests for Stage 3: the fractional-programming block (Alg. 3)."""

import numpy as np
import pytest

from repro.core.problem import QuHEProblem
from repro.core.quhe import QuHE
from repro.core.stage3 import Stage3Solver


@pytest.fixture(scope="module")
def base_alloc(typical_cfg):
    return QuHE(typical_cfg).initial_allocation()


@pytest.fixture(scope="module")
def stage3_result(typical_cfg, base_alloc):
    return Stage3Solver(typical_cfg).solve(base_alloc)


class TestSolve:
    def test_improves_over_initial(self, typical_cfg, base_alloc, stage3_result):
        solver = Stage3Solver(typical_cfg)
        initial_value = solver.p5_objective(base_alloc)
        assert stage3_result.value > initial_value

    def test_history_monotone_nondecreasing(self, stage3_result):
        h = np.asarray(stage3_result.history)
        assert np.all(np.diff(h) >= -1e-6 * np.abs(h[:-1]))

    def test_transform_gap_shrinks(self, typical_cfg, stage3_result):
        """The quadratic transform becomes tight (Fig. 4(d) analogue)."""
        gaps = np.asarray(stage3_result.transform_gap)
        # The gap decays by orders of magnitude across outer iterations and
        # ends small relative to the transmission energy it approximates.
        tr_energy = float(
            np.sum(stage3_result.p * typical_cfg.upload_bits)
            / np.mean(Stage3Solver(typical_cfg)._rates(stage3_result.p, stage3_result.b))
        )
        assert gaps[-1] < max(1e-6, 0.05 * gaps[0])
        assert gaps[-1] < 1e-2 * max(1.0, tr_energy)

    def test_converged(self, stage3_result):
        assert stage3_result.converged

    def test_solution_respects_caps(self, typical_cfg, stage3_result):
        cfg = typical_cfg
        assert np.all(stage3_result.p <= cfg.max_power * (1 + 1e-9))
        assert np.sum(stage3_result.b) <= cfg.server.total_bandwidth_hz * (1 + 1e-9)
        assert np.all(stage3_result.f_c <= cfg.client_max_frequency * (1 + 1e-9))
        assert np.sum(stage3_result.f_s) <= cfg.server.total_frequency_hz * (1 + 1e-9)

    def test_T_equals_max_delay(self, typical_cfg, base_alloc, stage3_result):
        problem = QuHEProblem(typical_cfg)
        alloc = base_alloc.with_updates(
            p=stage3_result.p,
            b=stage3_result.b,
            f_c=stage3_result.f_c,
            f_s=stage3_result.f_s,
            T=None,
        )
        delays = problem.metrics(alloc).per_node_delay
        assert stage3_result.T == pytest.approx(np.max(delays), rel=1e-6)

    def test_full_allocation_feasible(self, typical_cfg, base_alloc, stage3_result):
        problem = QuHEProblem(typical_cfg)
        alloc = base_alloc.with_updates(
            p=stage3_result.p,
            b=stage3_result.b,
            f_c=stage3_result.f_c,
            f_s=stage3_result.f_s,
            T=stage3_result.T,
        )
        violations = problem.check_constraints(alloc, tol=1e-5)
        assert not violations, [str(v) for v in violations]

    def test_energy_better_than_average_allocation(self, typical_cfg, base_alloc, stage3_result):
        """Fig. 5(d): optimizing resources slashes energy vs the AA point."""
        problem = QuHEProblem(typical_cfg)
        aa_energy = problem.metrics(base_alloc).total_energy
        opt = base_alloc.with_updates(
            p=stage3_result.p,
            b=stage3_result.b,
            f_c=stage3_result.f_c,
            f_s=stage3_result.f_s,
        )
        assert problem.metrics(opt).total_energy < aa_energy

    def test_bottleneck_gets_most_bandwidth(self, typical_cfg, stage3_result):
        """The weakest channel should receive the largest bandwidth share."""
        gains = typical_cfg.channel_gains
        worst = int(np.argmin(gains))
        assert stage3_result.b[worst] == pytest.approx(np.max(stage3_result.b), rel=0.3)


class TestEdgeCases:
    def test_infeasible_initial_point_recovered(self, typical_cfg, base_alloc):
        bad = base_alloc.with_updates(
            b=base_alloc.b * 10,  # violates Σb ≤ B_total before clipping
            f_s=base_alloc.f_s * 10,
        )
        result = Stage3Solver(typical_cfg).solve(bad)
        cfg = typical_cfg
        assert np.sum(result.b) <= cfg.server.total_bandwidth_hz * (1 + 1e-9)
        assert np.sum(result.f_s) <= cfg.server.total_frequency_hz * (1 + 1e-9)

    def test_single_outer_iteration_cap(self, typical_cfg, base_alloc):
        result = Stage3Solver(typical_cfg, max_outer_iterations=1).solve(base_alloc)
        assert result.outer_iterations == 1
        assert len(result.history) == 1
