"""Tests for the Allocation/Metrics containers."""

import numpy as np
import pytest

from repro.core.solution import Allocation, Metrics


def make_alloc(n=3, **overrides):
    base = dict(
        phi=np.full(n, 0.6),
        w=np.full(5, 0.95),
        lam=np.full(n, 2**15),
        p=np.full(n, 0.1),
        b=np.full(n, 1e6),
        f_c=np.full(n, 1e9),
        f_s=np.full(n, 2e9),
    )
    base.update(overrides)
    return Allocation(**base)


class TestAllocation:
    def test_num_clients(self):
        assert make_alloc(4).num_clients == 4

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            make_alloc(p=np.ones(2))

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            make_alloc(phi=np.ones((3, 1)), p=np.ones(3))

    def test_with_updates_returns_new(self):
        alloc = make_alloc()
        updated = alloc.with_updates(T=10.0)
        assert updated.T == 10.0
        assert alloc.T is None

    def test_arrays_coerced_to_float(self):
        alloc = make_alloc(lam=np.array([2**15, 2**15, 2**15], dtype=int))
        assert alloc.lam.dtype == np.float64


class TestMetrics:
    def make_metrics(self):
        n = 2
        return Metrics(
            u_qkd=0.01,
            u_msl=67.0,
            enc_delay=np.array([1.0, 2.0]),
            tr_delay=np.array([10.0, 20.0]),
            cmp_delay=np.array([100.0, 50.0]),
            enc_energy=np.array([0.1, 0.1]),
            tr_energy=np.array([1.0, 2.0]),
            cmp_energy=np.array([10.0, 10.0]),
            total_delay=111.0,
            total_energy=23.2,
            objective=-1.5,
        )

    def test_per_node_delay(self):
        m = self.make_metrics()
        assert np.allclose(m.per_node_delay, [111.0, 72.0])

    def test_per_node_energy(self):
        m = self.make_metrics()
        assert np.allclose(m.per_node_energy, [11.1, 12.1])

    def test_summary_keys(self):
        summary = self.make_metrics().summary()
        assert set(summary) == {
            "objective",
            "u_qkd",
            "u_msl",
            "total_delay_s",
            "total_energy_j",
        }
