"""Tests for the Stage-1 baselines: GD, simulated annealing, random search."""

import numpy as np
import pytest

from repro.core.stage1 import Stage1Solver
from repro.core.stage1_baselines import (
    GradientDescentStage1,
    RandomSearchStage1,
    SimulatedAnnealingStage1,
)
from repro.quantum.utility import route_werner_parameters
from repro.quantum.werner import F_SKF_ZERO_CROSSING


def assert_feasible(cfg, result):
    assert np.all(result.phi >= cfg.min_rates * (1 - 1e-9))
    load = cfg.network.incidence @ result.phi
    assert np.all(load <= cfg.network.betas * (1 - result.w) + 1e-6)
    varpi = route_werner_parameters(result.w, cfg.network.incidence)
    assert np.all(varpi > F_SKF_ZERO_CROSSING)


class TestGradientDescent:
    def test_matches_convex_solver(self, paper_cfg, stage1_solution):
        """Paper: GD reaches the same optimum as QuHE Stage 1 (Table V)."""
        gd = GradientDescentStage1(paper_cfg, max_iterations=8000).solve()
        assert gd.value == pytest.approx(stage1_solution.value, abs=2e-3)
        assert np.allclose(gd.phi, stage1_solution.phi, atol=0.02)

    def test_slower_than_convex_solver(self, paper_cfg, stage1_solution):
        """Paper Fig. 5(b): GD needs much more time than QuHE Stage 1."""
        gd = GradientDescentStage1(paper_cfg, max_iterations=8000).solve()
        assert gd.iterations > 10 * max(stage1_solution.iterations, 1)

    def test_history_monotone_overall(self, paper_cfg):
        gd = GradientDescentStage1(paper_cfg, max_iterations=2000).solve()
        h = np.asarray(gd.history)
        assert h[-1] <= h[0]

    def test_solution_feasible(self, paper_cfg):
        gd = GradientDescentStage1(paper_cfg, max_iterations=2000).solve()
        assert_feasible(paper_cfg, gd)

    def test_invalid_learning_rate(self, paper_cfg):
        with pytest.raises(ValueError):
            GradientDescentStage1(paper_cfg, learning_rate=0.0)


class TestSimulatedAnnealing:
    def test_near_optimal(self, paper_cfg, stage1_solution):
        """Paper Fig. 5(c): SA lands near but slightly above the optimum."""
        sa = SimulatedAnnealingStage1(paper_cfg, max_iterations=4000, seed=0).solve()
        assert sa.value == pytest.approx(stage1_solution.value, abs=0.15)
        assert sa.value >= stage1_solution.value - 1e-6

    def test_deterministic_given_seed(self, paper_cfg):
        a = SimulatedAnnealingStage1(paper_cfg, max_iterations=500, seed=3).solve()
        b = SimulatedAnnealingStage1(paper_cfg, max_iterations=500, seed=3).solve()
        assert np.allclose(a.phi, b.phi)

    def test_solution_feasible(self, paper_cfg):
        sa = SimulatedAnnealingStage1(paper_cfg, max_iterations=1000, seed=1).solve()
        assert_feasible(paper_cfg, sa)

    def test_best_history_monotone(self, paper_cfg):
        sa = SimulatedAnnealingStage1(paper_cfg, max_iterations=1000, seed=2).solve()
        h = np.asarray(sa.history)
        assert np.all(np.diff(h) <= 1e-12)

    def test_invalid_cooling(self, paper_cfg):
        with pytest.raises(ValueError):
            SimulatedAnnealingStage1(paper_cfg, cooling=1.5)


class TestRandomSearch:
    def test_worse_than_convex_solver(self, paper_cfg, stage1_solution):
        """Paper Fig. 5(c): random selection has a clearly higher objective."""
        rs = RandomSearchStage1(paper_cfg, num_samples=10_000, seed=0).solve()
        assert rs.value > stage1_solution.value

    def test_not_absurdly_bad(self, paper_cfg, stage1_solution):
        rs = RandomSearchStage1(paper_cfg, num_samples=10_000, seed=0).solve()
        assert rs.value < stage1_solution.value + 3.0

    def test_deterministic_given_seed(self, paper_cfg):
        a = RandomSearchStage1(paper_cfg, num_samples=2000, seed=5).solve()
        b = RandomSearchStage1(paper_cfg, num_samples=2000, seed=5).solve()
        assert np.allclose(a.phi, b.phi)

    def test_solution_feasible(self, paper_cfg):
        rs = RandomSearchStage1(paper_cfg, num_samples=5000, seed=1).solve()
        assert_feasible(paper_cfg, rs)

    def test_more_samples_no_worse(self, paper_cfg):
        few = RandomSearchStage1(paper_cfg, num_samples=500, seed=7).solve()
        many = RandomSearchStage1(paper_cfg, num_samples=20_000, seed=7).solve()
        assert many.value <= few.value + 1e-9

    def test_invalid_sample_count(self, paper_cfg):
        with pytest.raises(ValueError):
            RandomSearchStage1(paper_cfg, num_samples=0)
