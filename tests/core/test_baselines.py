"""Tests for the AA / OLAA / OCCR baselines (§VI-B)."""

import dataclasses

import numpy as np
import pytest

from repro.core.baselines import average_allocation, occr_baseline, olaa_baseline
from repro.core.problem import QuHEProblem


@pytest.fixture(scope="module")
def shared_stage1(typical_cfg):
    from repro.core.stage1 import Stage1Solver

    return Stage1Solver(typical_cfg).solve()


class TestAA:
    def test_average_values(self, typical_cfg, shared_stage1):
        result = average_allocation(typical_cfg, stage1_result=shared_stage1)
        n = typical_cfg.num_clients
        alloc = result.allocation
        assert np.all(alloc.lam == 2**15)
        assert np.allclose(alloc.p, typical_cfg.max_power)
        assert np.allclose(alloc.b, typical_cfg.server.total_bandwidth_hz / n)
        assert np.allclose(alloc.f_c, typical_cfg.client_max_frequency)
        assert np.allclose(alloc.f_s, typical_cfg.server.total_frequency_hz / n)

    def test_feasible(self, typical_cfg, shared_stage1):
        result = average_allocation(typical_cfg, stage1_result=shared_stage1)
        assert QuHEProblem(typical_cfg).is_feasible(result.allocation)

    def test_uses_stage1_block(self, typical_cfg, shared_stage1):
        result = average_allocation(typical_cfg, stage1_result=shared_stage1)
        assert np.allclose(result.allocation.phi, shared_stage1.phi)
        assert np.allclose(result.allocation.w, shared_stage1.w)


class TestOLAA:
    def test_lambda_optimized_resources_averaged(self, typical_cfg, shared_stage1):
        result = olaa_baseline(typical_cfg, stage1_result=shared_stage1)
        n = typical_cfg.num_clients
        assert np.allclose(result.allocation.b, typical_cfg.server.total_bandwidth_hz / n)
        assert all(int(v) in typical_cfg.cost_model.lambda_set for v in result.allocation.lam)

    def test_no_worse_than_aa(self, typical_cfg, shared_stage1):
        aa = average_allocation(typical_cfg, stage1_result=shared_stage1)
        olaa = olaa_baseline(typical_cfg, stage1_result=shared_stage1)
        assert olaa.objective >= aa.objective - 1e-9

    def test_msl_dominates_aa_when_weighted(self, typical_cfg, shared_stage1):
        """Fig. 5(d) shape: with α_msl = 0.1 OLAA far exceeds AA on U_msl."""
        cfg = dataclasses.replace(typical_cfg, alpha_msl=0.1)
        aa = average_allocation(cfg, stage1_result=shared_stage1)
        olaa = olaa_baseline(cfg, stage1_result=shared_stage1)
        assert olaa.metrics.u_msl > aa.metrics.u_msl


class TestOCCR:
    def test_lambda_fixed_at_minimum(self, typical_cfg, shared_stage1):
        result = occr_baseline(typical_cfg, stage1_result=shared_stage1)
        assert np.all(result.allocation.lam == 2**15)

    def test_no_worse_than_aa(self, typical_cfg, shared_stage1):
        aa = average_allocation(typical_cfg, stage1_result=shared_stage1)
        occr = occr_baseline(typical_cfg, stage1_result=shared_stage1)
        assert occr.objective >= aa.objective - 1e-9

    def test_energy_dominates_aa(self, typical_cfg, shared_stage1):
        """Fig. 5(d): OCCR's optimized resources slash energy vs AA."""
        aa = average_allocation(typical_cfg, stage1_result=shared_stage1)
        occr = occr_baseline(typical_cfg, stage1_result=shared_stage1)
        assert occr.metrics.total_energy < aa.metrics.total_energy

    def test_feasible(self, typical_cfg, shared_stage1):
        result = occr_baseline(typical_cfg, stage1_result=shared_stage1)
        violations = QuHEProblem(typical_cfg).check_constraints(
            result.allocation, tol=1e-5
        )
        assert not violations, [str(v) for v in violations]


class TestOrdering:
    def test_quhe_beats_all_baselines(self, typical_cfg, shared_stage1, quhe_result):
        """The paper's headline: QuHE has the best objective value."""
        for fn in (average_allocation, olaa_baseline, occr_baseline):
            baseline = fn(typical_cfg, stage1_result=shared_stage1)
            assert quhe_result.objective >= baseline.objective - 1e-6

    def test_stage1_computed_when_not_supplied(self, typical_cfg):
        result = average_allocation(typical_cfg)
        expected = np.array([2.098, 1.106, 1.103, 1.872, 0.6864, 0.5781])
        assert np.allclose(result.allocation.phi, expected, atol=2e-3)
