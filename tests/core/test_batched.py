"""Batched ≡ scalar equivalence for the vectorized solver core.

The contract (ISSUE 4 acceptance): for any batch of configurations, the
batched backend must produce objectives within 1e-9 of the scalar
:class:`~repro.core.quhe.QuHE` solver and select *identical* Stage-2 λ
assignments.  The scalar Stage-3 path runs the same interior-point core
with a batch of one, so these are genuine end-to-end properties of the
shared algorithm, tested across seeds, batch shapes (K = 1, K = 64,
ragged), client counts and mixed topologies.
"""

import dataclasses

import numpy as np
import pytest

from repro.api.service import SolverService
from repro.core.batched import BatchedQuHE, solve_batch
from repro.core.config import paper_config
from repro.core.quhe import QuHE
from repro.quantum.topology import QKDNetwork

#: Acceptance bound on |F_batched − F_scalar|.
OBJECTIVE_TOL = 1e-9


def small_network(num_clients: int) -> QKDNetwork:
    """A line/star network with ``num_clients`` routes (≠ the paper's 6)."""
    if num_clients == 1:
        edges = [("KC", "A", 8.0)]
        clients = ["A"]
    elif num_clients == 3:
        edges = [("KC", "A", 8.0), ("KC", "B", 10.0), ("B", "C", 7.0)]
        clients = ["A", "B", "C"]
    else:
        raise ValueError(num_clients)
    return QKDNetwork.from_edge_list(edges, clients, key_center="KC")


def assert_equivalent(scalar, batched):
    __tracebackhide__ = True
    assert abs(scalar.objective - batched.objective) <= OBJECTIVE_TOL, (
        f"objective diverged: scalar {scalar.objective!r} "
        f"vs batched {batched.objective!r}"
    )
    assert np.array_equal(scalar.allocation.lam, batched.allocation.lam), (
        f"λ diverged: scalar {scalar.allocation.lam} "
        f"vs batched {batched.allocation.lam}"
    )
    for field in ("p", "b", "f_c", "f_s"):
        a = getattr(scalar.allocation, field)
        b = getattr(batched.allocation, field)
        assert np.allclose(a, b, rtol=1e-6, atol=0.0), f"{field} diverged"


class TestSeedSweep:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_batch_of_one_matches_scalar(self, seed):
        cfg = paper_config(seed=seed)
        scalar = QuHE(cfg).solve()
        batched = solve_batch([cfg])[0]
        assert_equivalent(scalar, batched)
        assert batched.converged
        assert batched.stage2_calls == scalar.stage2_calls

    def test_mixed_seed_batch(self):
        cfgs = [paper_config(seed=s) for s in (1, 2, 3, 4, 5)]
        batched = solve_batch(cfgs)
        for cfg, b in zip(cfgs, batched):
            assert_equivalent(QuHE(cfg).solve(), b)


class TestBatchShapes:
    def test_k64_bandwidth_sweep_spot_checked(self, typical_cfg):
        grid = np.linspace(0.5e7, 1.5e7, 64)
        cfgs = [typical_cfg.with_total_bandwidth(float(v)) for v in grid]
        batched = solve_batch(cfgs)
        assert all(r.converged for r in batched)
        # The batch axis must not leak between configs: spot-check scalar
        # equivalence at the edges and interior points.
        for i in (0, 17, 31, 48, 63):
            assert_equivalent(QuHE(cfgs[i]).solve(), batched[i])
        # Objectives respond monotonically-ish to more bandwidth.
        objectives = [r.objective for r in batched]
        assert objectives[-1] > objectives[0]

    def test_batch_order_is_preserved(self, typical_cfg):
        cfgs = [
            typical_cfg.with_total_bandwidth(1.5e7),
            typical_cfg.with_total_bandwidth(0.5e7),
            typical_cfg.with_total_bandwidth(1.0e7),
        ]
        results = solve_batch(cfgs)
        fingerprints = [r.objective for r in results]
        again = solve_batch(list(reversed(cfgs)))
        assert fingerprints == pytest.approx(
            [r.objective for r in reversed(again)], abs=OBJECTIVE_TOL
        )

    def test_k1_equals_k64_member(self, typical_cfg):
        """A config solves identically alone and inside a large batch."""
        grid = np.linspace(0.5e7, 1.5e7, 64)
        cfgs = [typical_cfg.with_total_bandwidth(float(v)) for v in grid]
        full = solve_batch(cfgs)
        lone = solve_batch([cfgs[31]])[0]
        assert lone.objective == pytest.approx(
            full[31].objective, abs=OBJECTIVE_TOL
        )
        assert np.array_equal(lone.allocation.lam, full[31].allocation.lam)


class TestMixedTopologies:
    def test_ragged_batch_groups_by_shape(self):
        cfgs = [
            paper_config(seed=2),
            paper_config(seed=2, network=small_network(3)),
            paper_config(seed=3),
            paper_config(seed=4, network=small_network(1)),
            paper_config(seed=2, network=small_network(3)).with_total_bandwidth(
                0.8e7
            ),
        ]
        batched = solve_batch(cfgs)
        assert [r.allocation.num_clients for r in batched] == [6, 3, 6, 1, 3]
        for cfg, b in zip(cfgs, batched):
            assert_equivalent(QuHE(cfg).solve(), b)

    @pytest.mark.parametrize("perm_seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_ragged_results_follow_submission_order(self, perm_seed):
        """Regression (ISSUE 10): shape-group batching internally reorders a
        mixed-topology batch into per-shape groups; results must come back
        in the caller's submission order, not the grouped order.  Shuffle a
        [6, 3, 6, 1, 3]-client batch many ways and pin each slot to the
        result its config produced in the canonical order."""
        base = [
            paper_config(seed=2),
            paper_config(seed=2, network=small_network(3)),
            paper_config(seed=3),
            paper_config(seed=4, network=small_network(1)),
            paper_config(
                seed=2, network=small_network(3)
            ).with_total_bandwidth(0.8e7),
        ]
        canonical = solve_batch(base)
        order = list(range(len(base)))
        np.random.default_rng(perm_seed).shuffle(order)
        shuffled = solve_batch([base[i] for i in order])
        for slot, src in enumerate(order):
            want, got = canonical[src], shuffled[slot]
            assert got.allocation.num_clients == base[src].num_clients
            assert got.objective == pytest.approx(
                want.objective, abs=OBJECTIVE_TOL
            )
            assert np.array_equal(
                got.allocation.lam, want.allocation.lam
            )

    def test_stage1_shared_across_identical_qkd_blocks(self, typical_cfg):
        """Sweep configs share one Stage-1 solve (the block is decoupled)."""
        cfgs = [
            typical_cfg.with_total_bandwidth(v) for v in (0.5e7, 1.0e7, 1.5e7)
        ]
        results = solve_batch(cfgs)
        assert results[0].stage1 is results[1].stage1 is results[2].stage1


class TestColumnarEntryPoints:
    def test_solve_batch_accepts_config_batch(self, typical_cfg):
        from repro.core.batch import ConfigBatch

        cfgs = [
            typical_cfg.with_total_bandwidth(v) for v in (0.6e7, 1.2e7)
        ]
        from_list = BatchedQuHE().solve_batch(cfgs)
        from_batch = BatchedQuHE().solve_batch(ConfigBatch.from_configs(cfgs))
        for a, b in zip(from_list, from_batch):
            assert a.objective == b.objective
            assert np.array_equal(a.allocation.lam, b.allocation.lam)

    def test_solve_config_batch_returns_solution_batch(self, typical_cfg):
        from repro.core.batch import ConfigBatch, SolutionBatch

        cfgs = [
            typical_cfg.with_total_bandwidth(v) for v in (0.6e7, 1.2e7)
        ]
        solution = BatchedQuHE().solve_config_batch(
            ConfigBatch.from_configs(cfgs)
        )
        assert isinstance(solution, SolutionBatch)
        assert len(solution) == 2
        assert solution.objective.shape == (2,)
        for view, legacy in zip(solution, BatchedQuHE().solve_batch(cfgs)):
            assert view.objective == legacy.objective


class TestWarmStarts:
    def test_initials_match_scalar_warm_start(self, typical_cfg):
        warm_cfg = dataclasses.replace(typical_cfg, alpha_msl=0.05)
        base = QuHE(typical_cfg).solve().allocation.with_updates(T=None)
        scalar = QuHE(warm_cfg).solve(base)
        batched = BatchedQuHE().solve_batch([warm_cfg], initials=[base])[0]
        assert_equivalent(scalar, batched)

    def test_initials_length_mismatch_rejected(self, typical_cfg):
        with pytest.raises(ValueError):
            BatchedQuHE().solve_batch([typical_cfg], initials=[None, None])


class TestServiceBackends:
    def test_all_backends_agree(self, typical_cfg):
        cfgs = [
            typical_cfg.with_total_bandwidth(v) for v in (0.6e7, 1.2e7)
        ]
        by_backend = {
            backend: SolverService().solve_many(
                cfgs, backend=backend, use_cache=False
            )
            for backend in ("serial", "batched")
        }
        for serial, batched in zip(*by_backend.values()):
            assert_equivalent(serial, batched)

    def test_auto_resolves_and_records_backend(self, typical_cfg):
        service = SolverService()
        service.solve_many([typical_cfg])
        # auto without a worker request resolves to the in-process batch
        # on every core count.
        assert service.last_backend == "batched"
        assert service.consume_last_backend() == "batched"
        assert service.consume_last_backend() is None

    def test_batched_results_populate_cache(self, typical_cfg):
        service = SolverService()
        first = service.solve_many([typical_cfg], backend="batched")
        again = service.solve(typical_cfg)
        assert again is first[0]
