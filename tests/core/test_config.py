"""Tests for SystemConfig and the paper parameter setting."""

import numpy as np
import pytest

from repro.compute.devices import ClientNode, EdgeServer
from repro.core.config import PAPER_PRIVACY_WEIGHTS, SystemConfig, paper_config


class TestPaperConfig:
    def test_paper_constants(self, paper_cfg):
        assert paper_cfg.num_clients == 6
        assert paper_cfg.num_links == 18
        assert paper_cfg.server.total_frequency_hz == 20e9
        assert paper_cfg.server.total_bandwidth_hz == 10e6
        assert paper_cfg.alpha_qkd == 1.0
        assert paper_cfg.alpha_msl == 1e-2
        assert paper_cfg.alpha_t == 1e-4
        assert paper_cfg.alpha_e == 1e-4
        assert paper_cfg.tolerance == 1e-4

    def test_privacy_weights(self, paper_cfg):
        assert tuple(paper_cfg.privacy_weights) == PAPER_PRIVACY_WEIGHTS
        assert np.sum(paper_cfg.privacy_weights) == pytest.approx(1.0)

    def test_min_rates(self, paper_cfg):
        assert np.all(paper_cfg.min_rates == 0.5)

    def test_channel_gains_deterministic(self):
        a = paper_config(seed=5).channel_gains
        b = paper_config(seed=5).channel_gains
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = paper_config(seed=1).channel_gains
        b = paper_config(seed=2).channel_gains
        # Gains are ~1e-13, so compare ratios rather than absolute closeness.
        assert np.max(np.abs(a / b - 1.0)) > 0.01

    def test_array_views(self, paper_cfg):
        assert paper_cfg.max_power.shape == (6,)
        assert np.all(paper_cfg.max_power == 0.2)
        assert np.all(paper_cfg.client_max_frequency == 3e9)
        assert np.all(paper_cfg.encryption_cycles == 1e6)
        assert np.all(paper_cfg.upload_bits == 3e9)

    def test_server_cycle_demand(self, paper_cfg):
        lam = np.full(6, 2**15)
        demand = paper_cfg.server_cycle_demand(lam)
        per_sample = paper_cfg.cost_model.server_cycles_per_sample(2**15)
        assert np.allclose(demand, per_sample * 160 / 10)


class TestModifiedCopies:
    def test_with_total_bandwidth(self, paper_cfg):
        new = paper_cfg.with_total_bandwidth(5e6)
        assert new.server.total_bandwidth_hz == 5e6
        assert paper_cfg.server.total_bandwidth_hz == 10e6  # original untouched

    def test_with_total_server_frequency(self, paper_cfg):
        assert paper_cfg.with_total_server_frequency(30e9).server.total_frequency_hz == 30e9

    def test_with_max_power(self, paper_cfg):
        new = paper_cfg.with_max_power(0.5)
        assert np.all(new.max_power == 0.5)

    def test_with_client_max_frequency(self, paper_cfg):
        new = paper_cfg.with_client_max_frequency(6e9)
        assert np.all(new.client_max_frequency == 6e9)


class TestValidation:
    def test_client_count_must_match_routes(self, paper_cfg):
        with pytest.raises(ValueError, match="routes"):
            SystemConfig(
                network=paper_cfg.network,
                clients=paper_cfg.clients[:-1],
                server=EdgeServer(),
                cost_model=paper_cfg.cost_model,
                channel_gains=paper_cfg.channel_gains[:-1],
            )

    def test_gain_shape_checked(self, paper_cfg):
        with pytest.raises(ValueError, match="channel_gains"):
            SystemConfig(
                network=paper_cfg.network,
                clients=paper_cfg.clients,
                server=EdgeServer(),
                cost_model=paper_cfg.cost_model,
                channel_gains=np.ones(3),
            )

    def test_nonpositive_gain_rejected(self, paper_cfg):
        gains = paper_cfg.channel_gains.copy()
        gains[0] = 0.0
        with pytest.raises(ValueError, match="positive"):
            SystemConfig(
                network=paper_cfg.network,
                clients=paper_cfg.clients,
                server=EdgeServer(),
                cost_model=paper_cfg.cost_model,
                channel_gains=gains,
            )

    def test_negative_weight_rejected(self, paper_cfg):
        import dataclasses

        with pytest.raises(ValueError, match="non-negative"):
            dataclasses.replace(paper_cfg, alpha_t=-1.0)

    def test_custom_network_gets_uniform_weights(self):
        from repro.quantum.topology import QKDNetwork

        net = QKDNetwork.from_edge_list(
            [("KC", "A", 10.0), ("KC", "B", 12.0)], ["A", "B"], key_center="KC"
        )
        cfg = paper_config(seed=0, network=net)
        assert cfg.num_clients == 2
        assert np.allclose(cfg.privacy_weights, 0.1)
