"""Tests for Stage 2: branch-and-bound over the discrete λ (Alg. 2)."""

import itertools

import numpy as np
import pytest

from repro.core.problem import QuHEProblem
from repro.core.quhe import QuHE
from repro.core.stage2 import BranchAndBoundSolver, ExhaustiveSolver, _Stage2Objective


@pytest.fixture()
def base_alloc(paper_cfg):
    return QuHE(paper_cfg).initial_allocation()


class TestObjectiveTables:
    def test_value_matches_problem_metrics(self, paper_cfg, base_alloc):
        """F_s2 computed from the tables equals the full Problem-P1 objective."""
        objective = _Stage2Objective(paper_cfg, base_alloc)
        problem = QuHEProblem(paper_cfg)
        choices = objective.choices
        for assignment in [(0,) * 6, (2,) * 6, (0, 1, 2, 0, 1, 2)]:
            lam = np.array([choices[j] for j in assignment], dtype=float)
            alloc = base_alloc.with_updates(lam=lam, T=None)
            expected = problem.metrics(alloc).objective
            assert objective.value(assignment) == pytest.approx(expected, rel=1e-9)

    def test_upper_bound_admissible(self, paper_cfg, base_alloc):
        """The bound never underestimates the best completion of a prefix."""
        objective = _Stage2Objective(paper_cfg, base_alloc)
        m = len(objective.choices)
        for prefix in [(), (0,), (2, 1), (1, 1, 1)]:
            bound = objective.upper_bound(prefix)
            rest = 6 - len(prefix)
            best_completion = max(
                objective.value(prefix + tail)
                for tail in itertools.product(range(m), repeat=rest)
            )
            assert bound >= best_completion - 1e-9

    def test_induced_T_is_max_delay(self, paper_cfg, base_alloc):
        objective = _Stage2Objective(paper_cfg, base_alloc)
        assignment = (0, 1, 2, 0, 1, 2)
        lam = np.array([objective.choices[j] for j in assignment], dtype=float)
        problem = QuHEProblem(paper_cfg)
        delays = problem.metrics(base_alloc.with_updates(lam=lam)).per_node_delay
        assert objective.induced_T(assignment) == pytest.approx(np.max(delays))


class TestSolvers:
    def test_bnb_matches_exhaustive(self, paper_cfg, base_alloc):
        """Branch & bound returns the exhaustive argmax (ablation of Alg. 2)."""
        bb = BranchAndBoundSolver(paper_cfg).solve(base_alloc)
        ex = ExhaustiveSolver(paper_cfg).solve(base_alloc)
        assert bb.value == pytest.approx(ex.value, rel=1e-12)
        assert np.array_equal(bb.lam, ex.lam)

    def test_bnb_matches_exhaustive_high_msl_weight(self, paper_cfg, base_alloc):
        """Same check in the regime where the λ trade-off activates."""
        import dataclasses

        cfg = dataclasses.replace(paper_cfg, alpha_msl=0.1)
        bb = BranchAndBoundSolver(cfg).solve(base_alloc)
        ex = ExhaustiveSolver(cfg).solve(base_alloc)
        assert bb.value == pytest.approx(ex.value, rel=1e-12)
        assert np.array_equal(bb.lam, ex.lam)

    def test_bnb_explores_fewer_nodes(self, paper_cfg, base_alloc):
        """The point of Alg. 2: fewer explored nodes than 3^6 enumerations."""
        bb = BranchAndBoundSolver(paper_cfg).solve(base_alloc)
        ex = ExhaustiveSolver(paper_cfg).solve(base_alloc)
        assert ex.nodes_explored == 3**6
        assert bb.nodes_explored < ex.nodes_explored

    def test_lambda_in_admissible_set(self, paper_cfg, base_alloc):
        bb = BranchAndBoundSolver(paper_cfg).solve(base_alloc)
        assert all(int(v) in paper_cfg.cost_model.lambda_set for v in bb.lam)

    def test_T_satisfies_17i(self, paper_cfg, base_alloc):
        bb = BranchAndBoundSolver(paper_cfg).solve(base_alloc)
        problem = QuHEProblem(paper_cfg)
        alloc = base_alloc.with_updates(lam=bb.lam, T=bb.T)
        delays = problem.metrics(alloc).per_node_delay
        assert np.all(delays <= bb.T * (1 + 1e-9))

    def test_incumbent_history_monotone(self, paper_cfg, base_alloc):
        bb = BranchAndBoundSolver(paper_cfg).solve(base_alloc)
        h = np.asarray(bb.history)
        assert np.all(np.diff(h) >= -1e-12)

    def test_privacy_weight_ordering_of_lambda(self, paper_cfg, base_alloc):
        """When the trade is active, higher-ς clients never get smaller λ
        (their marginal security benefit is strictly larger at equal cost)."""
        import dataclasses

        # All clients are identical except ς, so λ must be ς-monotone at any
        # alpha_msl that produces a heterogeneous assignment.
        for alpha in (0.02, 0.05, 0.08):
            cfg = dataclasses.replace(paper_cfg, alpha_msl=alpha)
            result = ExhaustiveSolver(cfg).solve(base_alloc)
            weights = cfg.privacy_weights
            order = np.argsort(weights)
            lam_sorted = result.lam[order]
            # Allow ties; require non-decreasing in ς.
            assert np.all(np.diff(lam_sorted) >= 0)
