"""Tests for Problem P1: objective assembly and constraint checking."""

import numpy as np
import pytest

from repro.core.problem import QuHEProblem
from repro.core.quhe import QuHE
from repro.core.solution import Allocation
from repro.crypto.security import weighted_minimum_security
from repro.quantum.utility import qkd_utility, route_werner_parameters


@pytest.fixture()
def problem(paper_cfg):
    return QuHEProblem(paper_cfg)


@pytest.fixture()
def feasible(paper_cfg):
    return QuHE(paper_cfg).initial_allocation()


class TestMetrics:
    def test_objective_composition(self, problem, paper_cfg, feasible):
        m = problem.metrics(feasible)
        expected = (
            paper_cfg.alpha_qkd * m.u_qkd
            + paper_cfg.alpha_msl * m.u_msl
            - paper_cfg.alpha_t * m.total_delay
            - paper_cfg.alpha_e * m.total_energy
        )
        assert m.objective == pytest.approx(expected)

    def test_u_qkd_matches_eq6(self, problem, paper_cfg, feasible):
        m = problem.metrics(feasible)
        varpi = route_werner_parameters(feasible.w, paper_cfg.network.incidence)
        assert m.u_qkd == pytest.approx(qkd_utility(feasible.phi, varpi))

    def test_u_msl_matches_eq9(self, problem, paper_cfg, feasible):
        m = problem.metrics(feasible)
        assert m.u_msl == pytest.approx(
            weighted_minimum_security(feasible.lam, paper_cfg.privacy_weights)
        )

    def test_total_delay_is_max(self, problem, feasible):
        m = problem.metrics(feasible)
        assert m.total_delay == pytest.approx(np.max(m.per_node_delay))

    def test_total_energy_is_sum(self, problem, feasible):
        m = problem.metrics(feasible)
        assert m.total_energy == pytest.approx(np.sum(m.per_node_energy))

    def test_explicit_T_above_delay_is_charged(self, problem, feasible):
        loose = feasible.with_updates(T=1e9)
        m_loose = problem.metrics(loose)
        m_tight = problem.metrics(feasible)
        assert m_loose.objective < m_tight.objective

    def test_uplink_rates_positive(self, problem, feasible):
        rates = problem.uplink_rates(feasible)
        assert np.all(rates > 0)


class TestConstraints:
    def test_initial_allocation_feasible(self, problem, feasible):
        assert problem.is_feasible(feasible)

    def test_17a_rate_floor(self, problem, feasible):
        bad = feasible.with_updates(phi=feasible.phi * 0.1)
        reports = problem.check_constraints(bad)
        assert any(r.constraint == "17a" for r in reports)

    def test_17b_werner_range(self, problem, feasible):
        w = feasible.w.copy()
        w[0] = 1.2
        reports = problem.check_constraints(feasible.with_updates(w=w))
        assert any(r.constraint == "17b" for r in reports)

    def test_17c_capacity(self, problem, paper_cfg, feasible):
        # Push rates far beyond the per-link budget with w near 1.
        bad = feasible.with_updates(
            phi=np.full(paper_cfg.num_clients, 50.0),
            w=np.full(paper_cfg.num_links, 0.999),
        )
        reports = problem.check_constraints(bad)
        assert any(r.constraint == "17c" for r in reports)

    def test_17d_lambda_set(self, problem, feasible):
        bad = feasible.with_updates(lam=np.full(feasible.num_clients, 1000.0))
        reports = problem.check_constraints(bad)
        assert any(r.constraint == "17d" for r in reports)

    def test_17e_power_cap(self, problem, feasible):
        bad = feasible.with_updates(p=feasible.p * 10)
        reports = problem.check_constraints(bad)
        assert any(r.constraint == "17e" for r in reports)

    def test_17f_bandwidth_cap(self, problem, feasible):
        bad = feasible.with_updates(b=feasible.b * 2)
        reports = problem.check_constraints(bad)
        assert any(r.constraint == "17f" for r in reports)

    def test_17g_client_cpu_cap(self, problem, feasible):
        bad = feasible.with_updates(f_c=feasible.f_c * 2)
        reports = problem.check_constraints(bad)
        assert any(r.constraint == "17g" for r in reports)

    def test_17h_server_cpu_cap(self, problem, feasible):
        bad = feasible.with_updates(f_s=feasible.f_s * 2)
        reports = problem.check_constraints(bad)
        assert any(r.constraint == "17h" for r in reports)

    def test_17i_delay_bound(self, problem, feasible):
        bad = feasible.with_updates(T=1e-6)
        reports = problem.check_constraints(bad)
        assert any(r.constraint == "17i" for r in reports)

    def test_domain_positivity(self, problem, feasible):
        p = feasible.p.copy()
        p[0] = -0.1
        reports = problem.check_constraints(feasible.with_updates(p=p))
        assert any(r.constraint in ("domain",) for r in reports)

    def test_report_format(self, problem, feasible):
        bad = feasible.with_updates(p=feasible.p * 10)
        report = problem.check_constraints(bad)[0]
        text = str(report)
        assert "17e" in text and "violated" in text
