"""Campaign spec expansion, validation and (de)serialization."""

import json

import pytest

from repro.campaign import CampaignSpec, demo_spec, load_spec


def keyrate_spec(**overrides):
    kwargs = dict(
        name="t",
        scenario="sim-keyrate",
        base={"duration": 6.0},
        axes={"demand_factor": [0.0, 0.5, 0.9]},
        seeds=(10, 11),
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestExpansion:
    def test_grid_times_seeds(self):
        spec = keyrate_spec()
        assert spec.num_points == 3
        assert spec.num_cells == 6
        cells = spec.cells()
        assert [c.index for c in cells] == list(range(6))
        # grid points outer, seeds inner
        assert [c.point for c in cells] == [0, 0, 1, 1, 2, 2]
        assert [c.seed for c in cells] == [10, 11, 10, 11, 10, 11]

    def test_params_fully_bound(self):
        cell = keyrate_spec().cells()[0]
        # defaults applied (sample_dt), base applied, axis applied
        assert cell.params["duration"] == 6.0
        assert cell.params["sample_dt"] == 1.0
        assert cell.params["demand_factor"] == 0.0
        assert cell.params["seed"] == 10

    def test_two_axes_outer_product_order(self):
        spec = keyrate_spec(
            base={}, axes={"demand_factor": [0.0, 0.5], "duration": [4.0, 6.0]}
        )
        points = spec.grid_points()
        assert points == [
            {"demand_factor": 0.0, "duration": 4.0},
            {"demand_factor": 0.0, "duration": 6.0},
            {"demand_factor": 0.5, "duration": 4.0},
            {"demand_factor": 0.5, "duration": 6.0},
        ]

    def test_chunks_cover_manifest(self):
        spec = keyrate_spec(chunk_size=4)
        chunks = spec.chunks()
        assert [len(c) for c in chunks] == [4, 2]
        assert [c.index for chunk in chunks for c in chunk] == list(range(6))


class TestCellIdentity:
    def test_stable_across_expansions(self):
        assert [c.cell_id for c in keyrate_spec().cells()] == [
            c.cell_id for c in keyrate_spec().cells()
        ]

    def test_stable_across_value_spellings(self):
        """String overrides bind through the typed spec before hashing."""
        a = keyrate_spec(base={"duration": 6.0}).cells()[0]
        b = keyrate_spec(base={"duration": "6.0"}).cells()[0]
        assert a.cell_id == b.cell_id

    def test_distinct_per_seed_and_point(self):
        ids = {c.cell_id for c in keyrate_spec().cells()}
        assert len(ids) == 6

    def test_seed_suffix(self):
        assert keyrate_spec().cells()[0].cell_id.endswith("-s10")


class TestValidation:
    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            keyrate_spec(scenario="nonsense")

    def test_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            keyrate_spec(base={"bogus": 1})

    def test_seed_not_an_axis(self):
        with pytest.raises(ValueError, match="replication axis"):
            keyrate_spec(axes={"seed": [1, 2]})

    def test_base_axis_overlap(self):
        with pytest.raises(ValueError, match="both base and axes"):
            keyrate_spec(axes={"duration": [4.0, 6.0]})

    def test_duplicate_seeds(self):
        with pytest.raises(ValueError, match="duplicate"):
            keyrate_spec(seeds=(1, 1))

    def test_empty_axis(self):
        with pytest.raises(ValueError, match="no values"):
            keyrate_spec(axes={"demand_factor": []})

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            keyrate_spec(chunk_size=0)

    def test_mistyped_axis_value_rejected_at_construction(self):
        with pytest.raises(ValueError, match="demand_factor"):
            keyrate_spec(axes={"demand_factor": ["lots"]})

    def test_coercion_equal_axis_spellings_rejected(self):
        """'0.5' and 0.5 bind to the same cell identity: refuse the grid
        instead of creating two points that share one artifact directory."""
        with pytest.raises(ValueError, match="duplicate"):
            keyrate_spec(axes={"demand_factor": ["0.5", 0.5]})


class TestSerialization:
    def test_round_trip(self, tmp_path):
        spec = keyrate_spec(chunk_size=5, metrics=("total_key_bits",))
        path = spec.save(tmp_path / "spec.json")
        restored = load_spec(path)
        assert restored == spec

    def test_seed_count_form(self):
        spec = CampaignSpec.from_dict({
            "name": "c", "scenario": "sim-keyrate",
            "seeds": 4, "seed_base": 100,
        })
        assert spec.seeds == (100, 101, 102, 103)

    def test_seed_base_with_explicit_list_rejected(self):
        with pytest.raises(ValueError, match="seed_base"):
            CampaignSpec.from_dict({
                "name": "c", "scenario": "sim-keyrate",
                "seeds": [1, 2], "seed_base": 5,
            })

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign spec field"):
            CampaignSpec.from_dict({
                "name": "c", "scenario": "sim-keyrate", "cells": 5,
            })

    def test_load_from_mapping_or_file(self, tmp_path):
        data = keyrate_spec().to_dict()
        from_map = load_spec(data)
        path = tmp_path / "s.json"
        path.write_text(json.dumps(data))
        assert load_spec(path) == from_map


class TestDemoSpec:
    def test_demo_is_small_and_valid(self):
        spec = demo_spec()
        assert spec.scenario == "sim-keyrate"
        assert spec.num_cells <= 8
        assert spec.cells()  # expands cleanly
