"""The ``repro campaign run|status|resume|report`` CLI family."""

import json

import pytest

from repro.campaign import CampaignRunner, CampaignSpec
from repro.cli import main


@pytest.fixture(scope="module")
def spec_path(tmp_path_factory):
    spec = CampaignSpec(
        name="cli-t",
        scenario="sim-keyrate",
        base={"duration": 4.0},
        seeds=(2, 3),
    )
    path = tmp_path_factory.mktemp("cli") / "spec.json"
    spec.save(path)
    return path


class TestRunVerb:
    def test_run_spec_with_dir(self, spec_path, tmp_path, capsys):
        out_dir = tmp_path / "c"
        assert main(["campaign", "run", str(spec_path),
                     "--dir", str(out_dir)]) == 0
        assert "cli-t" in capsys.readouterr().out
        assert (out_dir / "campaign.json").exists()
        assert (out_dir / "aggregate.json").exists()

    def test_run_json_payload(self, spec_path, tmp_path, capsys):
        assert main(["campaign", "run", str(spec_path),
                     "--dir", str(tmp_path / "c"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "campaign_result"
        assert payload["cells_completed"] == 2

    def test_bare_campaign_runs_demo(self, capsys):
        assert main(["campaign"]) == 0
        assert "demo" in capsys.readouterr().out

    def test_run_via_registry_umbrella(self, spec_path, capsys):
        """`repro run campaign --set spec=...` works like any scenario."""
        assert main(["run", "campaign", "--set", f"spec={spec_path}",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "campaign_result"
        assert payload["name"] == "cli-t"


class TestStatusResumeReport:
    @pytest.fixture()
    def partial_dir(self, spec_path, tmp_path):
        spec = CampaignSpec.from_dict(json.loads(spec_path.read_text()))
        out_dir = tmp_path / "partial"
        CampaignRunner(spec, out_dir=out_dir).run(max_cells=1)
        return out_dir

    def test_status(self, partial_dir, capsys):
        assert main(["campaign", "status", str(partial_dir)]) == 0
        out = capsys.readouterr().out
        assert "1/2 cells complete" in out
        assert "pending" in out

    def test_resume_completes(self, partial_dir, capsys):
        assert main(["campaign", "resume", str(partial_dir)]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", str(partial_dir)]) == 0
        assert "2/2 cells complete" in capsys.readouterr().out

    def test_report_writes_markdown(self, partial_dir, tmp_path, capsys):
        report = tmp_path / "out" / "report.md"
        assert main(["campaign", "report", str(partial_dir),
                     "--output", str(report)]) == 0
        assert report.exists()
        text = report.read_text()
        assert text.startswith("# Campaign report: cli-t")
        assert "95% CI" in text
        assert "incomplete" in text  # partial campaign flagged

    def test_report_output_and_json_compose(self, partial_dir, tmp_path, capsys):
        """--output writes the file AND --json still prints the payload
        (the file notice goes to stderr so stdout stays pipeable)."""
        report = tmp_path / "report.md"
        assert main(["campaign", "report", str(partial_dir),
                     "--output", str(report), "--json"]) == 0
        captured = capsys.readouterr()
        assert report.exists()
        payload = json.loads(captured.out)
        assert payload["kind"] == "campaign_result"
        assert "written to" in captured.err

    def test_report_json(self, partial_dir, capsys):
        assert main(["campaign", "report", str(partial_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "campaign_result"
        assert payload["cells_completed"] == 1
        assert payload["cells_total"] == 2
