"""Seeded property sweep: the batched≡scalar contract on campaign cells,
and kill/resume byte-identity at randomized kill points.

Hand-rolled property testing (no hypothesis in the toolchain): a seeded
``default_rng`` draws (topology, batch size, warm-start, backend) tuples
and random kill points; failures print the draw so they replay exactly.
"""

import dataclasses

import numpy as np
import pytest

from repro.api.service import SolverService
from repro.campaign import CampaignRunner, CampaignSpec
from repro.campaign.runner import AGGREGATE_FILENAME
from repro.core.config import paper_config
from repro.core.quhe import QuHE
from repro.quantum.topology import QKDNetwork

OBJECTIVE_TOL = 1e-9


def small_network(num_clients: int) -> QKDNetwork:
    if num_clients == 1:
        edges = [("KC", "A", 8.0)]
        clients = ["A"]
    else:
        edges = [("KC", "A", 8.0), ("KC", "B", 10.0), ("B", "C", 7.0)]
        clients = ["A", "B", "C"]
    return QKDNetwork.from_edge_list(edges, clients, key_center="KC")


def draw_config(rng: np.random.Generator):
    seed = int(rng.integers(0, 50))
    topology = rng.choice(["paper", "small3", "small1"])
    if topology == "paper":
        cfg = paper_config(seed=seed)
    else:
        cfg = paper_config(
            seed=seed, network=small_network(3 if topology == "small3" else 1)
        )
    if rng.random() < 0.5:
        cfg = cfg.with_total_bandwidth(float(rng.uniform(0.5e7, 1.5e7)))
    if rng.random() < 0.3:
        cfg = dataclasses.replace(cfg, alpha_msl=float(rng.uniform(0.05, 0.3)))
    return cfg


class TestBatchedScalarContractOnCells:
    """Random draws of the PR-4 equivalence property, campaign-shaped:
    the canonical-batch prefetch may hand any cell a batched result, so
    batched must agree with scalar for arbitrary (topology, K, warm-start)
    combinations."""

    @pytest.mark.parametrize("draw", range(4))
    def test_random_draw_batched_equals_scalar(self, draw):
        rng = np.random.default_rng(1000 + draw)
        k = int(rng.integers(1, 5))
        configs = [draw_config(rng) for _ in range(k)]
        warm = bool(rng.random() < 0.5)
        context = f"draw={draw} K={k} warm={warm}"

        service = SolverService()
        initials = None
        if warm:
            initials = [
                QuHE(cfg).solve().allocation.with_updates(T=None)
                for cfg in configs
            ]
        batched = service.solve_many(
            configs, backend="batched", initials=initials
        )
        assert service.last_backend == "batched", context
        serial = service.solve_many(
            configs, backend="serial", initials=initials, use_cache=False
        )
        for i, (b, s) in enumerate(zip(batched, serial)):
            assert abs(b.objective - s.objective) <= OBJECTIVE_TOL, (
                f"{context} config={i}: objective diverged "
                f"{b.objective!r} vs {s.objective!r}"
            )
            assert np.array_equal(b.allocation.lam, s.allocation.lam), (
                f"{context} config={i}: lambda diverged"
            )


class TestRandomizedKillResume:
    """Kill a campaign at a random cell count, resume it, and demand the
    aggregate artifact match an uninterrupted run byte for byte."""

    @pytest.fixture(scope="class")
    def spec(self):
        return CampaignSpec(
            name="kill-prop",
            scenario="sim-keyrate",
            base={"duration": 4.0},
            axes={"demand_factor": [0.0, 0.7]},
            seeds=(2, 3, 5),
        )

    @pytest.fixture(scope="class")
    def reference_bytes(self, spec, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("kill") / "reference"
        CampaignRunner(spec, out_dir=out_dir).run()
        return (out_dir / AGGREGATE_FILENAME).read_bytes()

    @pytest.mark.parametrize("draw", range(3))
    def test_random_kill_point(self, draw, spec, reference_bytes, tmp_path):
        rng = np.random.default_rng(2000 + draw)
        kill_at = int(rng.integers(1, spec.num_cells))  # 1..5 of 6 cells
        out_dir = tmp_path / f"killed-{kill_at}"
        partial = CampaignRunner(spec, out_dir=out_dir).run(max_cells=kill_at)
        assert partial.cells_completed == kill_at, f"draw={draw}"

        resumed = CampaignRunner(spec, out_dir=out_dir).run()
        assert resumed.complete, f"draw={draw} kill_at={kill_at}"
        assert (out_dir / AGGREGATE_FILENAME).read_bytes() == reference_bytes, (
            f"draw={draw} kill_at={kill_at}: resumed aggregate differs from "
            "the uninterrupted run"
        )

    def test_kill_exactly_at_chunk_boundary(self, spec, tmp_path):
        """Killing exactly at a chunk boundary must also resume cleanly.

        Byte-identity is guaranteed against an uninterrupted run of the
        *same* spec (chunk size is part of the canonical-batch layout), so
        the reference here uses chunk_size=2 as well.
        """
        boundary_spec = dataclasses.replace(spec, chunk_size=2)
        reference_dir = tmp_path / "boundary-reference"
        CampaignRunner(boundary_spec, out_dir=reference_dir).run()
        out_dir = tmp_path / "boundary"
        CampaignRunner(boundary_spec, out_dir=out_dir).run(max_cells=2)
        resumed = CampaignRunner(boundary_spec, out_dir=out_dir).run()
        assert resumed.complete
        assert (out_dir / AGGREGATE_FILENAME).read_bytes() == (
            reference_dir / AGGREGATE_FILENAME
        ).read_bytes()
