"""Campaign runner: persistence, resume, aggregation, byte-identity."""

import json
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    campaign_report,
    campaign_status,
    resume_campaign,
    run_campaign,
)
from repro.campaign.runner import AGGREGATE_FILENAME, MANIFEST_FILENAME
from repro.io import result_from_dict, result_to_dict


@pytest.fixture(scope="module")
def spec():
    return CampaignSpec(
        name="runner-t",
        scenario="sim-keyrate",
        base={"duration": 5.0},
        axes={"demand_factor": [0.0, 0.6]},
        seeds=(2, 3),
    )


@pytest.fixture(scope="module")
def completed_dir(spec, tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("campaign") / "full"
    CampaignRunner(spec, out_dir=out_dir).run()
    return out_dir


class TestArtifacts:
    def test_layout(self, spec, completed_dir):
        assert (completed_dir / MANIFEST_FILENAME).exists()
        assert (completed_dir / AGGREGATE_FILENAME).exists()
        for cell in spec.cells():
            cell_dir = completed_dir / "cells" / cell.cell_id
            assert (cell_dir / "record.json").exists()
            assert (cell_dir / "result.json").exists()

    def test_manifest_contents(self, spec, completed_dir):
        manifest = json.loads((completed_dir / MANIFEST_FILENAME).read_text())
        assert manifest["kind"] == "campaign_manifest"
        assert manifest["spec"]["name"] == spec.name
        assert [c["id"] for c in manifest["cells"]] == [
            c.cell_id for c in spec.cells()
        ]

    def test_cell_records_carry_params_and_seed(self, spec, completed_dir):
        cell = spec.cells()[0]
        record = json.loads(
            (completed_dir / "cells" / cell.cell_id / "record.json").read_text()
        )
        assert record["scenario"] == "sim-keyrate"
        assert record["params"] == cell.params
        assert record["seed"] == cell.seed
        assert record["result"]["kind"] == "simulation_result"

    def test_aggregate_is_a_campaign_result_payload(self, completed_dir):
        payload = json.loads((completed_dir / AGGREGATE_FILENAME).read_text())
        assert payload["kind"] == "campaign_result"
        restored = result_from_dict(payload)
        assert restored.complete
        assert result_to_dict(restored) == payload

    def test_mixing_campaigns_in_one_dir_rejected(self, spec, completed_dir):
        other = CampaignSpec(
            name="other", scenario="sim-keyrate", seeds=(2,),
            base={"duration": 4.0},
        )
        with pytest.raises(ValueError, match="different campaign"):
            CampaignRunner(other, out_dir=completed_dir).run()


class TestAggregation:
    def test_grid_and_replication_counts(self, spec, completed_dir):
        result = campaign_report(completed_dir)
        assert result.cells_total == result.cells_completed == 4
        assert len(result.points) == 2
        for point in result.points:
            for stats in point.metrics.values():
                assert stats["count"] == 2

    def test_means_match_cell_metrics(self, spec, completed_dir):
        """The streamed mean equals the plain average of the cell values."""
        from repro.api.artifacts import RunRecord
        from repro.campaign.metrics import scalar_metrics

        result = campaign_report(completed_dir)
        cells = spec.cells()
        point0 = [c for c in cells if c.point == 0]
        values = [
            scalar_metrics(
                RunRecord.load(completed_dir / "cells" / c.cell_id).result
            )["total_key_bits"]
            for c in point0
        ]
        expected = sum(values) / len(values)
        assert result.points[0].metrics["total_key_bits"]["mean"] == pytest.approx(
            expected, rel=1e-12
        )

    def test_wall_clock_metrics_excluded(self, completed_dir):
        result = campaign_report(completed_dir)
        for name in result.metric_names:
            assert "wall" not in name and "runtime" not in name

    def test_metric_filter(self, tmp_path):
        spec = CampaignSpec(
            name="filtered", scenario="sim-keyrate", seeds=(2,),
            base={"duration": 4.0}, metrics=("total_key_bits",),
        )
        result = CampaignRunner(spec, out_dir=tmp_path / "f").run()
        assert result.metric_names == ["total_key_bits"]

    def test_metric_filter_typo_fails_loudly(self, tmp_path):
        """A filter matching nothing must raise (naming what exists), not
        emit a metric-less aggregate after all the cell compute."""
        spec = CampaignSpec(
            name="typo", scenario="sim-keyrate", seeds=(2,),
            base={"duration": 4.0}, metrics=("total_keybits",),
        )
        with pytest.raises(ValueError, match="total_key_bits"):
            CampaignRunner(spec, out_dir=tmp_path / "t").run()

    def test_band_accessors(self, completed_dir):
        point = campaign_report(completed_dir).points[0]
        lo, hi = point.band("total_key_bits")
        mean = point.mean("total_key_bits")
        assert lo <= mean <= hi
        assert hi - mean == pytest.approx(point.ci95("total_key_bits"))


class TestResume:
    def test_kill_and_resume_byte_identical(self, spec, completed_dir, tmp_path):
        """The ISSUE-5 acceptance property at test scale: a campaign killed
        mid-flight and resumed must write the same aggregate bytes as an
        uninterrupted run."""
        killed = tmp_path / "killed"
        partial = CampaignRunner(spec, out_dir=killed).run(max_cells=2)
        assert partial.cells_completed == 2
        assert not partial.complete

        status = campaign_status(killed)
        assert status.cells_completed == 2
        assert len(status.pending_cell_ids) == 2

        resumed = resume_campaign(killed)
        assert resumed.complete
        assert (killed / AGGREGATE_FILENAME).read_bytes() == (
            completed_dir / AGGREGATE_FILENAME
        ).read_bytes()

    def test_resume_skips_completed_cells(self, spec, completed_dir):
        """Re-running a complete campaign must not re-execute any cell."""
        before = {
            p: p.stat().st_mtime_ns
            for p in (completed_dir / "cells").rglob("record.json")
        }
        result = CampaignRunner(spec, out_dir=completed_dir).run()
        assert result.complete
        after = {
            p: p.stat().st_mtime_ns
            for p in (completed_dir / "cells").rglob("record.json")
        }
        assert before == after

    def test_corrupt_cell_artifact_reruns(self, spec, tmp_path):
        out_dir = tmp_path / "corrupt"
        CampaignRunner(spec, out_dir=out_dir).run()
        victim = spec.cells()[1]
        record = out_dir / "cells" / victim.cell_id / "record.json"
        record.write_text('{"kind": "run_record", "truncated')  # killed mid-write
        runner = CampaignRunner(spec, out_dir=out_dir)
        status = runner.status()
        assert status.pending_cell_ids == [victim.cell_id]
        result = runner.run()
        assert result.complete
        assert json.loads(record.read_text())["scenario"] == "sim-keyrate"

    def test_fresh_reexecutes_everything(self, spec, tmp_path):
        out_dir = tmp_path / "fresh"
        CampaignRunner(spec, out_dir=out_dir).run()
        before = {
            p: p.stat().st_mtime_ns
            for p in (out_dir / "cells").rglob("record.json")
        }
        CampaignRunner(spec, out_dir=out_dir).run(resume=False)
        after = {
            p: p.stat().st_mtime_ns
            for p in (out_dir / "cells").rglob("record.json")
        }
        assert set(before) == set(after)
        assert all(after[p] > before[p] for p in before)


class TestInMemory:
    def test_run_without_out_dir(self):
        spec = CampaignSpec(
            name="mem", scenario="sim-keyrate", seeds=(2,),
            base={"duration": 4.0},
        )
        result = run_campaign(spec)
        assert result.complete
        assert result.cells_total == 1

    def test_progress_callback_counts_cells(self, tmp_path):
        spec = CampaignSpec(
            name="prog", scenario="sim-keyrate", seeds=(2, 3),
            base={"duration": 4.0},
        )
        ticks = []
        run_campaign(spec, out_dir=tmp_path / "p",
                     progress=lambda done, total: ticks.append((done, total)))
        assert ticks == [(1, 2), (2, 2)]
        # resuming ticks through loaded cells too
        ticks.clear()
        run_campaign(spec, out_dir=tmp_path / "p",
                     progress=lambda done, total: ticks.append((done, total)))
        assert ticks == [(1, 2), (2, 2)]


class TestDirectoryHelpers:
    def test_status_on_non_campaign_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not a campaign"):
            campaign_status(tmp_path)

    def test_render_status(self, completed_dir):
        text = campaign_status(completed_dir).render()
        assert "4/4" in text and "complete" in text

    def test_render_result(self, completed_dir):
        text = campaign_report(completed_dir).render()
        assert "total_key_bits" in text
        assert "ci95" in text
