"""Streaming statistics: Welford moments, P² sketches, CI widths."""

import math

import numpy as np
import pytest

from repro.utils.stats import (
    P2Quantile,
    StreamingMoments,
    StreamingStats,
    ci95_half_width,
)


class TestWelford:
    @pytest.mark.parametrize("n", [1, 2, 5, 100])
    def test_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        values = rng.normal(loc=3.0, scale=2.0, size=n)
        m = StreamingMoments()
        for v in values:
            m.push(float(v))
        assert m.count == n
        assert m.mean == pytest.approx(values.mean(), rel=1e-12)
        if n >= 2:
            assert m.variance == pytest.approx(values.var(ddof=1), rel=1e-12)
        else:
            assert m.variance == 0.0
        assert m.minimum == values.min()
        assert m.maximum == values.max()

    def test_catastrophic_cancellation_resistant(self):
        """The textbook sum-of-squares formula fails here; Welford must not."""
        offset = 1e9
        values = [offset + v for v in (4.0, 7.0, 13.0, 16.0)]
        m = StreamingMoments()
        for v in values:
            m.push(v)
        assert m.variance == pytest.approx(30.0, rel=1e-6)

    def test_deterministic_fold(self):
        """Same values, same order -> bit-identical summary (resume contract)."""
        values = [0.1 * i for i in range(17)]
        a, b = StreamingStats(), StreamingStats()
        for v in values:
            a.push(v)
            b.push(v)
        assert a.summary() == b.summary()


class TestP2Quantile:
    def test_exact_below_five_samples(self):
        sketch = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            sketch.push(v)
        assert sketch.value == 3.0

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError, match="quantile"):
            P2Quantile(1.5)

    @pytest.mark.parametrize("p", [0.05, 0.5, 0.95])
    def test_tracks_numpy_quantile_on_normal_stream(self, p):
        rng = np.random.default_rng(7)
        values = rng.normal(size=2000)
        sketch = P2Quantile(p)
        for v in values:
            sketch.push(float(v))
        exact = float(np.quantile(values, p))
        # P² is an O(1)-memory estimate; a loose absolute band suffices to
        # catch marker-update bugs (which produce wildly wrong values).
        assert sketch.value == pytest.approx(exact, abs=0.15)

    def test_exactly_five_samples_stays_exact_per_quantile(self):
        """Regression: at n=5 the markers are untouched and h[2] is the
        median whatever p is — p05/p50/p95 must not all collapse to it
        (the 5-replication campaign case)."""
        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        estimates = {}
        for p in (0.05, 0.5, 0.95):
            sketch = P2Quantile(p)
            for v in values:
                sketch.push(v)
            estimates[p] = sketch.value
            assert sketch.value == pytest.approx(
                float(np.quantile(values, p)), rel=1e-12
            )
        assert estimates[0.05] < estimates[0.5] < estimates[0.95]

    def test_median_of_uniform_grid(self):
        sketch = P2Quantile(0.5)
        for v in range(1, 101):
            sketch.push(float(v))
        assert sketch.value == pytest.approx(50.5, abs=1.5)


class TestCI95:
    def test_zero_below_two_samples(self):
        assert ci95_half_width(0, 0.0) == 0.0
        assert ci95_half_width(1, 5.0) == 0.0

    def test_matches_scipy_t(self):
        from scipy.stats import t

        expected = t.ppf(0.975, 7) * 2.0 / math.sqrt(8)
        assert ci95_half_width(8, 2.0) == pytest.approx(expected, rel=1e-12)

    def test_shrinks_with_replications(self):
        assert ci95_half_width(64, 1.0) < ci95_half_width(8, 1.0)


class TestSummary:
    def test_summary_keys_are_the_codec_schema(self):
        from repro.campaign.result import STAT_KEYS

        stats = StreamingStats()
        for v in (1.0, 2.0, 3.0):
            stats.push(v)
        assert tuple(stats.summary()) == STAT_KEYS
