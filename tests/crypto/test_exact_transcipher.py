"""Tests for the exact (BFV) transciphering path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.bfv import BFVContext
from repro.crypto.exact_transcipher import (
    ExactTranscipherEngine,
    derive_integer_key,
    expand_integer_matrix,
)


@pytest.fixture(scope="module")
def context():
    return BFVContext(ring_degree=32, plaintext_modulus=257, seed=31)


@pytest.fixture(scope="module")
def engine(context):
    return ExactTranscipherEngine(context, key_length=4)


KEY_BYTES = bytes(range(32))


class TestKeyDerivation:
    def test_deterministic_and_in_range(self):
        key = derive_integer_key(KEY_BYTES, 4, 257)
        assert key == derive_integer_key(KEY_BYTES, 4, 257)
        assert all(0 <= k < 257 for k in key)

    def test_insufficient_bytes(self):
        with pytest.raises(ValueError):
            derive_integer_key(bytes(4), 4, 257)


class TestMatrixExpansion:
    def test_shape_and_range(self):
        m = expand_integer_matrix(b"\x24" * 32, 0, 16, 4, 257)
        assert m.shape == (16, 4)
        assert np.all((0 <= m) & (m < 257))

    def test_nonce_separation(self):
        a = expand_integer_matrix(b"\x24" * 32, 0, 8, 4, 257)
        b = expand_integer_matrix(b"\x24" * 32, 1, 8, 4, 257)
        assert not np.array_equal(a, b)


class TestExactPipeline:
    def test_transcipher_is_bit_exact(self, context, engine):
        key = derive_integer_key(KEY_BYTES, engine.key_length, context.t)
        values = [(7 * i) % 257 for i in range(engine.block_size)]
        block = engine.client_encrypt_block(key, values, nonce_index=0)
        enc = engine.server_transcipher(block, engine.client_encrypt_key(key))
        assert context.decrypt(enc) == values  # no tolerance: exact

    def test_mask_hides_values(self, engine, context):
        key = derive_integer_key(KEY_BYTES, engine.key_length, context.t)
        values = [1] * engine.block_size
        block = engine.client_encrypt_block(key, values, nonce_index=1)
        assert block.masked != values

    def test_compute_after_transcipher(self, context, engine):
        """The server adds an encrypted constant after unmasking — exactly."""
        key = derive_integer_key(KEY_BYTES, engine.key_length, context.t)
        values = [5] * engine.block_size
        block = engine.client_encrypt_block(key, values, nonce_index=2)
        enc = engine.server_transcipher(block, engine.client_encrypt_key(key))
        shifted = context.add_plain(enc, [100] * engine.block_size)
        assert context.decrypt(shifted) == [105] * engine.block_size

    def test_wrong_key_fails_exactly(self, context, engine):
        # Note: structured byte patterns are degenerate mod 257 (256 ≡ -1
        # makes any repeated or arithmetic pattern collapse to one residue),
        # so draw two unrelated random key strings.
        rng = np.random.default_rng(99)
        key = derive_integer_key(rng.bytes(32), engine.key_length, context.t)
        wrong = derive_integer_key(rng.bytes(32), engine.key_length, context.t)
        assert key != wrong
        values = [9] * engine.block_size
        block = engine.client_encrypt_block(key, values, nonce_index=0)
        enc = engine.server_transcipher(block, engine.client_encrypt_key(wrong))
        assert context.decrypt(enc) != values

    def test_key_ciphertext_count_checked(self, engine, context):
        key = derive_integer_key(KEY_BYTES, engine.key_length, context.t)
        block = engine.client_encrypt_block(key, [1], 0)
        with pytest.raises(ValueError, match="key ciphertexts"):
            engine.server_transcipher(block, engine.client_encrypt_key(key)[:-1])

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=256), min_size=1, max_size=32),
           st.integers(min_value=0, max_value=1000))
    def test_roundtrip_random_blocks(self, values, nonce):
        context = BFVContext(ring_degree=32, plaintext_modulus=257, seed=33)
        engine = ExactTranscipherEngine(context, key_length=4)
        key = derive_integer_key(KEY_BYTES, 4, context.t)
        block = engine.client_encrypt_block(key, values, nonce_index=nonce)
        enc = engine.server_transcipher(block, engine.client_encrypt_key(key))
        expected = [v % 257 for v in values] + [0] * (32 - len(values))
        assert context.decrypt(enc) == expected
