"""Tests for the CKKS canonical-embedding encoder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.encoding import CKKSEncoder


@pytest.fixture(scope="module")
def encoder():
    return CKKSEncoder(ring_degree=32, scale=2**22)


class TestRoundtrip:
    def test_real_vector(self, encoder):
        values = np.linspace(-2.0, 2.0, encoder.num_slots)
        decoded = encoder.decode(encoder.encode(values))
        assert np.allclose(decoded.real, values, atol=1e-4)
        assert np.allclose(decoded.imag, 0.0, atol=1e-4)

    def test_complex_vector(self, encoder):
        rng = np.random.default_rng(1)
        values = rng.normal(size=encoder.num_slots) + 1j * rng.normal(size=encoder.num_slots)
        decoded = encoder.decode(encoder.encode(values))
        assert np.allclose(decoded, values, atol=1e-4)

    def test_short_input_zero_padded(self, encoder):
        decoded = encoder.decode(encoder.encode([1.0, 2.0]))
        assert decoded[0].real == pytest.approx(1.0, abs=1e-4)
        assert decoded[1].real == pytest.approx(2.0, abs=1e-4)
        assert np.allclose(decoded[2:], 0.0, atol=1e-4)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=16))
    def test_roundtrip_random(self, values):
        encoder = CKKSEncoder(ring_degree=32, scale=2**22)
        decoded = encoder.decode(encoder.encode(values))
        assert np.allclose(decoded.real[: len(values)], values, atol=1e-3)


class TestHomomorphicStructure:
    def test_encoding_is_additive(self, encoder):
        a = np.full(encoder.num_slots, 1.25)
        b = np.full(encoder.num_slots, -0.5)
        sum_coeffs = [x + y for x, y in zip(encoder.encode(a), encoder.encode(b))]
        decoded = encoder.decode(sum_coeffs)
        assert np.allclose(decoded.real, 0.75, atol=1e-4)

    def test_integer_coefficients(self, encoder):
        coeffs = encoder.encode([1.0, 2.0, 3.0])
        assert all(isinstance(c, int) for c in coeffs)


class TestValidation:
    def test_too_many_slots_rejected(self, encoder):
        with pytest.raises(ValueError, match="slots"):
            encoder.encode(np.ones(encoder.num_slots + 1))

    def test_wrong_coefficient_count_rejected(self, encoder):
        with pytest.raises(ValueError, match="coefficients"):
            encoder.decode([0] * 7)

    def test_bad_degree_rejected(self):
        with pytest.raises(ValueError):
            CKKSEncoder(ring_degree=24, scale=2**10)

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            CKKSEncoder(ring_degree=32, scale=0.5)

    def test_matrix_input_rejected(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode(np.ones((2, 2)))
