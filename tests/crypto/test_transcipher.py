"""Tests for the transciphering engine (server-side homomorphic unmasking)."""

import numpy as np
import pytest

from repro.crypto.ckks import CKKSContext
from repro.crypto.transcipher import (
    TranscipherEngine,
    derive_key_vector,
    expand_public_matrix,
)


@pytest.fixture(scope="module")
def context():
    return CKKSContext(ring_degree=32, scale_bits=22, base_modulus_bits=30, depth=2, seed=9)


@pytest.fixture(scope="module")
def engine(context):
    return TranscipherEngine(context, key_length=4)


class TestKeyDerivation:
    def test_deterministic(self):
        key = bytes(range(16))
        assert np.array_equal(derive_key_vector(key, 4), derive_key_vector(key, 4))

    def test_values_in_unit_interval(self):
        vec = derive_key_vector(bytes(range(32)), 8)
        assert np.all(vec >= -1.0) and np.all(vec < 1.0)

    def test_insufficient_bytes_rejected(self):
        with pytest.raises(ValueError, match="key bytes"):
            derive_key_vector(bytes(4), 4)

    def test_different_keys_differ(self):
        a = derive_key_vector(b"\x01" * 16, 4)
        b = derive_key_vector(b"\x02" * 16, 4)
        assert not np.allclose(a, b)


class TestPublicExpansion:
    def test_shape(self):
        m = expand_public_matrix(b"\x42" * 32, 0, rows=16, cols=4)
        assert m.shape == (16, 4)

    def test_nonce_separates_blocks(self):
        a = expand_public_matrix(b"\x42" * 32, 0, 8, 4)
        b = expand_public_matrix(b"\x42" * 32, 1, 8, 4)
        assert not np.allclose(a, b)

    def test_seed_must_be_32_bytes(self):
        with pytest.raises(ValueError):
            expand_public_matrix(b"short", 0, 8, 4)

    def test_deterministic_public_randomness(self):
        a = expand_public_matrix(b"\x11" * 32, 5, 8, 4)
        b = expand_public_matrix(b"\x11" * 32, 5, 8, 4)
        assert np.array_equal(a, b)


class TestClientSide:
    def test_mask_hides_plaintext(self, engine):
        key = derive_key_vector(bytes(range(16)), engine.key_length)
        values = np.ones(engine.block_size)
        block = engine.client_encrypt_block(key, values, nonce_index=0)
        assert not np.allclose(block.masked, values, atol=1e-3)

    def test_mask_removable_with_keystream(self, engine):
        key = derive_key_vector(bytes(range(16)), engine.key_length)
        values = np.linspace(-1, 1, engine.block_size)
        block = engine.client_encrypt_block(key, values, nonce_index=3)
        recovered = block.masked - engine.keystream(key, 3)
        assert np.allclose(recovered, values, atol=1e-12)

    def test_oversized_block_rejected(self, engine):
        key = derive_key_vector(bytes(range(16)), engine.key_length)
        with pytest.raises(ValueError, match="block"):
            engine.client_encrypt_block(key, np.ones(engine.block_size + 1), 0)

    def test_encrypted_key_count(self, engine):
        key = derive_key_vector(bytes(range(16)), engine.key_length)
        assert len(engine.client_encrypt_key(key)) == engine.key_length


class TestServerSide:
    def test_transcipher_recovers_plaintext_homomorphically(self, context, engine):
        key = derive_key_vector(bytes(range(16)), engine.key_length)
        values = np.linspace(-0.8, 0.9, engine.block_size)
        block = engine.client_encrypt_block(key, values, nonce_index=1)
        enc_key = engine.client_encrypt_key(key)
        enc_data = engine.server_transcipher(block, enc_key)
        decrypted = context.decrypt(enc_data)
        assert np.allclose(decrypted.real, values, atol=5e-3)

    def test_transcipher_then_compute(self, context, engine):
        # The server computes on the transciphered data (one plain multiply).
        key = derive_key_vector(bytes(range(16)), engine.key_length)
        values = np.full(engine.block_size, 0.5)
        block = engine.client_encrypt_block(key, values, nonce_index=2)
        enc = engine.server_transcipher(block, engine.client_encrypt_key(key))
        scaled = context.multiply_plain(enc, np.full(engine.block_size, 2.0))
        assert np.allclose(context.decrypt(scaled).real, 1.0, atol=1e-2)

    def test_wrong_key_count_rejected(self, engine):
        key = derive_key_vector(bytes(range(16)), engine.key_length)
        block = engine.client_encrypt_block(key, np.ones(4), 0)
        with pytest.raises(ValueError, match="key ciphertexts"):
            engine.server_transcipher(block, engine.client_encrypt_key(key)[:-1])

    def test_wrong_key_does_not_recover(self, context, engine):
        key = derive_key_vector(b"\x01" * 16, engine.key_length)
        wrong = derive_key_vector(b"\x02" * 16, engine.key_length)
        values = np.full(engine.block_size, 0.7)
        block = engine.client_encrypt_block(key, values, nonce_index=0)
        enc = engine.server_transcipher(block, engine.client_encrypt_key(wrong))
        assert not np.allclose(context.decrypt(enc).real, values, atol=1e-2)
