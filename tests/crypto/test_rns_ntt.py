"""Property tests: the RNS/NTT backend is bit-for-bit equal to the reference ring.

Three layers of evidence:

1. **NTT layer** — the transform is an exact bijection and its negacyclic
   product matches schoolbook convolution, for small and 62-bit primes.
2. **Ring layer** — every :class:`RNSPolyRing` operation (add/sub/neg/
   scalar/mul/centered/rescale/change_modulus/norm, plus the random
   samplers) returns exactly what the big-int :class:`PolyRing` returns on
   the same inputs, across several (degree, prime-chain) shapes.
3. **Scheme layer** — whole CKKS and BFV pipelines (encrypt → multiply →
   rescale/relinearise → decrypt) produce bit-identical ciphertexts and
   decryptions under both backends from the same seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.bfv import BFVContext
from repro.crypto.ckks import CKKSContext
from repro.crypto.ntt import (
    NTTContext,
    find_ntt_primes,
    find_prime_chain,
    get_ntt_context,
    is_ntt_friendly,
    is_prime,
)
from repro.crypto.poly import PolyRing
from repro.crypto.rns import RNSPolyRing, get_ring


@pytest.fixture(autouse=True)
def _unforced_backend(monkeypatch):
    """These tests exercise both backends explicitly — neutralize the
    QUHE_CRYPTO_BACKEND override so they stay deterministic under it."""
    monkeypatch.delenv("QUHE_CRYPTO_BACKEND", raising=False)


def schoolbook_negacyclic(a, b, n, q):
    out = [0] * n
    for i, x in enumerate(a):
        for j, y in enumerate(b):
            k = i + j
            if k < n:
                out[k] = (out[k] + x * y) % q
            else:
                out[k - n] = (out[k - n] - x * y) % q
    return out


# -- shared shapes: (degree, prime chain) covering small/large primes ---------

CHAIN_SHAPES = [
    (8, find_ntt_primes(14, 8, 2)),
    (32, find_ntt_primes(22, 32, 3)),
    (64, find_ntt_primes(58, 64, 2)),
    (16, find_ntt_primes(30, 16, 1) + find_ntt_primes(61, 16, 1)),
]


def ring_pair(degree, primes):
    q = 1
    for p in primes:
        q *= p
    return PolyRing(degree, q), RNSPolyRing(degree, primes)


class TestPrimeSearch:
    def test_miller_rabin_agrees_with_small_primes(self):
        sieve = [True] * 2000
        sieve[0] = sieve[1] = False
        for i in range(2, 45):
            if sieve[i]:
                for j in range(i * i, 2000, i):
                    sieve[j] = False
        for n in range(2000):
            assert is_prime(n) == sieve[n]

    @pytest.mark.parametrize("degree,bits", [(8, 14), (64, 22), (1024, 40), (4096, 55)])
    def test_found_primes_are_ntt_friendly(self, degree, bits):
        primes = find_ntt_primes(bits, degree, 3)
        assert len(set(primes)) == 3
        for p in primes:
            assert is_ntt_friendly(p, degree)
            assert p % (2 * degree) == 1
            # Near the target: within a factor of two.
            assert (1 << (bits - 1)) < p < (1 << (bits + 1))

    def test_exclusion_respected(self):
        first = find_ntt_primes(22, 32, 2)
        more = find_ntt_primes(22, 32, 2, exclude=first)
        assert not set(first) & set(more)

    def test_prime_chain_reaches_requested_bits(self):
        chain = find_prime_chain(130, 64)
        product = 1
        for p in chain:
            product *= p
        assert product.bit_length() > 130
        assert len(set(chain)) == len(chain)

    def test_impossible_chain_raises(self):
        # p ≡ 1 mod 2n needs p > 2n; 14-bit primes cannot serve n = 8192.
        with pytest.raises(ValueError):
            find_ntt_primes(14, 8192, 1)


class TestNTTTransform:
    @pytest.mark.parametrize("degree,primes", CHAIN_SHAPES)
    def test_roundtrip_identity(self, degree, primes, rng):
        for p in primes:
            ctx = get_ntt_context(degree, p)
            a = rng.integers(0, p, degree).astype(np.uint64)
            assert np.array_equal(ctx.inverse(ctx.forward(a)), a)

    @pytest.mark.parametrize("degree,primes", CHAIN_SHAPES)
    def test_negacyclic_multiply_matches_schoolbook(self, degree, primes, rng):
        p = primes[-1]
        ctx = get_ntt_context(degree, p)
        a = rng.integers(0, p, degree).astype(np.uint64)
        b = rng.integers(0, p, degree).astype(np.uint64)
        got = [int(v) for v in ctx.negacyclic_multiply(a, b)]
        want = schoolbook_negacyclic(
            [int(v) for v in a], [int(v) for v in b], degree, p
        )
        assert got == want

    def test_batched_transform_matches_per_row(self, rng):
        (p,) = find_ntt_primes(40, 16, 1)
        ctx = NTTContext(16, p)
        batch = rng.integers(0, p, (4, 16)).astype(np.uint64)
        stacked = ctx.forward(batch)
        for i in range(4):
            assert np.array_equal(stacked[i], ctx.forward(batch[i]))

    def test_rejects_unfriendly_prime(self):
        with pytest.raises(ValueError):
            NTTContext(8, 89)  # 89 ≡ 9 mod 16, no 16th root of unity


class TestRingEquivalence:
    """Every RNS op matches the reference ring bit-for-bit."""

    @pytest.mark.parametrize("degree,primes", CHAIN_SHAPES)
    def test_all_ops_match_reference(self, degree, primes, rng):
        ref, fast = ring_pair(degree, primes)
        q = ref.q
        for _ in range(3):
            a = [int(x) % q for x in rng.integers(0, 2**62, degree)]
            b = [int(x) % q for x in rng.integers(0, 2**62, degree)]
            fa, fb = fast.from_coefficients(a), fast.from_coefficients(b)
            assert fast.coefficients(fa) == a
            assert fast.add(fa, fb) == ref.add(a, b)
            assert fast.sub(fa, fb) == ref.sub(a, b)
            assert fast.neg(fa) == ref.neg(a)
            scalar = int(rng.integers(0, 2**40))
            assert fast.scalar_mul(fa, scalar) == ref.scalar_mul(a, scalar)
            assert fast.mul(fa, fb) == ref.mul(a, b)
            assert fast.centered(fa) == ref.centered(a)
            assert fast.infinity_norm(fa) == ref.infinity_norm(a)
            divisor = int(rng.integers(2, 2**30))
            new_mod = int(rng.integers(2, 2**30))
            assert fast.rescale(fa, divisor, new_mod) == ref.rescale(a, divisor, new_mod)
            assert fast.change_modulus(fa, new_mod) == ref.change_modulus(a, new_mod)

    @pytest.mark.parametrize("degree,primes", CHAIN_SHAPES)
    def test_samplers_consume_rng_identically(self, degree, primes):
        ref, fast = ring_pair(degree, primes)
        assert fast.random_uniform(rng=11) == ref.random_uniform(rng=11)
        assert fast.random_ternary(rng=12) == ref.random_ternary(rng=12)
        assert fast.random_gaussian(rng=13) == ref.random_gaussian(rng=13)
        weight = min(4, degree)
        assert fast.random_ternary(
            rng=14, hamming_weight=weight
        ) == ref.random_ternary(rng=14, hamming_weight=weight)

    @pytest.mark.parametrize("degree,primes", CHAIN_SHAPES)
    def test_long_vector_folding_matches(self, degree, primes, rng):
        ref, fast = ring_pair(degree, primes)
        long = [int(v) for v in rng.integers(-(2**40), 2**40, 3 * degree + 2)]
        assert fast.from_coefficients(long) == ref.from_coefficients(long)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=10**30), min_size=8, max_size=8),
        st.lists(st.integers(min_value=0, max_value=10**30), min_size=8, max_size=8),
    )
    def test_mul_property(self, a, b):
        degree, primes = CHAIN_SHAPES[0]
        ref, fast = ring_pair(degree, primes)
        a = [x % ref.q for x in a]
        b = [x % ref.q for x in b]
        assert fast.mul(a, b) == ref.mul(a, b)

    def test_constant_and_zero(self):
        degree, primes = CHAIN_SHAPES[1]
        ref, fast = ring_pair(degree, primes)
        assert fast.zero() == ref.zero()
        assert fast.constant(-5) == ref.constant(-5)
        assert fast.constant(ref.q + 3) == ref.constant(ref.q + 3)

    def test_element_of_wrong_ring_rejected(self):
        _, fast_a = ring_pair(*CHAIN_SHAPES[0])
        _, fast_b = ring_pair(*CHAIN_SHAPES[1])
        with pytest.raises(ValueError):
            fast_b.add(fast_a.zero(), fast_b.zero())


class TestStructuredFastPaths:
    """project_to (row selection) and rescale_to (exact RNS rescale) match
    the generic centred-lift / divide-and-round bridge bit for bit."""

    @pytest.mark.parametrize("degree,primes", CHAIN_SHAPES)
    def test_project_to_subset_matches_reference(self, degree, primes, rng):
        ref, fast = ring_pair(degree, primes)
        for keep in (primes[:1], primes[:-1], primes[::-1]):
            sub_ref, sub_fast = ring_pair(degree, keep)
            a = [int(x) % ref.q for x in rng.integers(0, 2**62, degree)]
            got = fast.project_to(fast.from_coefficients(a), sub_fast)
            want = sub_ref.from_coefficients(ref.centered(a))
            assert sub_fast.coefficients(got) == want

    @pytest.mark.parametrize("degree,primes", CHAIN_SHAPES)
    def test_rescale_to_dropped_primes_matches_reference(self, degree, primes, rng):
        ref, fast = ring_pair(degree, primes)
        # Drop the last prime (the CKKS rescale shape) and the first ones
        # (the relinearisation P-division shape).
        for keep, dropped in (
            (primes[:-1], primes[-1:]),
            (primes[1:], primes[:1]),
        ):
            divisor = 1
            for p in dropped:
                divisor *= p
            sub_ref, sub_fast = ring_pair(degree, keep)
            for _ in range(3):
                a = [int(x) % ref.q for x in rng.integers(0, 2**62, degree)]
                got = fast.rescale_to(fast.from_coefficients(a), divisor, sub_fast)
                want = sub_ref.from_coefficients(
                    ref.rescale(a, divisor, sub_ref.q)
                )
                assert sub_fast.coefficients(got) == want

    def test_rescale_to_generic_divisor_falls_back(self, rng):
        degree, primes = CHAIN_SHAPES[1]
        ref, fast = ring_pair(degree, primes)
        sub_ref, sub_fast = ring_pair(degree, primes[:-1])
        a = [int(x) % ref.q for x in rng.integers(0, 2**62, degree)]
        divisor = 1000  # not a chain-prime product
        got = fast.rescale_to(fast.from_coefficients(a), divisor, sub_fast)
        want = sub_ref.from_coefficients(ref.rescale(a, divisor, sub_ref.q))
        assert sub_fast.coefficients(got) == want

    def test_project_to_extension_ring(self, rng):
        # Lifting *up* (to a superset basis) must use the centred bridge.
        degree, primes = CHAIN_SHAPES[0]
        ref, fast = ring_pair(degree, primes)
        extra = find_ntt_primes(20, degree, 1, exclude=primes)
        big_ref, big_fast = ring_pair(degree, primes + extra)
        a = [int(x) % ref.q for x in rng.integers(0, 2**62, degree)]
        got = fast.project_to(fast.from_coefficients(a), big_fast)
        want = big_ref.from_coefficients(ref.centered(a))
        assert big_fast.coefficients(got) == want


class TestBackendSelection:
    def test_auto_prefers_rns(self):
        degree, primes = CHAIN_SHAPES[1]
        assert isinstance(get_ring(degree, primes=primes), RNSPolyRing)

    def test_reference_on_unfactored_modulus(self):
        assert isinstance(get_ring(32, (1 << 64) + 13), PolyRing)

    def test_rings_are_cached(self):
        degree, primes = CHAIN_SHAPES[1]
        assert get_ring(degree, primes=primes) is get_ring(degree, primes=primes)

    def test_env_var_forces_reference(self, monkeypatch):
        degree, primes = CHAIN_SHAPES[0]
        monkeypatch.setenv("QUHE_CRYPTO_BACKEND", "reference")
        assert isinstance(get_ring(degree, primes=primes), PolyRing)

    def test_explicit_rns_context_overrides_env(self, monkeypatch):
        # The env var steers "auto" only; an explicit backend="rns" request
        # is a hard requirement.
        monkeypatch.setenv("QUHE_CRYPTO_BACKEND", "reference")
        ctx = CKKSContext(ring_degree=16, depth=1, seed=1, backend="rns")
        assert ctx.backend == "rns"
        assert isinstance(ctx.ring(0), RNSPolyRing)
        bfv = BFVContext(ring_degree=16, plaintext_modulus=257, seed=1, backend="rns")
        assert bfv.backend == "rns"

    def test_explicit_rns_requires_friendly_primes(self):
        with pytest.raises(ValueError):
            get_ring(8, primes=(89,), backend="rns")


class TestCKKSBackendEquivalence:
    """Same seed + same chain ⇒ bit-identical CKKS pipelines."""

    @pytest.mark.parametrize("degree,depth", [(16, 1), (32, 3)])
    def test_encrypt_multiply_rescale_decrypt_equal(self, degree, depth):
        fast = CKKSContext(ring_degree=degree, depth=depth, seed=99, backend="rns")
        ref = CKKSContext(ring_degree=degree, depth=depth, seed=99, backend="reference")
        assert fast.backend == "rns" and ref.backend == "reference"
        assert fast.moduli == ref.moduli
        rng = np.random.default_rng(1)
        a = rng.uniform(-1, 1, degree // 2)
        b = rng.uniform(-1, 1, degree // 2)
        ct_f = [fast.encrypt(v) for v in (a, b)]
        ct_r = [ref.encrypt(v) for v in (a, b)]
        for f, r in zip(ct_f, ct_r):
            assert fast.ring(f.level).coefficients(f.c0) == ref.ring(r.level).coefficients(r.c0)
            assert fast.ring(f.level).coefficients(f.c1) == ref.ring(r.level).coefficients(r.c1)
        prod_f = fast.multiply(ct_f[0], ct_f[1])
        prod_r = ref.multiply(ct_r[0], ct_r[1])
        assert prod_f.scale == prod_r.scale
        assert prod_f.level == prod_r.level
        assert fast.ring(prod_f.level).coefficients(prod_f.c0) == ref.ring(
            prod_r.level
        ).coefficients(prod_r.c0)
        assert fast.decrypt_coefficients(prod_f) == ref.decrypt_coefficients(prod_r)
        assert np.allclose(fast.decrypt(prod_f), ref.decrypt(prod_r))

    def test_level_down_and_plain_ops_equal(self):
        fast = CKKSContext(ring_degree=16, depth=2, seed=5, backend="rns")
        ref = CKKSContext(ring_degree=16, depth=2, seed=5, backend="reference")
        v = np.linspace(-1, 1, 8)
        cf, cr = fast.encrypt(v), ref.encrypt(v)
        df, dr = fast.level_down(cf, 0), ref.level_down(cr, 0)
        assert fast.ring(0).coefficients(df.c0) == ref.ring(0).coefficients(dr.c0)
        pf = fast.multiply_plain(cf, v)
        pr = ref.multiply_plain(cr, v)
        assert fast.decrypt_coefficients(pf) == ref.decrypt_coefficients(pr)


class TestBFVBackendEquivalence:
    def test_full_pipeline_equal(self):
        fast = BFVContext(ring_degree=32, plaintext_modulus=257, seed=7, backend="rns")
        ref = BFVContext(ring_degree=32, plaintext_modulus=257, seed=7, backend="reference")
        assert fast.backend == "rns" and ref.backend == "reference"
        assert fast.q == ref.q and fast.delta == ref.delta
        a = list(range(32))
        b = [5, 250, 3] + [0] * 29
        ca_f, cb_f = fast.encrypt(a), fast.encrypt(b)
        ca_r, cb_r = ref.encrypt(a), ref.encrypt(b)
        assert fast.ring.coefficients(ca_f.c0) == ref.ring.coefficients(ca_r.c0)
        prod_f, prod_r = fast.multiply(ca_f, cb_f), ref.multiply(ca_r, cb_r)
        assert fast.ring.coefficients(prod_f.c0) == ref.ring.coefficients(prod_r.c0)
        assert fast.ring.coefficients(prod_f.c1) == ref.ring.coefficients(prod_r.c1)
        assert fast.decrypt(prod_f) == ref.decrypt(prod_r)
        sum_f, sum_r = fast.add(ca_f, cb_f), ref.add(ca_r, cb_r)
        assert fast.decrypt(sum_f) == ref.decrypt(sum_r)

    def test_bfv_uses_rns_by_default(self):
        ctx = BFVContext(ring_degree=16, plaintext_modulus=257, seed=1)
        assert ctx.backend == "rns"
        assert isinstance(ctx.ring, RNSPolyRing)
