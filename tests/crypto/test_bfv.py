"""Correctness tests for the BFV exact HE scheme."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.bfv import BFVContext


@pytest.fixture(scope="module")
def bfv():
    return BFVContext(ring_degree=32, plaintext_modulus=257, seed=21)


def negacyclic_convolve(a, b, n, t):
    out = [0] * n
    for i, x in enumerate(a):
        for j, y in enumerate(b):
            k = i + j
            if k < n:
                out[k] = (out[k] + x * y) % t
            else:
                out[k - n] = (out[k - n] - x * y) % t
    return out


class TestEncryptDecrypt:
    def test_roundtrip(self, bfv):
        values = list(range(20))
        assert bfv.decrypt(bfv.encrypt(values), length=20) == values

    def test_values_reduced_mod_t(self, bfv):
        ct = bfv.encrypt([300])  # 300 mod 257 = 43
        assert bfv.decrypt(ct, length=1) == [43]

    def test_ciphertexts_randomised(self, bfv):
        a = bfv.encrypt([1, 2, 3])
        b = bfv.encrypt([1, 2, 3])
        assert a.c0 != b.c0

    def test_exactness_repeated(self, bfv):
        # Exact scheme: every decryption matches bit-for-bit, no tolerance.
        for trial in range(5):
            values = [(trial * 37 + i) % 257 for i in range(32)]
            assert bfv.decrypt(bfv.encrypt(values)) == values

    def test_too_many_values_rejected(self, bfv):
        with pytest.raises(ValueError):
            bfv.encrypt(list(range(33)))

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=256), min_size=1, max_size=32))
    def test_roundtrip_random(self, values):
        bfv = BFVContext(ring_degree=32, plaintext_modulus=257, seed=5)
        assert bfv.decrypt(bfv.encrypt(values), length=len(values)) == [
            v % 257 for v in values
        ]


class TestHomomorphicOps:
    def test_add(self, bfv):
        a = [10, 20, 250]
        b = [5, 240, 10]
        out = bfv.decrypt(bfv.add(bfv.encrypt(a), bfv.encrypt(b)), length=3)
        assert out == [(x + y) % 257 for x, y in zip(a, b)]

    def test_sub(self, bfv):
        out = bfv.decrypt(bfv.sub(bfv.encrypt([5]), bfv.encrypt([9])), length=1)
        assert out == [(5 - 9) % 257]

    def test_negate(self, bfv):
        out = bfv.decrypt(bfv.negate(bfv.encrypt([5])), length=1)
        assert out == [(-5) % 257]

    def test_add_plain(self, bfv):
        out = bfv.decrypt(bfv.add_plain(bfv.encrypt([100]), [200]), length=1)
        assert out == [(100 + 200) % 257]

    def test_multiply_plain_scalar(self, bfv):
        out = bfv.decrypt(bfv.multiply_plain_scalar(bfv.encrypt([7, 11]), 9), length=2)
        assert out == [63, 99]

    def test_multiply_is_negacyclic_convolution(self, bfv):
        a = [3, 0, 1] + [0] * 29
        b = [2, 5] + [0] * 30
        product = bfv.multiply(bfv.encrypt(a), bfv.encrypt(b))
        expected = negacyclic_convolve(a, b, 32, 257)
        assert bfv.decrypt(product) == expected

    def test_multiply_constant_polynomials(self, bfv):
        # Constant-term-only plaintexts multiply like scalars.
        product = bfv.multiply(bfv.encrypt([12]), bfv.encrypt([13]))
        assert bfv.decrypt(product, length=1) == [(12 * 13) % 257]

    def test_multiply_wraparound_sign(self, bfv):
        # x^31 · x = x^32 = -1 in the ring.
        a = [0] * 31 + [1]
        b = [0, 1] + [0] * 30
        product = bfv.multiply(bfv.encrypt(a), bfv.encrypt(b))
        assert bfv.decrypt(product, length=1)[0] == (-1) % 257


class TestNoiseBudget:
    def test_fresh_ciphertext_has_budget(self, bfv):
        values = [1, 2, 3]
        budget = bfv.noise_budget_bits(bfv.encrypt(values), values)
        assert budget > 20

    def test_multiplication_consumes_budget(self, bfv):
        a = [3] + [0] * 31
        fresh = bfv.encrypt(a)
        fresh_budget = bfv.noise_budget_bits(fresh, a)
        product = bfv.multiply(fresh, bfv.encrypt([2]))
        expected = [(6 if i == 0 else 0) for i in range(32)]
        product_budget = bfv.noise_budget_bits(product, expected)
        assert product_budget < fresh_budget


class TestValidation:
    def test_plaintext_modulus_floor(self):
        with pytest.raises(ValueError):
            BFVContext(plaintext_modulus=1)

    def test_modulus_gap_enforced(self):
        with pytest.raises(ValueError):
            BFVContext(plaintext_modulus=2**40, ciphertext_modulus_bits=50)
