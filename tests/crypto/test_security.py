"""Tests for the f_msl curve (Eq. 30) and the fitting pipeline."""

import numpy as np
import pytest

from repro.crypto.security import (
    MSLCurve,
    fit_msl_curve,
    paper_msl,
    security_curve_table,
    weighted_minimum_security,
)


class TestPaperCurve:
    def test_eq30_values(self):
        # f_msl(λ) = 0.002 λ + 1.4789 at the paper's λ-set.
        assert paper_msl(2**15) == pytest.approx(0.002 * 32768 + 1.4789)
        assert paper_msl(2**16) == pytest.approx(132.55, abs=0.01)
        assert paper_msl(2**17) == pytest.approx(263.62, abs=0.01)

    def test_monotone_increasing(self):
        assert paper_msl(2**15) < paper_msl(2**16) < paper_msl(2**17)

    def test_vector_input(self):
        out = paper_msl(np.array([2**15, 2**16]))
        assert out.shape == (2,)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            paper_msl(0)


class TestWeightedSecurity:
    def test_eq9_weighted_sum(self):
        lam = np.array([2**15, 2**17])
        weights = np.array([0.25, 0.75])
        expected = 0.25 * paper_msl(2**15) + 0.75 * paper_msl(2**17)
        assert weighted_minimum_security(lam, weights) == pytest.approx(expected)

    def test_paper_weights_at_uniform_lambda(self):
        # Σς = 1 in the paper, so uniform λ gives exactly f_msl(λ).
        weights = np.array([0.1, 0.1, 0.1, 0.2, 0.2, 0.3])
        lam = np.full(6, 2**15)
        assert weighted_minimum_security(lam, weights) == pytest.approx(paper_msl(2**15))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_minimum_security(np.ones(3), np.ones(2))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_minimum_security(np.ones(2), np.array([0.5, -0.1]))


class TestFitting:
    def test_exact_linear_data_recovered(self):
        lam = np.array([1000.0, 2000.0, 4000.0, 8000.0])
        bits = 0.003 * lam + 2.0
        curve = fit_msl_curve(lam, bits)
        assert curve.slope == pytest.approx(0.003)
        assert curve.intercept == pytest.approx(2.0)
        assert curve.residual == pytest.approx(0.0, abs=1e-9)

    def test_curve_is_callable(self):
        curve = MSLCurve(slope=0.002, intercept=1.4789, residual=0.0)
        assert curve(2**15) == pytest.approx(paper_msl(2**15))

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_msl_curve([1.0], [1.0])

    def test_estimator_curve_increasing_with_positive_slope(self):
        # The paper's Eq. 30 recipe: sweep λ at fixed large q, fit a line.
        # Our core-SVP models grow super-linearly across octaves, so the fit
        # is only checked for monotonicity and sign; the paper's exact linear
        # coefficients come from the real LWE estimator on a narrower range
        # (see DESIGN.md §3).
        degrees = [2**13, 2**14, 2**15]
        table = security_curve_table(degrees, modulus_bits=800)
        bits = [table[d] for d in degrees]
        assert bits[0] < bits[1] < bits[2]
        curve = fit_msl_curve(degrees, bits)
        assert curve.slope > 0
        # The line interpolates the middle point within a factor of two.
        assert curve(degrees[1]) == pytest.approx(bits[1], rel=0.5)
