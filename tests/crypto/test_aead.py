"""ChaCha20-Poly1305 AEAD tests against the RFC 8439 §2.8.2 vector."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aead import (
    AuthenticatedChannel,
    AuthenticationError,
    open_,
    seal,
)

RFC_KEY = bytes(range(0x80, 0xA0))
RFC_NONCE = bytes.fromhex("070000004041424344454647")
RFC_AAD = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
RFC_PLAINTEXT = (
    b"Ladies and Gentlemen of the class of '99: If I could offer you "
    b"only one tip for the future, sunscreen would be it."
)
RFC_TAG = bytes.fromhex("1ae10b594f09e26a7e902ecbd0600691")
RFC_CT_PREFIX = bytes.fromhex("d31a8d34648e60db7b86afbc53ef7ec2")


class TestRFCVector:
    def test_rfc_8439_section_2_8_2(self):
        sealed = seal(RFC_KEY, RFC_NONCE, RFC_PLAINTEXT, RFC_AAD)
        ciphertext, tag = sealed[:-16], sealed[-16:]
        assert ciphertext[:16] == RFC_CT_PREFIX
        assert tag == RFC_TAG

    def test_open_roundtrip(self):
        sealed = seal(RFC_KEY, RFC_NONCE, RFC_PLAINTEXT, RFC_AAD)
        assert open_(RFC_KEY, RFC_NONCE, sealed, RFC_AAD) == RFC_PLAINTEXT

    def test_tampered_ciphertext_rejected(self):
        sealed = bytearray(seal(RFC_KEY, RFC_NONCE, RFC_PLAINTEXT, RFC_AAD))
        sealed[3] ^= 1
        with pytest.raises(AuthenticationError):
            open_(RFC_KEY, RFC_NONCE, bytes(sealed), RFC_AAD)

    def test_wrong_aad_rejected(self):
        sealed = seal(RFC_KEY, RFC_NONCE, RFC_PLAINTEXT, RFC_AAD)
        with pytest.raises(AuthenticationError):
            open_(RFC_KEY, RFC_NONCE, sealed, b"different aad")

    def test_short_message_rejected(self):
        with pytest.raises(AuthenticationError):
            open_(RFC_KEY, RFC_NONCE, b"tiny", b"")

    @given(st.binary(max_size=300), st.binary(max_size=50))
    def test_roundtrip_random(self, plaintext, aad):
        sealed = seal(RFC_KEY, RFC_NONCE, plaintext, aad)
        assert open_(RFC_KEY, RFC_NONCE, sealed, aad) == plaintext


class TestAuthenticatedChannel:
    def test_duplex_exchange(self):
        key = bytes(32)
        alice = AuthenticatedChannel(key)
        bob = AuthenticatedChannel(key)
        for i in range(5):
            msg = f"parity block {i}".encode()
            assert bob.receive(alice.send(msg)) == msg

    def test_replay_rejected(self):
        key = bytes(32)
        alice = AuthenticatedChannel(key)
        bob = AuthenticatedChannel(key)
        sealed = alice.send(b"hello")
        assert bob.receive(sealed) == b"hello"
        with pytest.raises(AuthenticationError):
            bob.receive(sealed)  # sequence number advanced: replay fails

    def test_reorder_rejected(self):
        key = bytes(32)
        alice = AuthenticatedChannel(key)
        bob = AuthenticatedChannel(key)
        first = alice.send(b"one")
        second = alice.send(b"two")
        with pytest.raises(AuthenticationError):
            bob.receive(second)
        assert bob.receive(first) == b"one"

    def test_channel_separation(self):
        key = bytes(32)
        a = AuthenticatedChannel(key, channel_id=1)
        b = AuthenticatedChannel(key, channel_id=2)
        with pytest.raises(AuthenticationError):
            b.receive(a.send(b"cross-channel"))

    def test_validation(self):
        with pytest.raises(ValueError):
            AuthenticatedChannel(b"short")
        with pytest.raises(ValueError):
            AuthenticatedChannel(bytes(32), channel_id=2**32)
