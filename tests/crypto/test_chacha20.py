"""ChaCha20 tests against the RFC 8439 vectors plus property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.chacha20 import (
    ChaCha20,
    chacha20_block,
    chacha20_decrypt,
    chacha20_encrypt,
    _quarter_round,
)

RFC_KEY = bytes(range(32))  # 00 01 02 ... 1f


class TestQuarterRound:
    def test_rfc_8439_section_2_1_1(self):
        state = [0] * 16
        state[0], state[1], state[2], state[3] = (
            0x11111111,
            0x01020304,
            0x9B8D6F43,
            0x01234567,
        )
        _quarter_round(state, 0, 1, 2, 3)
        assert state[0] == 0xEA2A92F4
        assert state[1] == 0xCB1CF8CE
        assert state[2] == 0x4581472E
        assert state[3] == 0x5881C4BB


class TestBlockFunction:
    def test_rfc_8439_section_2_3_2(self):
        nonce = bytes.fromhex("000000090000004a00000000")
        block = chacha20_block(RFC_KEY, 1, nonce)
        expected = bytes.fromhex(
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e"
        )
        assert block == expected

    def test_rejects_bad_key_length(self):
        with pytest.raises(ValueError, match="key"):
            chacha20_block(b"short", 0, bytes(12))

    def test_rejects_bad_nonce_length(self):
        with pytest.raises(ValueError, match="nonce"):
            chacha20_block(RFC_KEY, 0, bytes(8))

    def test_rejects_oversized_counter(self):
        with pytest.raises(ValueError, match="counter"):
            chacha20_block(RFC_KEY, 2**32, bytes(12))

    def test_distinct_counters_give_distinct_blocks(self):
        nonce = bytes(12)
        assert chacha20_block(RFC_KEY, 0, nonce) != chacha20_block(RFC_KEY, 1, nonce)


class TestEncryption:
    SUNSCREEN = (
        b"Ladies and Gentlemen of the class of '99: If I could offer you "
        b"only one tip for the future, sunscreen would be it."
    )

    def test_rfc_8439_section_2_4_2(self):
        nonce = bytes.fromhex("000000000000004a00000000")
        ciphertext = chacha20_encrypt(RFC_KEY, nonce, self.SUNSCREEN, counter=1)
        expected = bytes.fromhex(
            "6e2e359a2568f98041ba0728dd0d6981"
            "e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b357"
            "1639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e"
            "52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42"
            "874d"
        )
        assert ciphertext == expected

    def test_decrypt_inverts_encrypt(self):
        nonce = bytes.fromhex("000000000000004a00000000")
        ct = chacha20_encrypt(RFC_KEY, nonce, self.SUNSCREEN)
        assert chacha20_decrypt(RFC_KEY, nonce, ct) == self.SUNSCREEN

    def test_empty_plaintext(self):
        assert chacha20_encrypt(RFC_KEY, bytes(12), b"") == b""

    @given(st.binary(max_size=500))
    def test_roundtrip_random_payloads(self, payload):
        nonce = b"\x01" * 12
        ct = chacha20_encrypt(RFC_KEY, nonce, payload)
        assert chacha20_decrypt(RFC_KEY, nonce, ct) == payload

    @given(st.binary(min_size=1, max_size=200))
    def test_ciphertext_differs_from_plaintext(self, payload):
        # The probability of any byte of keystream being zero across the
        # whole payload is negligible only per-byte; just assert inequality
        # for payloads of printable-independent content when keystream != 0.
        nonce = b"\x02" * 12
        ct = chacha20_encrypt(RFC_KEY, nonce, payload)
        stream = ChaCha20(RFC_KEY, nonce, initial_counter=1).keystream(len(payload))
        if any(stream):
            assert ct != payload or all(s == 0 for s in stream)


class TestStreamState:
    def test_keystream_is_stateful(self):
        cipher = ChaCha20(RFC_KEY, bytes(12))
        first = cipher.keystream(64)
        second = cipher.keystream(64)
        assert first != second

    def test_split_encryption_matches_oneshot(self):
        nonce = b"\x03" * 12
        payload = bytes(range(200)) + bytes(200)
        oneshot = ChaCha20(RFC_KEY, nonce).encrypt(payload)
        cipher = ChaCha20(RFC_KEY, nonce)
        # Encrypt in 64-byte-aligned chunks; the keystream is continuous.
        split = cipher.encrypt(payload[:64]) + cipher.encrypt(payload[64:128]) + cipher.encrypt(payload[128:])
        assert split == oneshot

    def test_keystream_nonnegative_request(self):
        with pytest.raises(ValueError):
            ChaCha20(RFC_KEY, bytes(12)).keystream(-1)
