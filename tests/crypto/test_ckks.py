"""Correctness tests for the CKKS implementation.

Every homomorphic operation is validated against plaintext arithmetic; the
tolerances reflect CKKS's inherent approximation noise at the small test
parameters (n=32, Δ=2^22).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.ckks import CKKSContext

ATOL = 2e-3


def vec(ckks, fill):
    return np.full(ckks.num_slots, fill)


class TestEncryptDecrypt:
    def test_roundtrip(self, ckks):
        values = np.linspace(-1.5, 1.5, ckks.num_slots)
        decrypted = ckks.decrypt(ckks.encrypt(values))
        assert np.allclose(decrypted.real, values, atol=ATOL)

    def test_fresh_ciphertext_at_top_level(self, ckks):
        ct = ckks.encrypt(vec(ckks, 1.0))
        assert ct.level == ckks.depth
        assert ct.scale == ckks.scale

    def test_encrypt_at_lower_level(self, ckks):
        ct = ckks.encrypt(vec(ckks, 0.5), level=1)
        assert ct.level == 1
        assert np.allclose(ckks.decrypt(ct).real, 0.5, atol=ATOL)

    def test_ciphertext_is_randomised(self, ckks):
        a = ckks.encrypt(vec(ckks, 1.0))
        b = ckks.encrypt(vec(ckks, 1.0))
        assert a.c0 != b.c0

    def test_decrypting_garbage_differs_from_message(self, ckks):
        ct = ckks.encrypt(vec(ckks, 1.0))
        tampered = type(ct)(
            c0=list(ct.c1), c1=list(ct.c0), level=ct.level, scale=ct.scale
        )
        assert not np.allclose(ckks.decrypt(tampered).real, 1.0, atol=0.1)

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=-4.0, max_value=4.0))
    def test_roundtrip_constant_vectors(self, value):
        ckks = CKKSContext(ring_degree=16, depth=1, seed=5)
        decrypted = ckks.decrypt(ckks.encrypt(np.full(ckks.num_slots, value)))
        assert np.allclose(decrypted.real, value, atol=ATOL)


class TestAdditive:
    def test_add(self, ckks):
        a, b = vec(ckks, 1.25), vec(ckks, -0.75)
        out = ckks.decrypt(ckks.add(ckks.encrypt(a), ckks.encrypt(b)))
        assert np.allclose(out.real, 0.5, atol=ATOL)

    def test_sub(self, ckks):
        a, b = vec(ckks, 1.25), vec(ckks, 0.75)
        out = ckks.decrypt(ckks.sub(ckks.encrypt(a), ckks.encrypt(b)))
        assert np.allclose(out.real, 0.5, atol=ATOL)

    def test_negate(self, ckks):
        out = ckks.decrypt(ckks.negate(ckks.encrypt(vec(ckks, 2.0))))
        assert np.allclose(out.real, -2.0, atol=ATOL)

    def test_add_plain(self, ckks):
        ct = ckks.encrypt(vec(ckks, 1.0))
        out = ckks.decrypt(ckks.add_plain(ct, vec(ckks, 0.5)))
        assert np.allclose(out.real, 1.5, atol=ATOL)

    def test_level_mismatch_rejected(self, ckks):
        a = ckks.encrypt(vec(ckks, 1.0))
        b = ckks.encrypt(vec(ckks, 1.0), level=1)
        with pytest.raises(ValueError, match="level"):
            ckks.add(a, b)

    def test_elementwise_addition(self, ckks):
        rng = np.random.default_rng(3)
        a = rng.normal(size=ckks.num_slots)
        b = rng.normal(size=ckks.num_slots)
        out = ckks.decrypt(ckks.add(ckks.encrypt(a), ckks.encrypt(b)))
        assert np.allclose(out.real, a + b, atol=ATOL)


class TestMultiplicative:
    def test_multiply_plain(self, ckks):
        ct = ckks.encrypt(vec(ckks, 2.0))
        out = ckks.decrypt(ckks.multiply_plain(ct, vec(ckks, 1.5)))
        assert np.allclose(out.real, 3.0, atol=ATOL)

    def test_multiply_plain_drops_level(self, ckks):
        ct = ckks.encrypt(vec(ckks, 1.0))
        out = ckks.multiply_plain(ct, vec(ckks, 1.0))
        assert out.level == ct.level - 1
        # The rescale divides by the dropped chain prime p ≈ Δ, so the scale
        # returns to Δ only up to the prime's drift from the power of two.
        assert out.scale == pytest.approx(ckks.scale, rel=0.01)

    def test_multiply_ciphertexts(self, ckks):
        rng = np.random.default_rng(4)
        a = rng.uniform(-1.5, 1.5, ckks.num_slots)
        b = rng.uniform(-1.5, 1.5, ckks.num_slots)
        out = ckks.decrypt(ckks.multiply(ckks.encrypt(a), ckks.encrypt(b)))
        assert np.allclose(out.real, a * b, atol=5e-3)

    def test_square(self, ckks):
        a = np.linspace(-1.0, 1.0, ckks.num_slots)
        out = ckks.decrypt(ckks.square(ckks.encrypt(a)))
        assert np.allclose(out.real, a**2, atol=5e-3)

    def test_depth_two_polynomial(self, ckks):
        # Evaluate x² · y with two chained multiplications.
        x = vec(ckks, 0.8)
        y = vec(ckks, -1.1)
        ct_x = ckks.encrypt(x)
        ct_y = ckks.encrypt(y)
        ct_x2 = ckks.multiply(ct_x, ct_x)
        ct_y_down = ckks.level_down(ct_y, ct_x2.level)
        out = ckks.decrypt(ckks.multiply(ct_x2, ct_y_down))
        assert np.allclose(out.real, 0.8**2 * -1.1, atol=1e-2)

    def test_multiplication_at_level_zero_rejected(self, ckks):
        ct = ckks.encrypt(vec(ckks, 1.0), level=0)
        with pytest.raises(ValueError, match="level"):
            ckks.multiply(ct, ct)


class TestRescaleAndLevels:
    def test_rescale_divides_scale(self, ckks):
        ct = ckks.encrypt(vec(ckks, 1.0))
        raised = type(ct)(
            c0=ct.c0, c1=ct.c1, level=ct.level, scale=ct.scale * ckks.scale
        )
        # Rescaling a Δ²-scaled ciphertext returns to ≈Δ (exactly Δ·Δ/p for
        # the dropped chain prime p ≈ Δ).
        out = ckks.rescale(raised)
        assert out.scale == pytest.approx(ckks.scale, rel=0.01)
        assert out.level == ct.level - 1

    def test_rescale_at_bottom_rejected(self, ckks):
        ct = ckks.encrypt(vec(ckks, 1.0), level=0)
        with pytest.raises(ValueError):
            ckks.rescale(ct)

    def test_level_down_preserves_message(self, ckks):
        ct = ckks.encrypt(vec(ckks, 1.3))
        down = ckks.level_down(ct, 0)
        assert down.level == 0
        assert np.allclose(ckks.decrypt(down).real, 1.3, atol=ATOL)

    def test_level_down_validates_target(self, ckks):
        ct = ckks.encrypt(vec(ckks, 1.0), level=1)
        with pytest.raises(ValueError):
            ckks.level_down(ct, 2)


class TestParameters:
    def test_modulus_chain_structure(self, ckks):
        # Q_ℓ = Q_{ℓ-1} · p_ℓ with every chain prime within 1% of Δ, so the
        # rescale at each level divides by ≈Δ.
        for level in range(1, ckks.depth + 1):
            assert ckks.moduli[level] % ckks.moduli[level - 1] == 0
            divisor = ckks.moduli[level] // ckks.moduli[level - 1]
            assert divisor == ckks.rescale_divisor(level)
            assert divisor == pytest.approx(ckks.scale, rel=0.01)

    def test_ntt_chain_is_prime_product(self, ckks):
        import os

        from repro.crypto.ntt import is_ntt_friendly

        forced_reference = (
            os.environ.get("QUHE_CRYPTO_BACKEND", "").lower() == "reference"
        )
        assert ckks.backend == ("reference" if forced_reference else "rns")
        assert ckks.chain_primes is not None
        for p in ckks.chain_primes + ckks.aux_primes:
            assert is_ntt_friendly(p, ckks.n)
        product = 1
        for p in ckks.chain_primes:
            product *= p
        assert product == ckks.moduli[-1]

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            CKKSContext(ring_degree=16, depth=-1)

    def test_scale_must_fit_in_base_modulus(self):
        with pytest.raises(ValueError, match="base_modulus_bits"):
            CKKSContext(ring_degree=16, scale_bits=30, base_modulus_bits=20)

    def test_num_slots(self, ckks):
        assert ckks.num_slots == ckks.n // 2
