"""Poly1305 tests against the RFC 8439 vector plus property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.poly1305 import poly1305_mac, poly1305_verify


RFC_KEY = bytes.fromhex(
    "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"
)
RFC_MSG = b"Cryptographic Forum Research Group"
RFC_TAG = bytes.fromhex("a8061dc1305136c6c22b8baf0c0127a9")


class TestRFCVector:
    def test_rfc_8439_section_2_5_2(self):
        assert poly1305_mac(RFC_MSG, RFC_KEY) == RFC_TAG

    def test_verify_accepts_valid_tag(self):
        assert poly1305_verify(RFC_MSG, RFC_KEY, RFC_TAG)

    def test_verify_rejects_flipped_bit(self):
        bad = bytes([RFC_TAG[0] ^ 1]) + RFC_TAG[1:]
        assert not poly1305_verify(RFC_MSG, RFC_KEY, bad)

    def test_verify_rejects_wrong_length(self):
        assert not poly1305_verify(RFC_MSG, RFC_KEY, RFC_TAG[:8])


class TestProperties:
    def test_tag_length(self):
        assert len(poly1305_mac(b"", RFC_KEY)) == 16

    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            poly1305_mac(b"x", b"short")

    @given(st.binary(max_size=300))
    def test_deterministic(self, message):
        assert poly1305_mac(message, RFC_KEY) == poly1305_mac(message, RFC_KEY)

    @given(st.binary(min_size=1, max_size=200), st.integers(min_value=0, max_value=199))
    def test_message_tamper_detected(self, message, position):
        tag = poly1305_mac(message, RFC_KEY)
        pos = position % len(message)
        tampered = bytes(
            b ^ 1 if i == pos else b for i, b in enumerate(message)
        )
        assert poly1305_mac(tampered, RFC_KEY) != tag

    @given(st.binary(min_size=32, max_size=32), st.binary(min_size=32, max_size=32))
    def test_different_keys_different_tags(self, k1, k2):
        if k1 == k2:
            return
        # Clamping can collide on degenerate keys; overwhelmingly they differ.
        t1 = poly1305_mac(b"fixed message", k1)
        t2 = poly1305_mac(b"fixed message", k2)
        if k1[:16] != k2[:16] or k1[16:] != k2[16:]:
            assert t1 != t2 or k1[:16] == k2[:16]
