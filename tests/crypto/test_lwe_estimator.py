"""Tests for the simplified LWE security estimator."""

import pytest

from repro.crypto.lwe_estimator import (
    AttackEstimate,
    LWEParameters,
    delta_from_blocksize,
    estimate_dual,
    estimate_hybrid_dual,
    estimate_primal_usvp,
    estimate_security,
    minimum_security_level,
)


class TestDelta:
    def test_known_reference_value(self):
        # δ(β) for BKZ-100 is about 1.009 (standard reference point).
        assert delta_from_blocksize(100) == pytest.approx(1.009, abs=0.001)

    def test_decreasing_in_blocksize(self):
        assert delta_from_blocksize(100) > delta_from_blocksize(200) > delta_from_blocksize(400)

    def test_rejects_tiny_blocksize(self):
        with pytest.raises(ValueError):
            delta_from_blocksize(10)


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            LWEParameters(n=0, q=2**30)
        with pytest.raises(ValueError):
            LWEParameters(n=100, q=1)
        with pytest.raises(ValueError):
            LWEParameters(n=100, q=2**30, error_stddev=0.0)


class TestAttacks:
    def test_all_attacks_return_estimates(self):
        params = LWEParameters(n=1024, q=2**27)
        estimates = estimate_security(params)
        assert set(estimates) == {"usvp", "dual", "hybrid_dual"}
        for est in estimates.values():
            assert isinstance(est, AttackEstimate)
            assert est.security_bits > 0

    def test_security_increases_with_dimension(self):
        q = 2**600
        bits = [
            minimum_security_level(LWEParameters(n=n, q=q))
            for n in (2**13, 2**14, 2**15)
        ]
        assert bits[0] < bits[1] < bits[2]

    def test_security_decreases_with_modulus(self):
        n = 2**13
        small_q = minimum_security_level(LWEParameters(n=n, q=2**200))
        large_q = minimum_security_level(LWEParameters(n=n, q=2**400))
        assert large_q < small_q

    def test_standard_parameter_sanity(self):
        # n=1024, q≈2^27, σ=3.2 is a ~128-bit HE standard set; our simplified
        # models should land in the right decade (80-250 bits).
        bits = minimum_security_level(LWEParameters(n=1024, q=2**27))
        assert 80 < bits < 250

    def test_minimum_is_min_over_attacks(self):
        params = LWEParameters(n=2048, q=2**50)
        estimates = estimate_security(params)
        assert minimum_security_level(params) == min(
            e.security_bits for e in estimates.values()
        )

    def test_hybrid_no_worse_than_plain_dual_for_ternary(self):
        params = LWEParameters(n=1024, q=2**100, ternary_secret=True)
        dual = estimate_dual(params)
        hybrid = estimate_hybrid_dual(params)
        assert hybrid.security_bits <= dual.security_bits + 1.5

    def test_hybrid_equals_dual_for_non_ternary(self):
        params = LWEParameters(n=512, q=2**40, ternary_secret=False)
        assert estimate_hybrid_dual(params).security_bits == pytest.approx(
            estimate_dual(params).security_bits
        )

    def test_usvp_blocksize_reasonable(self):
        est = estimate_primal_usvp(LWEParameters(n=1024, q=2**27))
        assert 100 <= est.blocksize <= 1500
