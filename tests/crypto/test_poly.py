"""Property and unit tests for the negacyclic polynomial ring."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.poly import PolyRing

RING = PolyRing(8, 97)


def poly_strategy(ring=RING):
    return st.lists(
        st.integers(min_value=0, max_value=ring.q - 1),
        min_size=ring.n,
        max_size=ring.n,
    )


def schoolbook_negacyclic(a, b, n, q):
    """Reference O(n²) negacyclic multiplication."""
    out = [0] * n
    for i, x in enumerate(a):
        for j, y in enumerate(b):
            k = i + j
            if k < n:
                out[k] = (out[k] + x * y) % q
            else:
                out[k - n] = (out[k - n] - x * y) % q
    return out


class TestConstruction:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            PolyRing(6, 97)

    def test_requires_modulus(self):
        with pytest.raises(ValueError):
            PolyRing(8, 1)

    def test_constant(self):
        c = RING.constant(5)
        assert c[0] == 5 and all(v == 0 for v in c[1:])

    def test_constant_reduces(self):
        assert RING.constant(100)[0] == 3

    def test_from_coefficients_folds_negacyclically(self):
        # X^8 = -1: coefficient at index 8 subtracts from index 0.
        coeffs = [1] + [0] * 7 + [2]
        out = RING.from_coefficients(coeffs)
        assert out[0] == (1 - 2) % 97

    def test_from_coefficients_double_fold(self):
        # X^16 = +1.
        coeffs = [0] * 16 + [3]
        out = RING.from_coefficients(coeffs)
        assert out[0] == 3


class TestArithmetic:
    @given(poly_strategy(), poly_strategy())
    def test_add_commutes(self, a, b):
        assert RING.add(a, b) == RING.add(b, a)

    @given(poly_strategy())
    def test_add_neg_is_zero(self, a):
        assert RING.add(a, RING.neg(a)) == RING.zero()

    @given(poly_strategy(), poly_strategy())
    def test_sub_is_add_neg(self, a, b):
        assert RING.sub(a, b) == RING.add(a, RING.neg(b))

    @settings(max_examples=30)
    @given(poly_strategy(), poly_strategy())
    def test_mul_matches_schoolbook(self, a, b):
        assert RING.mul(a, b) == schoolbook_negacyclic(a, b, RING.n, RING.q)

    @settings(max_examples=30)
    @given(poly_strategy(), poly_strategy())
    def test_mul_commutes(self, a, b):
        assert RING.mul(a, b) == RING.mul(b, a)

    @settings(max_examples=20)
    @given(poly_strategy(), poly_strategy(), poly_strategy())
    def test_mul_distributes_over_add(self, a, b, c):
        left = RING.mul(a, RING.add(b, c))
        right = RING.add(RING.mul(a, b), RING.mul(a, c))
        assert left == right

    @given(poly_strategy())
    def test_mul_by_one(self, a):
        assert RING.mul(a, RING.constant(1)) == a

    @given(poly_strategy(), st.integers(min_value=0, max_value=200))
    def test_scalar_mul_matches_mul_by_constant(self, a, s):
        assert RING.scalar_mul(a, s) == RING.mul(a, RING.constant(s))

    def test_negacyclic_wraparound_sign(self):
        # X^(n-1) * X = X^n = -1.
        x_power = RING.zero()
        x_power[7] = 1
        x = RING.zero()
        x[1] = 1
        assert RING.mul(x_power, x) == RING.constant(-1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RING.add([0] * 4, RING.zero())


class TestBigModulus:
    """Exercise the big-int path with a CKKS-sized modulus."""

    def test_mul_with_120_bit_modulus(self):
        ring = PolyRing(16, (1 << 120) + 451)
        rng = np.random.default_rng(0)
        a = [int(x) for x in rng.integers(0, 2**60, 16)]
        b = [int(x) for x in rng.integers(0, 2**60, 16)]
        assert ring.mul(a, b) == schoolbook_negacyclic(a, b, 16, ring.q)


class TestRepresentation:
    def test_centered_range(self):
        ring = PolyRing(4, 10)
        centred = ring.centered([0, 4, 5, 9])
        assert centred == [0, 4, 5, -1]
        assert all(-5 < c <= 5 for c in centred)

    def test_rescale_rounds_half_away(self):
        ring = PolyRing(4, 1000)
        # 15/10 → 2, -15/10 → -2, 14/10 → 1.
        out = ring.rescale([15, (-15) % 1000, 14, 0], 10, 100)
        assert out == [2, (-2) % 100, 1, 0]

    def test_rescale_rejects_bad_divisor(self):
        with pytest.raises(ValueError):
            RING.rescale(RING.zero(), 0, 50)

    def test_change_modulus_preserves_centred_value(self):
        ring = PolyRing(4, 1000)
        small = ring.change_modulus([999, 1, 0, 500], 10)
        assert small == [(-1) % 10, 1, 0, 500 % 10]

    def test_infinity_norm(self):
        ring = PolyRing(4, 100)
        assert ring.infinity_norm([99, 2, 0, 50]) == 50


class TestSampling:
    def test_uniform_in_range(self):
        sample = RING.random_uniform(rng=0)
        assert len(sample) == RING.n
        assert all(0 <= v < RING.q for v in sample)

    def test_ternary_values(self):
        sample = RING.random_ternary(rng=0)
        allowed = {0, 1, RING.q - 1}
        assert set(sample) <= allowed

    def test_ternary_hamming_weight(self):
        ring = PolyRing(64, 97)
        sample = ring.random_ternary(rng=0, hamming_weight=10)
        nonzero = sum(1 for v in sample if v != 0)
        assert nonzero == 10

    def test_gaussian_concentrated(self):
        ring = PolyRing(1024, 1 << 30)
        sample = ring.random_gaussian(rng=0, sigma=3.2)
        centred = ring.centered(sample)
        assert max(abs(c) for c in centred) < 30
        assert np.std(centred) == pytest.approx(3.2, rel=0.25)
