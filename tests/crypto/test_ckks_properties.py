"""Property-based tests of the CKKS homomorphism (hypothesis).

Small ring (n=16) keeps each example fast; the properties are the scheme's
defining algebraic laws, checked against plaintext arithmetic with CKKS-noise
tolerances.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.ckks import CKKSContext

ATOL = 5e-3

values = st.lists(
    st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    min_size=8,
    max_size=8,
)


@pytest.fixture(scope="module")
def ckks16():
    return CKKSContext(ring_degree=16, scale_bits=22, base_modulus_bits=30, depth=2, seed=77)


@settings(max_examples=20, deadline=None)
@given(values, values)
def test_addition_homomorphism(a, b):
    ckks = CKKSContext(ring_degree=16, scale_bits=22, base_modulus_bits=30, depth=1, seed=1)
    out = ckks.decrypt(ckks.add(ckks.encrypt(a), ckks.encrypt(b)))
    assert np.allclose(out.real, np.add(a, b), atol=ATOL)


@settings(max_examples=20, deadline=None)
@given(values, values)
def test_multiplication_homomorphism(a, b):
    ckks = CKKSContext(ring_degree=16, scale_bits=22, base_modulus_bits=30, depth=1, seed=2)
    out = ckks.decrypt(ckks.multiply(ckks.encrypt(a), ckks.encrypt(b)))
    assert np.allclose(out.real, np.multiply(a, b), atol=2e-2)


@settings(max_examples=20, deadline=None)
@given(values)
def test_add_then_negate_cancels(a):
    ckks = CKKSContext(ring_degree=16, scale_bits=22, base_modulus_bits=30, depth=1, seed=3)
    ct = ckks.encrypt(a)
    out = ckks.decrypt(ckks.add(ct, ckks.negate(ct)))
    assert np.allclose(out.real, 0.0, atol=ATOL)


@settings(max_examples=15, deadline=None)
@given(values, values, values)
def test_addition_associativity(a, b, c):
    ckks = CKKSContext(ring_degree=16, scale_bits=22, base_modulus_bits=30, depth=1, seed=4)
    left = ckks.add(ckks.add(ckks.encrypt(a), ckks.encrypt(b)), ckks.encrypt(c))
    right = ckks.add(ckks.encrypt(a), ckks.add(ckks.encrypt(b), ckks.encrypt(c)))
    assert np.allclose(
        ckks.decrypt(left).real, ckks.decrypt(right).real, atol=ATOL
    )


@settings(max_examples=15, deadline=None)
@given(values, values)
def test_plain_and_cipher_multiplication_agree(a, b):
    ckks = CKKSContext(ring_degree=16, scale_bits=22, base_modulus_bits=30, depth=1, seed=5)
    cipher = ckks.decrypt(ckks.multiply(ckks.encrypt(a), ckks.encrypt(b)))
    plain = ckks.decrypt(ckks.multiply_plain(ckks.encrypt(a), b))
    assert np.allclose(cipher.real, plain.real, atol=2e-2)


@settings(max_examples=15, deadline=None)
@given(values, st.floats(min_value=-2.0, max_value=2.0))
def test_scalar_distributes_over_addition(a, scalar):
    ckks = CKKSContext(ring_degree=16, scale_bits=22, base_modulus_bits=30, depth=1, seed=6)
    vec = np.full(8, scalar)
    # (a + a)·s == a·s + a·s
    ct = ckks.encrypt(a)
    lhs = ckks.multiply_plain(ckks.add(ct, ct), vec)
    term = ckks.multiply_plain(ct, vec)
    rhs = ckks.add(term, term)
    assert np.allclose(ckks.decrypt(lhs).real, ckks.decrypt(rhs).real, atol=2e-2)
