"""Tests for the Fig. 3 optimality study."""

import numpy as np
import pytest

from repro.experiments.fig3_optimality import (
    PAPER_BINS,
    OptimalityStudy,
    run_optimality_study,
)


@pytest.fixture(scope="module")
def small_study():
    return run_optimality_study(num_samples=8, seed=1)


class TestStudy:
    def test_sample_count(self, small_study):
        assert len(small_study.values) == 8

    def test_bins_cover_paper_layout(self, small_study):
        assert small_study.bin_edges == PAPER_BINS
        assert len(small_study.bin_counts) == 6

    def test_statistics_consistent(self, small_study):
        assert small_study.minimum <= small_study.mean <= small_study.maximum

    def test_fraction_near_best_nonzero(self, small_study):
        """Fig. 3's reliability claim: a solid share of runs land near the top."""
        assert small_study.fraction_near_best(band=5.0) >= 0.25

    def test_fraction_within(self, small_study):
        full = small_study.fraction_within(-1e9, 1e9)
        assert full == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        a = run_optimality_study(num_samples=3, seed=4)
        b = run_optimality_study(num_samples=3, seed=4)
        assert np.allclose(a.values, b.values)

    def test_fixed_channel_variant(self, typical_cfg):
        study = run_optimality_study(
            num_samples=3, seed=2, config=typical_cfg, resample_channels=False
        )
        # With a fixed channel, all runs converge near one optimum.
        assert np.ptp(study.values) < 1.0

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            run_optimality_study(num_samples=0)

    def test_resampled_channels_spread_values(self):
        """Per-trial channel draws create the paper's wide objective spread."""
        study = run_optimality_study(num_samples=8, seed=1)
        assert np.ptp(study.values) > 0.1
