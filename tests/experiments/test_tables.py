"""Tests for the Table V/VI regeneration harness."""

import numpy as np
import pytest

from repro.experiments.tables import (
    METHOD_ORDER,
    render_table_v,
    render_table_vi,
    run_stage1_methods,
    table_v_rows,
    table_vi_rows,
)


@pytest.fixture(scope="module")
def comparison(typical_cfg):
    # Reduced iteration budgets keep the test quick; shapes are unaffected.
    return run_stage1_methods(
        typical_cfg,
        gd_max_iterations=4000,
        sa_max_iterations=1500,
        rs_num_samples=4000,
        seed=0,
    )


class TestComparison:
    def test_all_methods_present(self, comparison):
        assert set(comparison.results) == set(METHOD_ORDER)

    def test_quhe_is_best_or_tied(self, comparison):
        values = comparison.values()
        best = min(values.values())
        assert values["QuHE Stage 1"] == pytest.approx(best, abs=1e-6)

    def test_gd_matches_quhe(self, comparison):
        """Table V: gradient descent reaches the same optimum."""
        values = comparison.values()
        assert values["Gradient descent"] == pytest.approx(
            values["QuHE Stage 1"], abs=5e-3
        )

    def test_random_select_clearly_worse(self, comparison):
        values = comparison.values()
        assert values["Random select"] > values["QuHE Stage 1"] + 0.01

    def test_gd_slower_than_quhe(self, comparison):
        """Fig. 5(b) ordering."""
        runtimes = comparison.runtimes()
        assert runtimes["Gradient descent"] > runtimes["QuHE Stage 1"]


class TestRendering:
    def test_table_v_dimensions(self, comparison, typical_cfg):
        rows = table_v_rows(comparison)
        assert len(rows) == typical_cfg.num_clients
        assert len(rows[0]) == 1 + len(METHOD_ORDER)

    def test_table_vi_dimensions(self, comparison, typical_cfg):
        rows = table_vi_rows(comparison)
        assert len(rows) == typical_cfg.num_links

    def test_render_contains_headers(self, comparison):
        text = render_table_v(comparison)
        assert "Table V" in text and "QuHE Stage 1" in text
        text_vi = render_table_vi(comparison)
        assert "Table VI" in text_vi and "w_18" in text_vi

    def test_unused_link_w_is_one_for_all_methods(self, comparison):
        rows = table_vi_rows(comparison)
        w6 = rows[5]
        assert all(v == pytest.approx(1.0, abs=1e-9) for v in w6[1:])
