"""Tests for the live markdown report generator."""

import pytest

from repro.experiments.report import generate_report


@pytest.fixture(scope="module")
def report_text():
    return generate_report(seed=2, fig3_samples=3)


class TestReport:
    def test_contains_all_sections(self, report_text):
        for heading in (
            "# QuHE reproduction report",
            "## Tables V and VI",
            "## Fig. 3",
            "## Fig. 4",
            "## Fig. 5(a)",
            "## Fig. 5(d)",
            "## Fig. 6",
        ):
            assert heading in report_text

    def test_table_v_values_present(self, report_text):
        assert "2.098" in report_text  # the paper-exact φ1

    def test_method_rows_present(self, report_text):
        for method in ("AA", "OLAA", "OCCR", "QuHE"):
            assert f"| {method} |" in report_text

    def test_sweep_winners_listed(self, report_text):
        assert "bandwidth:" in report_text
        assert "server_cpu:" in report_text

    def test_cli_report_to_file(self, tmp_path, capsys):
        """--output creates parent dirs and emits JSON artifacts alongside."""
        import json

        from repro.cli import main

        out_file = tmp_path / "nested" / "dir" / "report.md"
        assert main(["--seed", "2", "report", "--samples", "2",
                     "--output", str(out_file)]) == 0
        assert out_file.exists()
        assert "QuHE reproduction report" in out_file.read_text()
        for section, kind in (
            ("tables", "stage1_method_comparison"),
            ("fig3", "optimality_study"),
            ("fig4", "convergence_traces"),
            ("fig5_stage_calls", "stage_call_report"),
            ("fig5_methods", "method_comparison"),
            ("fig6", "sweep_set"),
        ):
            artifact = out_file.with_name(f"report.{section}.json")
            assert artifact.exists(), section
            payload = json.loads(artifact.read_text())
            assert payload["kind"] == kind
            assert payload["format_version"] == 1
