"""Tests for the DESIGN.md §7 ablation studies."""

import numpy as np
import pytest

from repro.core.quhe import QuHE
from repro.experiments.ablations import (
    bnb_vs_exhaustive,
    log_convexification_ablation,
    msl_activation_threshold,
    transform_vs_direct,
    weight_sensitivity,
)


@pytest.fixture(scope="module")
def base_alloc(typical_cfg):
    return QuHE(typical_cfg).initial_allocation()


class TestBnbAblation:
    def test_identical_argmax_and_savings(self, typical_cfg, base_alloc):
        ablation = bnb_vs_exhaustive(typical_cfg, base_alloc)
        assert ablation.identical_argmax
        assert ablation.bnb_value == pytest.approx(ablation.exhaustive_value)
        assert ablation.exhaustive_nodes == 3**6
        assert 0.0 < ablation.node_savings < 1.0

    def test_savings_substantial(self, typical_cfg, base_alloc):
        ablation = bnb_vs_exhaustive(typical_cfg, base_alloc)
        assert ablation.node_savings > 0.5  # B&B prunes most of the tree


class TestTransformAblation:
    def test_same_optimum(self, typical_cfg, base_alloc):
        ablation = transform_vs_direct(typical_cfg, base_alloc)
        assert ablation.relative_gap < 5e-3

    def test_runtimes_recorded(self, typical_cfg, base_alloc):
        ablation = transform_vs_direct(typical_cfg, base_alloc)
        assert ablation.transform_runtime_s > 0
        assert ablation.direct_runtime_s > 0


class TestWeightSensitivity:
    @pytest.fixture(scope="class")
    def points(self, typical_cfg):
        return weight_sensitivity(typical_cfg, alpha_msl_values=(0.01, 0.05, 0.1))

    def test_umsl_nondecreasing_in_alpha(self, points):
        u = [p.u_msl for p in points]
        assert all(b >= a - 1e-9 for a, b in zip(u, u[1:]))

    def test_trade_activates_at_higher_alpha(self, points):
        threshold = msl_activation_threshold(points)
        assert threshold <= 0.1  # activates somewhere in the sweep
        assert threshold > 0.01  # but not at the paper's literal weight

    def test_literal_weight_stays_at_minimum_lambda(self, points):
        assert np.all(points[0].lam == 2**15)

    def test_high_weight_selects_maximum_lambda_somewhere(self, points):
        assert np.any(points[-1].lam > 2**15)


class TestConvexificationAblation:
    def test_log_space_no_worse(self, typical_cfg):
        ablation = log_convexification_ablation(typical_cfg)
        # The convexified solve is the reference optimum; the raw-space solve
        # can match but never beat it beyond tolerance.
        assert ablation.raw_gap >= -1e-4

    def test_raw_space_close_from_good_start(self, typical_cfg):
        ablation = log_convexification_ablation(typical_cfg)
        assert ablation.raw_space_value == pytest.approx(
            ablation.log_space_value, abs=0.2
        )
