"""Tests for the Fig. 4 convergence traces."""

import numpy as np
import pytest

from repro.experiments.fig4_convergence import ConvergenceTraces, run_convergence


@pytest.fixture(scope="module")
def traces(typical_cfg):
    return run_convergence(typical_cfg)


class TestTraces:
    def test_all_series_populated(self, traces):
        assert len(traces.stage1_objective) > 1
        assert len(traces.stage2_incumbent) >= 1
        assert len(traces.stage3_objective) >= 1
        assert len(traces.stage3_gap) == len(traces.stage3_objective)

    def test_stage1_trace_decreases(self, traces):
        """Fig. 4(a): the Stage-1 minimisation objective falls monotonically
        (up to solver line-search wiggles) and converges."""
        series = np.asarray(traces.stage1_objective)
        assert series[-1] <= series[0]
        assert series[-1] == pytest.approx(4.58, abs=0.02)

    def test_stage2_incumbent_nondecreasing(self, traces):
        """Fig. 4(b): branch-and-bound incumbent only improves."""
        series = np.asarray(traces.stage2_incumbent)
        assert np.all(np.diff(series) >= -1e-12)

    def test_stage3_objective_improves(self, traces):
        """Fig. 4(c): the fractional-programming objective rises to a plateau."""
        series = np.asarray(traces.stage3_objective)
        assert series[-1] >= series[0] - 1e-9

    def test_stage3_gap_shrinks_by_orders(self, traces):
        """Fig. 4(d): the tightness gap collapses (duality-gap analogue)."""
        gaps = np.asarray(traces.stage3_gap)
        if len(gaps) > 1:
            assert gaps[-1] <= gaps[0] * 0.1
        assert traces.final_gap == gaps[-1]

    def test_counts_positive(self, traces):
        assert traces.stage1_iterations > 0
        assert traces.stage2_nodes > 0
        assert traces.stage3_iterations > 0
        assert traces.total_runtime_s > 0

    def test_converges_within_paper_scale_iterations(self, traces):
        """The paper converges within 34 inner steps; we check the same
        order of magnitude (< 100 for every stage)."""
        assert traces.stage1_iterations < 100
        assert traces.stage3_iterations < 100
