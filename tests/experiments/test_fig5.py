"""Tests for the Fig. 5 comparison harness."""

import numpy as np
import pytest

from repro.experiments.fig5_comparison import (
    METHOD_ORDER,
    run_method_comparison,
    run_stage_call_report,
)


@pytest.fixture(scope="module")
def comparison(typical_cfg):
    return run_method_comparison(typical_cfg)


@pytest.fixture(scope="module")
def literal_comparison(typical_cfg):
    """Fig. 5(d) with the paper's literal α_msl = 1e-2."""
    return run_method_comparison(typical_cfg, alpha_msl_override=None)


class TestStageCalls:
    def test_one_call_per_stage_family(self, typical_cfg):
        """Fig. 5(a): QuHE needs one Stage-1 call; 2-3 total outer rounds."""
        report = run_stage_call_report(typical_cfg)
        assert report.stage1_calls == 1
        assert 1 <= report.stage2_calls <= 5
        assert report.stage2_calls == report.stage3_calls
        assert report.runtime_s > 0


class TestMethodComparison:
    def test_all_methods_reported(self, comparison):
        assert [r.method for r in comparison.rows] == list(METHOD_ORDER)

    def test_quhe_best_objective(self, comparison):
        """Fig. 5(d): QuHE has the best overall objective value."""
        by = comparison.by_method()
        for method in ("AA", "OLAA", "OCCR"):
            assert by["QuHE"].objective >= by[method].objective - 1e-6

    def test_energy_ordering(self, comparison):
        """Fig. 5(d): QuHE and OCCR excel in energy, far below AA/OLAA."""
        by = comparison.by_method()
        assert by["QuHE"].energy_j < by["AA"].energy_j
        assert by["OCCR"].energy_j < by["AA"].energy_j

    def test_security_ordering_with_ablation(self, comparison):
        """Fig. 5(d): QuHE and OLAA achieve the highest U_msl, clearly above
        AA and OCCR (reproduced under the α_msl = 0.1 ablation)."""
        by = comparison.by_method()
        assert by["QuHE"].u_msl > by["AA"].u_msl
        assert by["OLAA"].u_msl > by["AA"].u_msl
        assert by["OCCR"].u_msl == pytest.approx(by["AA"].u_msl)

    def test_literal_weights_tie_on_security(self, literal_comparison):
        """With the paper's literal α_msl = 1e-2 the λ trade never activates;
        all methods sit at λ = 2^15 (documented in EXPERIMENTS.md)."""
        by = literal_comparison.by_method()
        values = {row.u_msl for row in literal_comparison.rows}
        assert by["QuHE"].u_msl == pytest.approx(by["AA"].u_msl)
        assert len({round(v, 6) for v in values}) == 1

    def test_render_is_table(self, comparison):
        text = comparison.render()
        assert "QuHE" in text and "energy_j" in text
