"""Tests for the dynamic block-fading adaptation study."""

import numpy as np
import pytest

from repro.experiments.dynamic import run_dynamic_study


@pytest.fixture(scope="module")
def study(typical_cfg):
    return run_dynamic_study(typical_cfg, num_epochs=4, seed=3)


class TestDynamicStudy:
    def test_epoch_count(self, study):
        assert len(study.epochs) == 4
        assert [e.epoch for e in study.epochs] == [0, 1, 2, 3]

    def test_epoch_zero_policies_coincide(self, study):
        """At epoch 0 the static policy *is* the adaptive solution."""
        first = study.epochs[0]
        assert first.adaptive_objective == pytest.approx(
            first.static_objective, abs=1e-6
        )

    def test_adaptive_never_worse(self, study):
        """Re-optimizing on the true channel can only help (or tie)."""
        for epoch in study.epochs:
            assert epoch.adaptive_objective >= epoch.static_objective - 1e-6

    def test_adaptation_gains_positive_on_faded_epochs(self, study):
        gains = [e.adaptation_gain for e in study.epochs[1:]]
        assert max(gains) > 0  # at least one epoch benefits from adapting

    def test_mean_gain_nonnegative(self, study):
        assert study.mean_adaptation_gain >= -1e-9

    def test_channels_actually_vary(self, study):
        g0 = study.epochs[0].gains
        g1 = study.epochs[1].gains
        assert np.max(np.abs(g0 / g1 - 1.0)) > 0.01

    def test_deterministic_given_seed(self, typical_cfg):
        a = run_dynamic_study(typical_cfg, num_epochs=2, seed=9)
        b = run_dynamic_study(typical_cfg, num_epochs=2, seed=9)
        assert a.adaptive_objectives == pytest.approx(b.adaptive_objectives)

    def test_validation(self, typical_cfg):
        with pytest.raises(ValueError):
            run_dynamic_study(typical_cfg, num_epochs=0)
