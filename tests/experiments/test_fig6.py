"""Tests for the Fig. 6 resource sweeps."""

import numpy as np
import pytest

from repro.experiments.fig6_sweeps import PAPER_SWEEPS, SweepSeries, sweep


@pytest.fixture(scope="module")
def bandwidth_series(typical_cfg):
    return sweep("bandwidth", typical_cfg, values=[0.5e7, 1.0e7, 1.5e7])


class TestSweep:
    def test_series_shapes(self, bandwidth_series):
        assert len(bandwidth_series.x_values) == 3
        assert set(bandwidth_series.objectives) == {"AA", "OLAA", "OCCR", "QuHE"}
        assert all(len(v) == 3 for v in bandwidth_series.objectives.values())

    def test_quhe_wins_everywhere(self, bandwidth_series):
        """The paper's Fig. 6 claim: QuHE leads at every operating point."""
        assert set(bandwidth_series.best_method_per_point()) == {"QuHE"}

    def test_quhe_improves_with_bandwidth(self, bandwidth_series):
        """Fig. 6(a): more bandwidth yields notable gains for QuHE."""
        series = bandwidth_series.objectives["QuHE"]
        assert series[-1] > series[0]

    def test_aa_marginal_with_bandwidth(self, bandwidth_series):
        """Fig. 6(a): AA/OLAA react only marginally to more bandwidth."""
        aa = bandwidth_series.objectives["AA"]
        quhe = bandwidth_series.objectives["QuHE"]
        assert (aa[-1] - aa[0]) <= (quhe[-1] - quhe[0]) + 0.5

    def test_server_cpu_destabilises_aa(self, typical_cfg):
        """Fig. 6(d): AA/OLAA degrade as f_total grows (energy ∝ f_s²),
        while OCCR/QuHE stay stable."""
        series = sweep("server_cpu", typical_cfg, values=[2.0e10, 3.0e10])
        aa = series.objectives["AA"]
        quhe = series.objectives["QuHE"]
        assert aa[-1] < aa[0]  # AA gets worse
        assert abs(quhe[-1] - quhe[0]) < 0.5  # QuHE stable

    def test_unknown_parameter_rejected(self, typical_cfg):
        with pytest.raises(ValueError, match="unknown sweep"):
            sweep("nonsense", typical_cfg)

    def test_paper_grids_defined_for_all_panels(self):
        assert set(PAPER_SWEEPS) == {"bandwidth", "power", "client_cpu", "server_cpu"}
        for grid in PAPER_SWEEPS.values():
            assert len(grid) == 5

    def test_render(self, bandwidth_series):
        text = bandwidth_series.render()
        assert "bandwidth" in text and "QuHE" in text

    def test_parallel_workers_match_serial(self, typical_cfg, bandwidth_series):
        """ProcessPoolExecutor fan-out returns bit-identical objectives."""
        parallel = sweep(
            "bandwidth", typical_cfg, values=[0.5e7, 1.0e7, 1.5e7], workers=2
        )
        assert parallel.objectives == bandwidth_series.objectives
        assert np.array_equal(parallel.x_values, bandwidth_series.x_values)
