"""Tests for the client/server device dataclasses."""

import pytest

from repro.compute.devices import ClientNode, EdgeServer


class TestClientNode:
    def test_paper_defaults(self):
        client = ClientNode(index=0)
        assert client.encryption_cycles == 1e6
        assert client.max_frequency_hz == 3e9
        assert client.max_power_w == 0.2
        assert client.upload_bits == 3e9
        assert client.num_tokens == 160.0
        assert client.tokens_per_sample == 10.0
        assert client.min_entanglement_rate == 0.5

    def test_frozen(self):
        client = ClientNode(index=0)
        with pytest.raises(AttributeError):
            client.max_power_w = 1.0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            ClientNode(index=-1)

    def test_nonpositive_parameters_rejected(self):
        with pytest.raises(ValueError):
            ClientNode(index=0, max_power_w=0.0)
        with pytest.raises(ValueError):
            ClientNode(index=0, privacy_weight=-0.1)
        with pytest.raises(ValueError):
            ClientNode(index=0, upload_bits=0.0)


class TestEdgeServer:
    def test_paper_defaults(self):
        server = EdgeServer()
        assert server.total_frequency_hz == 20e9
        assert server.total_bandwidth_hz == 10e6
        assert server.switched_capacitance == 1e-28

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            EdgeServer(total_frequency_hz=0.0)
        with pytest.raises(ValueError):
            EdgeServer(total_bandwidth_hz=-1.0)
