"""Tests for the CPU-cycle cost curves (Eq. 29-31)."""

import numpy as np
import pytest

from repro.compute.cost_models import (
    CostModel,
    PAPER_LAMBDA_SET,
    f_cmp_paper,
    f_eval_paper,
    paper_cost_model,
)
from repro.crypto.security import paper_msl


class TestPaperCurves:
    def test_eq29_values(self):
        assert f_eval_paper(2**15) == pytest.approx(0.012 * (32768 + 64500) ** 2)
        assert f_eval_paper(2**17) == pytest.approx(0.012 * (131072 + 64500) ** 2)

    def test_eq31_values(self):
        assert f_cmp_paper(2**15) == pytest.approx(8917959.4 * 32768 - 51292440000)
        assert f_cmp_paper(2**16) == pytest.approx(8917959.4 * 65536 - 51292440000)

    def test_curves_increasing_on_lambda_set(self):
        evals = [f_eval_paper(v) for v in PAPER_LAMBDA_SET]
        cmps = [f_cmp_paper(v) for v in PAPER_LAMBDA_SET]
        assert evals == sorted(evals)
        assert cmps == sorted(cmps)

    def test_cmp_negative_below_domain(self):
        # The fit is only valid on the paper's λ-set; below ~5751 it is negative.
        assert f_cmp_paper(4096) < 0

    def test_array_input(self):
        out = f_eval_paper(np.array([2**15, 2**16]))
        assert out.shape == (2,)


class TestCostModel:
    def test_paper_model_lambda_set(self):
        model = paper_cost_model()
        assert model.lambda_set == (2**15, 2**16, 2**17)

    def test_server_cycles_sum(self):
        model = paper_cost_model()
        lam = 2**15
        assert model.server_cycles_per_sample(lam) == pytest.approx(
            f_cmp_paper(lam) + f_eval_paper(lam)
        )

    def test_validate_lambda(self):
        model = paper_cost_model()
        assert model.validate_lambda(2**16) == 2**16
        with pytest.raises(ValueError, match="admissible"):
            model.validate_lambda(2**14)

    def test_msl_defaults_to_paper_curve(self):
        model = paper_cost_model()
        assert model.msl_bits(2**15) == pytest.approx(paper_msl(2**15))

    def test_rejects_unsorted_lambda_set(self):
        with pytest.raises(ValueError, match="sorted"):
            CostModel(lambda_set=(2**16, 2**15))

    def test_rejects_empty_lambda_set(self):
        with pytest.raises(ValueError, match="empty"):
            CostModel(lambda_set=())

    def test_rejects_negative_cost_domain(self):
        # λ=4096 makes f_cmp negative: constructor must refuse.
        with pytest.raises(ValueError, match="positive"):
            CostModel(lambda_set=(4096,))

    def test_custom_curves(self):
        model = CostModel(
            eval_cycles=lambda lam: 10.0 * lam,
            cmp_cycles=lambda lam: 20.0 * lam,
            msl_bits=lambda lam: 0.001 * lam,
            lambda_set=(1024, 2048),
        )
        assert model.server_cycles_per_sample(1024) == pytest.approx(30.0 * 1024)
