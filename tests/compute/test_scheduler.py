"""Tests for the partitioned server scheduler (Eq. 13/15 validation)."""

import numpy as np
import pytest

from repro.compute.scheduler import (
    ClientSchedule,
    PartitionedServerScheduler,
    SampleJob,
    jobs_from_uplink,
)


class TestBasicExecution:
    def test_single_job(self):
        sched = PartitionedServerScheduler([1e9])
        jobs = [SampleJob(0, 0.0, 2e9)]
        out = sched.run(jobs)
        assert out[0].completion_times_s == (2.0,)

    def test_fifo_queueing(self):
        sched = PartitionedServerScheduler([1e9])
        jobs = [SampleJob(0, 0.0, 1e9), SampleJob(0, 0.0, 1e9)]
        out = sched.run(jobs)
        assert out[0].completion_times_s == (1.0, 2.0)

    def test_idle_gap_respected(self):
        sched = PartitionedServerScheduler([1e9])
        jobs = [SampleJob(0, 0.0, 1e9), SampleJob(0, 5.0, 1e9)]
        out = sched.run(jobs)
        assert out[0].completion_times_s == (1.0, 6.0)
        assert out[0].busy_time_s == pytest.approx(2.0)

    def test_partitions_are_independent(self):
        sched = PartitionedServerScheduler([1e9, 2e9])
        jobs = [SampleJob(0, 0.0, 2e9), SampleJob(1, 0.0, 2e9)]
        out = sched.run(jobs)
        assert out[0].makespan_s == pytest.approx(2.0)
        assert out[1].makespan_s == pytest.approx(1.0)

    def test_unknown_client_rejected(self):
        sched = PartitionedServerScheduler([1e9])
        with pytest.raises(ValueError, match="unknown client"):
            sched.run([SampleJob(3, 0.0, 1e9)])

    def test_17h_enforced(self):
        with pytest.raises(ValueError, match="17h"):
            PartitionedServerScheduler([15e9, 10e9], total_frequency_hz=20e9)


class TestEq13Validation:
    def test_simultaneous_arrivals_match_eq13_exactly(self, typical_cfg):
        """With all samples at t=0 the queue reproduces Eq. 13 bit-for-bit."""
        cycles_per_sample = typical_cfg.cost_model.server_cycles_per_sample(2**15)
        n_samples = 16  # d_cmp / ϱ = 160 / 10
        f_s = 2e9
        sched = PartitionedServerScheduler([f_s])
        jobs = [SampleJob(0, 0.0, cycles_per_sample) for _ in range(n_samples)]
        makespan = sched.run(jobs)[0].makespan_s
        assert makespan == pytest.approx(
            sched.eq13_delay(0, cycles_per_sample * n_samples)
        )

    def test_eq15_sum_is_upper_bound_for_batch_arrivals(self):
        """T_tr + T_cmp (the paper's serial model) equals the batch makespan."""
        sched = PartitionedServerScheduler([1e9])
        t_tr = 10.0
        jobs = jobs_from_uplink(0, 8, 1e9, uplink_finish_time_s=t_tr)
        makespan = sched.makespan(jobs)
        assert makespan == pytest.approx(t_tr + 8.0)

    def test_streaming_overlap_beats_serial_model(self):
        """Letting samples stream during the upload strictly improves on the
        paper's serialised phases when transmission dominates."""
        sched = PartitionedServerScheduler([1e9])
        t_tr = 100.0
        serial = sched.makespan(jobs_from_uplink(0, 8, 1e9, uplink_finish_time_s=t_tr))
        streamed = sched.makespan(
            jobs_from_uplink(0, 8, 1e9, uplink_finish_time_s=t_tr, streaming=True)
        )
        assert streamed < serial
        # And never better than max(T_tr, T_cmp): the true lower bound.
        assert streamed >= max(t_tr, 8.0) - 1e-9

    def test_quhe_allocation_delay_consistent(self, typical_cfg, quhe_result):
        """The optimizer's reported T_cmp matches the simulated queue."""
        alloc = quhe_result.allocation
        cycles = typical_cfg.server_cycle_demand(alloc.lam)
        sched = PartitionedServerScheduler(
            alloc.f_s, total_frequency_hz=typical_cfg.server.total_frequency_hz
        )
        for n in range(typical_cfg.num_clients):
            jobs = [SampleJob(n, 0.0, cycles[n])]
            makespan = sched.run(jobs)[n].makespan_s
            assert makespan == pytest.approx(quhe_result.metrics.cmp_delay[n], rel=1e-9)


class TestValidation:
    def test_job_validation(self):
        with pytest.raises(ValueError):
            SampleJob(0, -1.0, 1e9)
        with pytest.raises(ValueError):
            SampleJob(0, 0.0, 0.0)

    def test_uplink_helper_validation(self):
        with pytest.raises(ValueError):
            jobs_from_uplink(0, 0, 1e9, uplink_finish_time_s=1.0)
        with pytest.raises(ValueError):
            jobs_from_uplink(0, 1, 1e9, uplink_finish_time_s=-1.0)

    def test_empty_jobs_zero_makespan(self):
        assert PartitionedServerScheduler([1e9]).makespan([]) == 0.0
