"""Tests for the delay/energy formulas (Eq. 7-8, 13-14)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.compute.energy import (
    computation_delay,
    computation_energy,
    encryption_delay,
    encryption_energy,
)


class TestEncryption:
    def test_eq7_delay(self):
        assert encryption_delay(1e6, 3e9) == pytest.approx(1e6 / 3e9)

    def test_eq8_energy(self):
        assert encryption_energy(1e-28, 1e6, 3e9) == pytest.approx(1e-28 * 1e6 * 9e18)

    def test_paper_magnitudes(self):
        # With the paper's constants the client encryption energy is ~0.9 mJ.
        assert encryption_energy(1e-28, 1e6, 3e9) == pytest.approx(9e-4)

    def test_delay_decreases_with_frequency(self):
        assert encryption_delay(1e6, 3e9) < encryption_delay(1e6, 1e9)

    def test_energy_increases_with_frequency(self):
        assert encryption_energy(1e-28, 1e6, 3e9) > encryption_energy(1e-28, 1e6, 1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            encryption_delay(1e6, 0.0)
        with pytest.raises(ValueError):
            encryption_delay(-1.0, 1e9)
        with pytest.raises(ValueError):
            encryption_energy(0.0, 1e6, 1e9)

    @given(
        st.floats(min_value=1e3, max_value=1e9),
        st.floats(min_value=1e6, max_value=1e10),
    )
    def test_delay_energy_frequency_tradeoff(self, cycles, freq):
        """Raising f cuts delay but costs quadratically more energy."""
        d1 = encryption_delay(cycles, freq)
        d2 = encryption_delay(cycles, freq * 2)
        e1 = encryption_energy(1e-28, cycles, freq)
        e2 = encryption_energy(1e-28, cycles, freq * 2)
        assert d2 == pytest.approx(d1 / 2)
        assert e2 == pytest.approx(e1 * 4)


class TestComputation:
    def test_eq13_delay(self):
        # (f_cmp + f_eval)·d_cmp / (ϱ·f_s)
        assert computation_delay(2.41e11, 160, 10, 3.33e9) == pytest.approx(
            2.41e11 * 160 / (10 * 3.33e9)
        )

    def test_eq14_energy(self):
        assert computation_energy(1e-28, 2.41e11, 160, 10, 3.33e9) == pytest.approx(
            1e-28 * 2.41e11 * 160 * (3.33e9) ** 2 / 10
        )

    def test_array_broadcasting(self):
        delays = computation_delay(
            np.array([1e11, 2e11]), 160.0, 10.0, np.array([1e9, 2e9])
        )
        assert delays.shape == (2,)
        assert delays[0] == pytest.approx(1e11 * 16 / 1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            computation_delay(0.0, 160, 10, 1e9)
        with pytest.raises(ValueError):
            computation_delay(1e11, 160, 0.0, 1e9)
        with pytest.raises(ValueError):
            computation_energy(1e-28, 1e11, 160, 10, 0.0)
