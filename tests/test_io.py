"""Tests for JSON serialization of allocations and metrics."""

import json

import numpy as np
import pytest

from repro.core.problem import QuHEProblem
from repro.io import (
    allocation_from_dict,
    allocation_to_dict,
    load_allocation,
    load_result,
    metrics_from_dict,
    metrics_to_dict,
    registered_kinds,
    result_from_dict,
    result_to_dict,
    save_allocation,
    save_result,
)


class TestAllocationRoundtrip:
    def test_dict_roundtrip(self, quhe_result):
        alloc = quhe_result.allocation
        restored = allocation_from_dict(allocation_to_dict(alloc))
        assert np.allclose(restored.phi, alloc.phi)
        assert np.allclose(restored.w, alloc.w)
        assert np.allclose(restored.lam, alloc.lam)
        assert np.allclose(restored.p, alloc.p)
        assert np.allclose(restored.b, alloc.b)
        assert np.allclose(restored.f_c, alloc.f_c)
        assert np.allclose(restored.f_s, alloc.f_s)
        assert restored.T == pytest.approx(alloc.T)

    def test_file_roundtrip(self, quhe_result, tmp_path):
        path = tmp_path / "allocation.json"
        save_allocation(quhe_result.allocation, path)
        restored = load_allocation(path)
        assert np.allclose(restored.phi, quhe_result.allocation.phi)

    def test_restored_allocation_reproduces_objective(
        self, typical_cfg, quhe_result, tmp_path
    ):
        path = tmp_path / "allocation.json"
        save_allocation(quhe_result.allocation, path)
        restored = load_allocation(path)
        problem = QuHEProblem(typical_cfg)
        assert problem.objective(restored) == pytest.approx(quhe_result.objective)

    def test_metrics_embedded(self, quhe_result, tmp_path):
        path = tmp_path / "with_metrics.json"
        save_allocation(quhe_result.allocation, path, metrics=quhe_result.metrics)
        payload = json.loads(path.read_text())
        assert payload["metrics"]["objective"] == pytest.approx(quhe_result.objective)
        assert len(payload["metrics"]["per_node"]["tr_delay"]) == 6

    def test_lam_serialized_as_ints(self, quhe_result):
        data = allocation_to_dict(quhe_result.allocation)
        assert all(isinstance(v, int) for v in data["lam"])


class TestResultCodecs:
    """The generic codec layer added for the scenario registry."""

    def test_every_experiment_kind_registered(self):
        kinds = registered_kinds()
        for expected in (
            "allocation", "metrics", "quhe_result", "stage1_result",
            "stage1_method_comparison", "optimality_study",
            "convergence_traces", "stage_call_report", "method_comparison",
            "fig5_bundle", "sweep_series", "sweep_set", "ablation_suite",
            "dynamic_study", "pipeline_report", "report_bundle",
            "simulation_result", "adaptive_sim_study", "campaign_result",
        ):
            assert expected in kinds

    def test_metrics_roundtrip(self, quhe_result):
        payload = result_to_dict(quhe_result.metrics)
        restored = result_from_dict(payload)
        assert restored.objective == pytest.approx(quhe_result.metrics.objective)
        assert np.allclose(restored.tr_delay, quhe_result.metrics.tr_delay)

    def test_quhe_result_roundtrip(self, quhe_result):
        payload = result_to_dict(quhe_result)
        assert payload["kind"] == "quhe_result"
        restored = result_from_dict(payload)
        assert restored.objective == pytest.approx(quhe_result.objective)
        assert restored.converged == quhe_result.converged
        assert restored.stage2.nodes_explored == quhe_result.stage2.nodes_explored
        assert np.allclose(restored.stage1.phi, quhe_result.stage1.phi)
        assert result_to_dict(restored) == payload

    def test_file_roundtrip(self, quhe_result, tmp_path):
        path = save_result(quhe_result, tmp_path / "result.json")
        restored = load_result(path)
        assert restored.objective == pytest.approx(quhe_result.objective)

    def test_unregistered_type_rejected(self):
        with pytest.raises(TypeError, match="no codec"):
            result_to_dict(object())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown result kind"):
            result_from_dict({"kind": "nonsense", "format_version": 1})

    def test_wrong_version_rejected(self, quhe_result):
        payload = result_to_dict(quhe_result)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            result_from_dict(payload)


class TestValidation:
    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            allocation_from_dict({"kind": "metrics", "format_version": 1})

    def test_wrong_version_rejected(self, quhe_result):
        data = allocation_to_dict(quhe_result.allocation)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            allocation_from_dict(data)

    def test_missing_field_rejected(self, quhe_result):
        data = allocation_to_dict(quhe_result.allocation)
        del data["phi"]
        with pytest.raises(ValueError, match="missing"):
            allocation_from_dict(data)

    def test_file_without_allocation_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="no 'allocation'"):
            load_allocation(path)
