"""Shared fixtures.

Heavy objects (configs, Stage-1 solutions, QuHE runs, CKKS contexts) are
session-scoped: they are deterministic for a fixed seed, and reusing them
keeps the several-hundred-test suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import QuHE, paper_config
from repro.core.stage1 import Stage1Solver
from repro.crypto.ckks import CKKSContext


@pytest.fixture(scope="session")
def paper_cfg():
    """The paper's configuration with the seed-0 channel realization."""
    return paper_config(seed=0)


@pytest.fixture(scope="session")
def typical_cfg():
    """A representative realization without deep fades (experiment default)."""
    return paper_config(seed=2)


@pytest.fixture(scope="session")
def stage1_solution(paper_cfg):
    """Stage-1 optimum on the paper configuration (matches Tables V/VI)."""
    return Stage1Solver(paper_cfg).solve()


@pytest.fixture(scope="session")
def quhe_result(typical_cfg):
    """A full QuHE run on the typical configuration."""
    return QuHE(typical_cfg).solve()


@pytest.fixture(scope="session")
def ckks():
    """A small, fast CKKS context shared by crypto tests."""
    return CKKSContext(ring_degree=32, scale_bits=22, base_modulus_bits=30, depth=3, seed=123)


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(42)
