"""Self-healing serving soak: crash/hang storms, drain, no lost results.

Claims, per docs/serving.md:

* a seeded ``serve.worker`` crash/hang storm against supervised workers,
  driven by retrying clients, never wedges the daemon and keeps
  availability at the floor — the supervisor respawns workers and
  re-dispatches their batches (``after=1`` makes each fresh worker's
  first batch safe, so recovery is deterministic, not luck);
* payloads produced by supervised workers under the storm are
  byte-identical to a direct ``SolverService`` solve through the shared
  sqlite cache;
* the ``serve.drain`` seam can delay a graceful drain but never abort
  it — adversarial plans included;
* SIGTERM against the real ``repro serve`` process drains gracefully:
  every in-flight request is answered, the daemon exits 0, and the
  results survive in the cache.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule

pytestmark = pytest.mark.chaos

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.clear()
    yield
    faults.clear()


class TestCrashStormSoak:
    def test_mixed_storm_keeps_availability_and_heals(self):
        """Crash+hang storm with retrying clients: nothing is lost.

        ``distinct=1, coalesce=False, use_cache=False`` pins batch
        composition (so the byte-identity verification stays valid) while
        forcing every request through the worker pool.
        """
        from repro.serve.bench import run_serve_bench

        result = run_serve_bench(
            clients=8, duration=1.5, distinct=1, seed=2,
            use_cache=False, coalesce=False, max_queue=4096,
            workers=2, batch_deadline_s=1.0, max_restarts=10_000,
            crash_rate=0.4, hang_rate=0.15, retry=True,
        )
        assert result.worker_restarts >= 1, "the storm never fired"
        assert result.availability >= 0.99
        assert result.byte_identical
        assert result.requests > 0


class TestByteIdentityUnderFaults:
    def test_supervised_payloads_survive_a_crash_byte_for_byte(self, tmp_path):
        """A worker crash mid-batch costs a retry, never result fidelity.

        The second solve's batch kills its worker (``after=1`` spares the
        first); the supervisor's respawn + individual re-dispatch answers
        it anyway, and both payloads must come back byte-identical from a
        direct service sharing the daemon's sqlite cache.
        """
        from repro import io as repro_io
        from repro.api.service import SolverService
        from repro.serve import (
            AllocationServer,
            ConfigSpec,
            ServeClient,
            ServeSettings,
            SqliteResultCache,
        )

        db = str(tmp_path / "cache.db")
        specs = [
            ConfigSpec(seed=2),
            ConfigSpec(seed=2, total_bandwidth_hz=1.25e6),
        ]
        plan = FaultPlan(seed=5, rules=(
            FaultRule(seam="serve.worker", kind="crash", probability=1.0,
                      after=1, max_fires=1),
        ))

        async def main():
            server = AllocationServer(ServeSettings(
                socket_path=str(tmp_path / "soak.sock"), cache_db=db,
                workers=1,
            ))
            await server.start()
            try:
                client = await ServeClient.connect(
                    socket_path=server.settings.socket_path
                )
                try:
                    payloads = []
                    for spec in specs:
                        response = await client.solve(spec)
                        response.raise_for_error()
                        payloads.append(response.result)
                    health = await client.health()
                finally:
                    await client.close()
                return payloads, health
            finally:
                await server.stop()

        with plan.activate():  # before start(): workers inherit at fork
            payloads, health = asyncio.run(main())
        assert health["supervisor"]["worker_restarts"] == 1
        direct = SolverService(cache=SqliteResultCache(db))
        for spec, payload in zip(specs, payloads):
            expected = repro_io.result_to_dict(direct.solve(spec.build()))
            assert json.dumps(payload, sort_keys=True) == json.dumps(
                expected, sort_keys=True
            )


class TestPostStormCleanRun:
    def test_clean_run_after_the_storm_matches_golden_digest(self, tmp_path):
        """A spent storm leaves no residue in the serving numerics.

        After a crash storm (budget exhausted, plan cleared), a clean
        daemon solve must hash to the same golden digest as a never-faulted
        direct batched solve — wall-clock fields excluded, everything else
        bit-for-bit.
        """
        import hashlib

        from repro import io as repro_io
        from repro.api.service import SolverService
        from repro.serve import (
            AllocationServer,
            ConfigSpec,
            ServeClient,
            ServeSettings,
        )

        spec = ConfigSpec(seed=2)

        def scrub(payload):
            return {
                key: scrub(value) if isinstance(value, dict) else value
                for key, value in payload.items()
                if key != "runtime_s"
            }

        def digest(payload):
            return hashlib.sha256(
                json.dumps(scrub(payload), sort_keys=True).encode()
            ).hexdigest()

        plan = FaultPlan(seed=5, rules=(
            FaultRule(seam="serve.worker", kind="crash", probability=1.0,
                      after=1, max_fires=1),
        ))

        async def storm_then_clean():
            server = AllocationServer(ServeSettings(
                socket_path=str(tmp_path / "clean.sock"), workers=1,
            ))
            await server.start()
            try:
                client = await ServeClient.connect(
                    socket_path=server.settings.socket_path
                )
                try:
                    warm = await client.solve(spec, use_cache=False)
                    warm.raise_for_error()           # hit 1: skipped
                    stormed = await client.solve(spec, use_cache=False)
                    stormed.raise_for_error()        # hit 2: crash + heal
                    health = await client.health()
                finally:
                    await client.close()
                return stormed.result, health
            finally:
                await server.stop()

        with plan.activate():
            stormed_payload, health = asyncio.run(storm_then_clean())
        assert health["supervisor"]["worker_restarts"] == 1
        assert faults.active() is None  # no leaked plan after the storm

        golden = repro_io.result_to_dict(
            SolverService(cache_size=0).solve_many(
                [spec.build()], backend="batched", use_cache=False
            )[0]
        )
        assert digest(stormed_payload) == digest(golden)


class TestDrainSeam:
    def _settings(self, tmp_path, **overrides):
        from repro.serve import ServeSettings

        base = dict(socket_path=str(tmp_path / "drain.sock"))
        base.update(overrides)
        return ServeSettings(**base)

    def test_exception_kinds_cannot_abort_the_drain(self, tmp_path):
        from repro.serve import AllocationServer

        plan = FaultPlan(seed=5, rules=(
            FaultRule(seam="serve.drain", kind="raise", probability=1.0),
        ))

        async def main():
            server = AllocationServer(self._settings(tmp_path))
            await server.start()
            with plan.activate():
                await asyncio.wait_for(server.drain(), timeout=15)
            return server

        server = asyncio.run(main())
        assert server.stats["faults_injected"] == 1
        assert server._terminated.is_set()

    def test_hang_delay_is_bounded_by_the_drain_timeout(self, tmp_path):
        from repro.serve import AllocationServer

        plan = FaultPlan(seed=5, rules=(
            FaultRule(seam="serve.drain", kind="hang", probability=1.0,
                      delay_s=60.0),
        ))

        async def main():
            server = AllocationServer(
                self._settings(tmp_path, drain_timeout_s=0.5)
            )
            await server.start()
            loop = asyncio.get_running_loop()
            started = loop.time()
            with plan.activate():
                await asyncio.wait_for(server.drain(), timeout=15)
            return loop.time() - started

        elapsed = asyncio.run(main())
        # The 60s hang was clipped to the 0.5s drain budget.
        assert elapsed < 10.0


class TestSigtermDrain:
    def test_real_daemon_answers_inflight_work_then_exits_zero(self, tmp_path):
        """SIGTERM mid-load against the actual CLI process.

        Requests already on the wire when the signal lands must all be
        answered (none shed, none dropped), the process must exit 0, and
        the solved payloads must survive in the sqlite cache.
        """
        from repro.serve import ConfigSpec, ServeClient, SqliteResultCache

        sock = str(tmp_path / "daemon.sock")
        db = str(tmp_path / "daemon.db")
        env = dict(os.environ, PYTHONPATH=SRC)
        env.pop(faults.ENV_VAR, None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket", sock,
             "--cache-db", db, "--workers", "1", "--max-wait-ms", "100"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while not os.path.exists(sock):
                assert proc.poll() is None, proc.communicate()[1]
                assert time.monotonic() < deadline, "daemon never bound"
                time.sleep(0.05)

            specs = [
                ConfigSpec(seed=2, total_bandwidth_hz=1e6 + i * 2.5e5)
                for i in range(4)
            ]

            async def drive():
                client = await ServeClient.connect(socket_path=sock)
                try:
                    solves = [
                        asyncio.ensure_future(client.solve(spec))
                        for spec in specs
                    ]
                    await asyncio.sleep(0.05)  # requests are now in flight
                    proc.send_signal(signal.SIGTERM)
                    return await asyncio.gather(*solves)
                finally:
                    await client.close()

            responses = asyncio.run(drive())
            for response in responses:
                response.raise_for_error()
            _, stderr = proc.communicate(timeout=60)
            assert proc.returncode == 0, stderr
            assert "drained, shut down" in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        cache = SqliteResultCache(db)
        assert len(cache) == len(specs)
