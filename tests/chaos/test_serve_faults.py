"""Chaos coverage for the ``serve.request`` fault seam.

Claims, per docs/serving.md: injected faults at the request seam become
taxonomy-coded error *responses* — the daemon never dies and is never
wedged; a ``hang`` delays only the affected request; a ``crash`` kills only
the affected client's connection; and once a rule's budget is spent, clean
requests on the *same socket* succeed.
"""

import asyncio

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.serve import (
    AllocationServer,
    ConfigSpec,
    ServeClient,
    ServeSettings,
)

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.clear()
    yield
    faults.clear()


def _plan(kind: str, *, max_fires: int = 1, delay_s: float = 0.0) -> FaultPlan:
    return FaultPlan(seed=11, rules=(
        FaultRule(seam="serve.request", kind=kind, probability=1.0,
                  max_fires=max_fires, delay_s=delay_s),
    ))


async def _run_under_plan(tmp_path, body):
    server = AllocationServer(
        ServeSettings(socket_path=str(tmp_path / "chaos.sock"))
    )
    await server.start()
    try:
        client = await ServeClient.connect(
            socket_path=server.settings.socket_path
        )
        try:
            return await body(server, client)
        finally:
            await client.close()
    finally:
        await server.stop()


@pytest.mark.parametrize("kind,expected_type,expected_code", [
    ("raise", "FaultInjected", 9),
    ("io_error", "TransientIOError", 7),
    ("solver_fail", "SolverError", 3),
])
def test_exception_kinds_become_taxonomy_error_responses(
    tmp_path, kind, expected_type, expected_code
):
    faults.install(_plan(kind))

    async def body(server, client):
        faulted = await client.solve(ConfigSpec(seed=2))
        assert not faulted.ok
        assert faulted.error["type"] == expected_type
        assert faulted.error["exit_code"] == expected_code
        assert server.stats["faults_injected"] == 1
        # Budget spent: a clean request on the same socket succeeds.
        clean = await client.solve(ConfigSpec(seed=2))
        clean.raise_for_error()
        assert clean.result["kind"] == "quhe_result"

    asyncio.run(_run_under_plan(tmp_path, body))


def test_hang_delays_only_the_affected_request(tmp_path):
    faults.install(_plan("hang", delay_s=0.3))

    async def body(server, client):
        loop = asyncio.get_running_loop()
        start = loop.time()
        # The hung request and a clean ping race; the ping must not wait
        # for the injected delay (requests are handled concurrently).
        hung_task = asyncio.ensure_future(client.solve(ConfigSpec(seed=2)))
        await asyncio.sleep(0.02)
        assert await client.ping()
        ping_elapsed = loop.time() - start
        assert ping_elapsed < 0.25, "a hang must not wedge other requests"
        hung = await hung_task
        hung.raise_for_error()
        assert loop.time() - start >= 0.3

    asyncio.run(_run_under_plan(tmp_path, body))


def test_crash_kills_the_connection_not_the_daemon(tmp_path):
    faults.install(_plan("crash"))

    async def body(server, client):
        with pytest.raises(ConnectionError):
            (await client.solve(ConfigSpec(seed=2))).raise_for_error()
        # The daemon survives: a fresh connection on the same socket works.
        fresh = await ServeClient.connect(
            socket_path=server.settings.socket_path
        )
        try:
            assert await fresh.ping()
            clean = await fresh.solve(ConfigSpec(seed=2))
            clean.raise_for_error()
        finally:
            await fresh.close()

    asyncio.run(_run_under_plan(tmp_path, body))


def test_fault_storm_never_wedges_the_server(tmp_path):
    """A probabilistic mixed-kind storm: every request gets *an* answer
    (or a dead connection), and after the storm the daemon still serves."""
    faults.install(FaultPlan(seed=7, rules=(
        FaultRule(seam="serve.request", kind="raise", probability=0.4,
                  max_fires=6),
        FaultRule(seam="serve.request", kind="io_error", probability=0.4,
                  max_fires=6),
        FaultRule(seam="serve.request", kind="hang", delay_s=0.01,
                  probability=0.4, max_fires=6),
    )))

    async def body(server, client):
        spec = ConfigSpec(seed=2)
        answered = 0
        for _ in range(24):
            response = await asyncio.wait_for(client.solve(spec), timeout=30)
            answered += 1
            if not response.ok:
                assert response.error["type"] in (
                    "FaultInjected", "TransientIOError",
                )
        assert answered == 24
        faults.clear()
        clean = await client.solve(spec)
        clean.raise_for_error()

    asyncio.run(_run_under_plan(tmp_path, body))
