"""Chaos suite: campaigns under fault matrices, storms, and degradation.

Run with ``pytest -m chaos`` (the CI chaos job adds ``--timeout`` from
pytest-timeout as a hang backstop; locally the tests are fast and
deterministic without it).  The load-bearing claims, per docs/robustness.md:

* a campaign executed under a fault matrix quarantines what it must, keeps
  running, **reports** every hole — and a fault-free resume converges to an
  ``aggregate.json`` byte-identical to a never-faulted run;
* transient artifact faults are absorbed entirely by the retry layer (no
  quarantine, same bytes);
* injected event storms are deterministic — same plan, same trace digest —
  and clean golden digests stay green around them;
* an injected Stage-3 failure degrades to the scalar fallback
  (``degraded=True``) instead of crashing, with the objective intact.

Byte-identity matrices deliberately avoid ``solver_fail``/``nan`` rules:
degradation switches the solve to SLSQP, whose last-ulp numerics differ
from the IPM path, so degraded results are asserted separately.
"""

import json

import pytest

from repro import faults
from repro.campaign import (
    campaign_status,
    demo_spec,
    resume_campaign,
    run_campaign,
)
from repro.campaign.runner import ERROR_FILENAME, FAILED_DIRNAME
from repro.faults import FaultPlan, FaultRule
from repro.sim.engine import Simulator

pytestmark = pytest.mark.chaos

AGGREGATE = "aggregate.json"


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    from repro.api.scenarios import SERVICE

    SERVICE.clear_cache()
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def clean_aggregate_bytes(tmp_path_factory):
    """The never-faulted demo campaign's aggregate.json, byte for byte."""
    out = tmp_path_factory.mktemp("clean-campaign")
    faults.clear()
    result = run_campaign(demo_spec(), out_dir=out)
    assert result.complete and result.cells_failed == 0
    return (out / AGGREGATE).read_bytes()


def _fault_matrix(seed: int) -> FaultPlan:
    """A mixed matrix, safe for byte-identity (no solver-numerics faults).

    ``max_fires`` budgets are chosen so recovery is guaranteed: artifact
    writes get 3 attempts per file (``_SAVE_RETRY``), so a rule firing at
    most twice can delay but never exhaust a write; cell-level raises can
    at worst quarantine cells, which the fault-free resume then heals.
    """
    return FaultPlan(seed=seed, rules=(
        FaultRule(seam="campaign.cell", kind="raise", probability=0.6,
                  max_fires=3),
        FaultRule(seam="campaign.cell", kind="hang", delay_s=0.01,
                  probability=0.3, max_fires=1),
        FaultRule(seam="artifact.write", kind="torn_write", probability=0.3,
                  max_fires=2),
        FaultRule(seam="artifact.write", kind="io_error", probability=0.2,
                  max_fires=2),
    ))


class TestFaultMatrixResume:
    @pytest.mark.parametrize("fault_seed", [0, 1, 2])
    def test_resume_is_byte_identical(self, fault_seed, tmp_path,
                                      clean_aggregate_bytes):
        out = tmp_path / "faulted"
        with _fault_matrix(fault_seed).activate():
            result = run_campaign(demo_spec(), out_dir=out)
        # Whatever the matrix did, the campaign ran to the end and every
        # hole is reported, never dropped.
        assert result.cells_completed + result.cells_failed == \
            result.cells_total
        assert len(result.failed_cell_ids) == result.cells_failed
        for cell_id in result.failed_cell_ids:
            assert (out / FAILED_DIRNAME / cell_id / ERROR_FILENAME).exists()

        resumed = resume_campaign(out)
        assert resumed.complete and resumed.cells_failed == 0
        assert (out / AGGREGATE).read_bytes() == clean_aggregate_bytes
        # Healed quarantine entries are gone.
        failed_dir = out / FAILED_DIRNAME
        assert not failed_dir.exists() or not any(failed_dir.iterdir())
        status = campaign_status(out)
        assert status.complete and not status.failed_cell_ids

    def test_transient_io_absorbed_without_quarantine(
            self, tmp_path, clean_aggregate_bytes):
        out = tmp_path / "transient"
        plan = FaultPlan(seed=5, rules=(
            FaultRule(seam="artifact.write", kind="io_error", max_fires=2),))
        with plan.activate():
            result = run_campaign(demo_spec(), out_dir=out)
        # The retry layer ate both injected failures; nothing surfaced.
        assert result.complete and result.cells_failed == 0
        assert (out / AGGREGATE).read_bytes() == clean_aggregate_bytes


class TestQuarantineContract:
    def test_persistent_failure_is_quarantined_and_reported(self, tmp_path):
        out = tmp_path / "quarantined"
        spec = demo_spec()
        # Deterministic: the first cell's whole retry budget
        # (max_retries=2) fails; every later attempt is clean.
        plan = FaultPlan(rules=(
            FaultRule(seam="campaign.cell", kind="raise",
                      max_fires=spec.max_retries),))
        with plan.activate():
            result = run_campaign(spec, out_dir=out)
        assert result.cells_failed == 1
        assert result.cells_completed == result.cells_total - 1
        assert result.complete  # completed + quarantined covers the manifest
        assert "QUARANTINED" in result.render()

        cell_id = result.failed_cell_ids[0]
        payload = json.loads(
            (out / FAILED_DIRNAME / cell_id / ERROR_FILENAME).read_text()
        )
        assert payload["kind"] == "campaign_cell_failure"
        assert payload["cell_id"] == cell_id
        assert payload["attempts"] == spec.max_retries
        assert payload["error_chain"][0]["type"] == "FaultInjected"

        # The hole is visible in every reporting surface.
        status = campaign_status(out)
        assert status.failed_cell_ids == [cell_id]
        assert "quarantined" in status.render()
        aggregate = json.loads((out / AGGREGATE).read_text())
        assert aggregate["cells_failed"] == 1
        assert aggregate["failed_cell_ids"] == [cell_id]

        # A fault-free resume heals the cell.
        resumed = resume_campaign(out)
        assert resumed.cells_failed == 0 and resumed.complete


class TestStormDeterminism:
    def _digest(self, plan=None):
        sim = Simulator(seed=7, record_trace=True)
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None, tag="model")
        if plan is not None:
            with plan.activate():
                sim.run(until=10.0)
        else:
            sim.run(until=10.0)
        return sim.trace_digest(), sim.events_processed

    def _storm_plan(self):
        return FaultPlan(seed=3, rules=(
            FaultRule(seam="sim.storm", kind="storm", count=25),))

    def test_same_plan_same_digest(self):
        first = self._digest(self._storm_plan())
        second = self._digest(self._storm_plan())
        assert first == second
        assert first[1] == 3 + 25  # model events + storm burst

    def test_storm_differs_from_clean_deterministically(self):
        clean, storm = self._digest(), self._digest(self._storm_plan())
        assert clean != storm

    def test_golden_digests_stay_green_around_chaos(self):
        # Clean digests are identical before and after a storm run: plan
        # activation never leaks into fault-free simulations.
        before = self._digest()
        self._digest(self._storm_plan())
        after = self._digest()
        assert before == after


class TestSolverDegradation:
    def _baseline(self):
        from repro.core.config import paper_config
        from repro.api.service import SolverService

        return SolverService(), paper_config(seed=2)

    def test_injected_stage3_failure_degrades_not_crashes(self):
        service, config = self._baseline()
        reference = service.solve(config, use_cache=False)
        plan = FaultPlan(rules=(
            FaultRule(seam="solver.stage3", kind="solver_fail"),))
        with plan.activate():
            result = service.solve(config, use_cache=False)
        assert result.degraded and not reference.degraded
        assert result.converged
        # The scalar fallback lands on the same optimum (looser tolerance:
        # SLSQP and the IPM agree to ~1e-6 relative, not to the last ulp).
        assert result.objective == pytest.approx(
            reference.objective, rel=1e-4)

    def test_nan_poison_degrades_via_finite_guard(self):
        service, config = self._baseline()
        plan = FaultPlan(rules=(
            FaultRule(seam="solver.stage3", kind="nan"),))
        with plan.activate():
            result = service.solve(config, use_cache=False)
        assert result.degraded and result.converged
