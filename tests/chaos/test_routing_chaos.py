"""Chaos suite: the routing layer under injected event storms.

The ``sim.storm`` seam floods the event heap with inert events; on a
multi-hop topology with reroute-on-outage active, the claims are:

* storms are deterministic — the same plan on the same routed scenario
  reproduces the same trace digest, and differs from the clean digest
  equally deterministically;
* a storm never corrupts a routing decision: non-fallback routes still
  avoid every down link even while the heap is being flooded;
* once the plan is cleared, a rerun is byte-identical to a never-faulted
  run (no fault state leaks into the RNG streams or the route tables).
"""

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.sim.qnetwork import QuantumNetworkSimulation, SimParams
from repro.sim.routing import RouteController
from repro.sim.topology import config_for_topology, grid_topology

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    from repro.api.scenarios import SERVICE

    SERVICE.clear_cache()
    faults.clear()
    yield
    faults.clear()


def storm_plan(count=25):
    return FaultPlan(
        seed=3, rules=(FaultRule(seam="sim.storm", kind="storm", count=count),)
    )


class RecordingController(RouteController):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = []

    def routes_for(self, link_up):
        routes, fallback = super().routes_for(link_up)
        self.calls.append(
            (tuple(link_up), [r.link_ids for r in routes], list(fallback))
        )
        return routes, fallback


def routed_run(*, plan=None, controller_cls=RouteController):
    """One reroute-on-outage run on a 3x4 grid, optionally under a plan."""
    topo = grid_topology(3, 4, num_clients=3)
    ctrl = controller_cls(topo, k=3, policy="proactive")
    config = config_for_topology(topo, ctrl.initial_routes(), seed=3)
    params = SimParams(
        duration_s=25.0,
        demand_factor=0.8,
        outage_rate=0.3,
        outage_duration_s=8.0,
        reopt_interval_s=10.0,
        strike="any",
    )
    sim = QuantumNetworkSimulation(config, params, seed=3, router=ctrl)
    if plan is None:
        result = sim.run()
    else:
        with plan.activate():
            result = sim.run()
    return result, ctrl


class TestRoutedStorms:
    def test_same_plan_same_digest(self):
        first, _ = routed_run(plan=storm_plan())
        second, _ = routed_run(plan=storm_plan())
        assert first.trace_digest == second.trace_digest
        assert first.reroutes == second.reroutes

    def test_storm_differs_from_clean_deterministically(self):
        clean, _ = routed_run()
        stormy, _ = routed_run(plan=storm_plan())
        assert clean.trace_digest != stormy.trace_digest
        again, _ = routed_run(plan=storm_plan())
        assert stormy.trace_digest == again.trace_digest

    def test_reroutes_never_cross_down_links_under_storm(self):
        """The flood must not perturb routing: every decision made while
        the storm rages still avoids every down link."""
        _, ctrl = routed_run(
            plan=storm_plan(count=50), controller_cls=RecordingController
        )
        assert ctrl.calls, "storm run produced no routing decisions"
        for link_up, route_ids, fallback in ctrl.calls:
            down = {l + 1 for l, up in enumerate(link_up) if not up}
            for ids, dead in zip(route_ids, fallback):
                if not dead:
                    assert not down.intersection(ids)

    def test_clean_rerun_after_faults_clear_is_byte_identical(self):
        baseline, _ = routed_run()
        stormy, _ = routed_run(plan=storm_plan())
        assert stormy.trace_digest != baseline.trace_digest
        faults.clear()
        rerun, _ = routed_run()
        assert rerun.trace_digest == baseline.trace_digest
        assert rerun.deterministic_payload() == baseline.deterministic_payload()
