"""Tests for the end-to-end secure edge pipeline."""

import numpy as np
import pytest

from repro.pipeline import SecureEdgePipeline
from repro.core.stage1 import Stage1Solver
from repro.utils.units import NOISE_PSD_W_PER_HZ


@pytest.fixture(scope="module")
def pipeline(paper_cfg):
    p = SecureEdgePipeline(ckks_ring_degree=32, transcipher_key_length=4, seed=3)
    s1 = Stage1Solver(paper_cfg).solve()
    p.distribute_keys(s1.phi, s1.w, duration_s=500.0, min_bytes=48)
    return p


class TestKeyDistribution:
    def test_pools_filled(self, pipeline):
        pools = pipeline.key_center.pool_summary()
        assert all(size >= 48 for size in pools.values())

    def test_sessions_recorded(self, pipeline):
        assert len(pipeline.key_center.session_history) > 0

    def test_unreachable_target_raises(self, paper_cfg):
        p = SecureEdgePipeline(ckks_ring_degree=32, seed=4)
        s1 = Stage1Solver(paper_cfg).solve()
        with pytest.raises(RuntimeError, match="could not deliver"):
            # A microscopic window cannot deliver 10 kB of key.
            p.distribute_keys(s1.phi, s1.w, duration_s=1e-3, min_bytes=10_000, max_rounds=2)


class TestClientRoundTrip:
    def run(self, pipeline, paper_cfg, client=0, n_features=8):
        rng = np.random.default_rng(17)
        features = rng.normal(size=n_features)
        weights = rng.normal(size=n_features)
        return features, weights, pipeline.run_client(
            client_index=client,
            features=features,
            model_weights=weights,
            model_bias=0.5,
            bandwidth_hz=1e6,
            power_w=0.2,
            channel_gain=float(paper_cfg.channel_gains[client]),
            noise_psd=NOISE_PSD_W_PER_HZ,
        )

    def test_encrypted_inference_matches_plaintext(self, pipeline, paper_cfg):
        features, weights, report = self.run(pipeline, paper_cfg)
        assert np.allclose(report.plaintext_reference, weights * features + 0.5)
        assert report.max_abs_error < 1e-2

    def test_uplink_accounting_positive(self, pipeline, paper_cfg):
        _, _, report = self.run(pipeline, paper_cfg)
        assert report.uplink_bits > 0
        assert report.uplink_delay_s > 0
        assert report.uplink_energy_j == pytest.approx(0.2 * report.uplink_delay_s)

    def test_key_material_consumed(self, pipeline, paper_cfg):
        before = pipeline.key_center.available_bytes(1)
        self.run(pipeline, paper_cfg, client=1)
        after = pipeline.key_center.available_bytes(1)
        assert after == before - 16  # 4 bytes per key coordinate, 4 coordinates

    def test_feature_weight_mismatch_rejected(self, pipeline, paper_cfg):
        with pytest.raises(ValueError, match="align"):
            pipeline.run_client(
                client_index=0,
                features=np.ones(4),
                model_weights=np.ones(5),
                model_bias=0.0,
                bandwidth_hz=1e6,
                power_w=0.1,
                channel_gain=1e-12,
                noise_psd=NOISE_PSD_W_PER_HZ,
            )

    def test_oversized_feature_block_rejected(self, pipeline, paper_cfg):
        n = pipeline.engine.block_size + 1
        with pytest.raises(ValueError, match="features"):
            pipeline.run_client(
                client_index=0,
                features=np.ones(n),
                model_weights=np.ones(n),
                model_bias=0.0,
                bandwidth_hz=1e6,
                power_w=0.1,
                channel_gain=1e-12,
                noise_psd=NOISE_PSD_W_PER_HZ,
            )
