"""Tests for the deterministic fault-injection layer (repro.faults)."""

import json

import pytest

from repro import faults, io as repro_io
from repro.errors import (
    ConfigurationError,
    FaultInjected,
    SolverError,
    TransientIOError,
)
from repro.faults import FaultInjector, FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test leaves the process fault-free (module state + env)."""
    faults.clear()
    yield
    faults.clear()


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultRule(seam="worker.solve", kind="explode")

    def test_empty_seam_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty seam"):
            FaultRule(seam="", kind="raise")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match="probability"):
            FaultRule(seam="s", kind="raise", probability=1.5)

    def test_negative_counters_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(seam="s", kind="raise", max_fires=-1)
        with pytest.raises(ConfigurationError):
            FaultRule(seam="s", kind="raise", after=-1)

    def test_dict_roundtrip(self):
        rule = FaultRule(seam="sim.storm", kind="storm", count=40, span_s=2.0)
        assert FaultRule.from_dict(rule.to_dict()) == rule

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown fault rule"):
            FaultRule.from_dict({"seam": "s", "kind": "raise", "frequency": 2})


class TestFaultPlan:
    def test_dict_roundtrip(self):
        plan = FaultPlan(seed=7, rules=(
            FaultRule(seam="campaign.cell", kind="raise", probability=0.5),
            FaultRule(seam="artifact.write", kind="torn_write", max_fires=0),
        ))
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_io_codec_roundtrip(self):
        plan = FaultPlan(seed=3, rules=(
            FaultRule(seam="worker.solve", kind="crash", after=2),))
        payload = repro_io.result_to_dict(plan)
        assert payload["kind"] == "fault_plan"
        assert repro_io.result_from_dict(payload) == plan

    def test_rules_list_normalized_to_tuple(self):
        plan = FaultPlan(seed=0, rules=[FaultRule(seam="s", kind="raise")])
        assert isinstance(plan.rules, tuple)

    def test_from_dict_tolerates_codec_envelope_keys(self):
        plan = FaultPlan(seed=1)
        data = {**plan.to_dict(), "kind": "fault_plan", "format_version": 1}
        assert FaultPlan.from_dict(data) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown fault plan"):
            FaultPlan.from_dict({"seed": 1, "chaos": True})


class TestLoadPlan:
    def test_from_mapping(self):
        plan = load = faults.load_plan({"seed": 5})
        assert load == FaultPlan(seed=5) and plan.rules == ()

    def test_from_inline_json(self):
        plan = faults.load_plan(
            '{"seed": 2, "rules": [{"seam": "worker.solve", "kind": "raise"}]}'
        )
        assert plan.seed == 2 and plan.rules[0].seam == "worker.solve"

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        original = FaultPlan(seed=9, rules=(
            FaultRule(seam="artifact.read", kind="io_error"),))
        path.write_text(original.to_json())
        assert faults.load_plan(str(path)) == original

    def test_invalid_inline_json(self):
        with pytest.raises(ConfigurationError, match="invalid inline"):
            faults.load_plan("{not json")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            faults.load_plan(str(tmp_path / "absent.json"))

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("[1, 2")
        with pytest.raises(ConfigurationError, match="invalid fault plan"):
            faults.load_plan(str(path))


class TestDeterminism:
    def _hits(self, injector, seam, n):
        return [injector.draw(seam) is not None for _ in range(n)]

    def test_same_plan_same_schedule(self):
        plan = FaultPlan(seed=11, rules=(
            FaultRule(seam="s", kind="raise", probability=0.4, max_fires=0),))
        first = self._hits(FaultInjector(plan), "s", 50)
        second = self._hits(FaultInjector(plan), "s", 50)
        assert first == second
        assert any(first) and not all(first)  # p=0.4 over 50 hits

    def test_seed_changes_schedule(self):
        mk = lambda seed: FaultPlan(seed=seed, rules=(
            FaultRule(seam="s", kind="raise", probability=0.4, max_fires=0),))
        a = self._hits(FaultInjector(mk(1)), "s", 50)
        b = self._hits(FaultInjector(mk(2)), "s", 50)
        assert a != b

    def test_exhausted_rule_still_consumes_draws(self):
        # Rule 1 exhausting max_fires must not shift rule 2's schedule:
        # compare against a plan where rule 1 (same index) never fires.
        probe = FaultRule(seam="s", kind="io_error", probability=0.4,
                          max_fires=0)
        with_burst = FaultPlan(seed=5, rules=(
            FaultRule(seam="s", kind="raise", probability=1.0, max_fires=2),
            probe,
        ))
        without = FaultPlan(seed=5, rules=(
            FaultRule(seam="s", kind="raise", probability=0.0, max_fires=2),
            probe,
        ))
        def probe_fires(plan):
            injector = FaultInjector(plan)
            fires = []
            for _ in range(30):
                rule = injector.draw("s")
                fires.append(rule is not None and rule.kind == "io_error")
            return fires
        a, b = probe_fires(with_burst), probe_fires(without)
        # Drop the two hits rule 1 claims (first-match-wins masks the probe
        # there); everywhere else the probe's schedule must be untouched.
        assert [x for i, x in enumerate(a) if i >= 2] == b[2:]

    def test_max_fires_budget(self):
        plan = FaultPlan(rules=(FaultRule(seam="s", kind="raise",
                                          max_fires=2),))
        injector = FaultInjector(plan)
        hits = [injector.draw("s") for _ in range(5)]
        assert [r is not None for r in hits] == [True, True, False, False,
                                                 False]
        assert injector.fire_counts() == {"s": 2}

    def test_after_phases_fault_in(self):
        plan = FaultPlan(rules=(FaultRule(seam="s", kind="raise", after=3),))
        injector = FaultInjector(plan)
        hits = [injector.draw("s") is not None for _ in range(5)]
        assert hits == [False, False, False, True, False]

    def test_other_seams_untouched(self):
        plan = FaultPlan(rules=(FaultRule(seam="s", kind="raise"),))
        assert FaultInjector(plan).draw("other") is None


class TestFire:
    def test_noop_without_plan(self):
        assert faults.active() is None
        assert faults.fire("worker.solve") is None

    def test_raise_kind(self):
        with FaultPlan(rules=(
                FaultRule(seam="s", kind="raise"),)).activate():
            with pytest.raises(FaultInjected) as err:
                faults.fire("s")
            assert err.value.seam == "s"

    def test_io_error_kind(self):
        with FaultPlan(rules=(
                FaultRule(seam="s", kind="io_error"),)).activate():
            with pytest.raises(TransientIOError):
                faults.fire("s")

    def test_solver_fail_kind(self):
        with FaultPlan(rules=(
                FaultRule(seam="s", kind="solver_fail"),)).activate():
            with pytest.raises(SolverError):
                faults.fire("s")

    def test_hang_kind_sleeps_and_returns_none(self):
        with FaultPlan(rules=(FaultRule(seam="s", kind="hang",
                                        delay_s=0.0),)).activate():
            assert faults.fire("s") is None

    def test_data_kinds_returned_to_seam(self):
        with FaultPlan(rules=(FaultRule(seam="s", kind="torn_write"),
                              )).activate():
            rule = faults.fire("s")
            assert rule is not None and rule.kind == "torn_write"

    def test_activate_clears_on_exit(self):
        import os

        plan = FaultPlan(rules=(FaultRule(seam="s", kind="raise"),))
        with plan.activate():
            assert faults.active() is not None
            assert os.environ.get(faults.ENV_VAR) == plan.to_json()
        assert faults.active() is None
        assert faults.ENV_VAR not in os.environ


class TestEnvPropagation:
    def test_install_exports_env(self, monkeypatch):
        plan = FaultPlan(seed=4, rules=(FaultRule(seam="s", kind="raise"),))
        faults.install(plan)
        import os

        assert json.loads(os.environ[faults.ENV_VAR]) == plan.to_dict()

    def test_worker_lazy_install_from_env(self, monkeypatch):
        # Simulate a fresh worker: no module-level injector, plan only in
        # the environment (as install() in the parent would leave it).
        plan = FaultPlan(seed=4, rules=(FaultRule(seam="s", kind="raise"),))
        faults.clear()
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        injector = faults.active()
        assert injector is not None and injector.plan == plan
        with pytest.raises(FaultInjected):
            faults.fire("s")

    def test_malformed_env_plan_ignored(self, monkeypatch):
        faults.clear()
        monkeypatch.setenv(faults.ENV_VAR, "{broken")
        assert faults.active() is None
        assert faults.fire("s") is None
