"""Tests for unit conversions."""

import numpy as np
import pytest

from repro.utils.units import (
    GHZ,
    MHZ,
    NOISE_PSD_W_PER_HZ,
    db_to_linear,
    dbm_to_watt,
    linear_to_db,
    watt_to_dbm,
)


class TestConversions:
    def test_db_roundtrip(self):
        assert linear_to_db(db_to_linear(13.0)) == pytest.approx(13.0)

    def test_known_values(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(3.0) == pytest.approx(2.0, rel=0.01)
        assert dbm_to_watt(30.0) == pytest.approx(1.0)
        assert dbm_to_watt(0.0) == pytest.approx(1e-3)
        assert watt_to_dbm(0.2) == pytest.approx(23.01, abs=0.01)

    def test_noise_psd_constant(self):
        # -174 dBm/Hz ≈ 3.98e-21 W/Hz.
        assert NOISE_PSD_W_PER_HZ == pytest.approx(3.98e-21, rel=0.01)

    def test_constants(self):
        assert GHZ == 1e9 and MHZ == 1e6

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            watt_to_dbm(-1.0)

    def test_array_inputs(self):
        out = db_to_linear(np.array([0.0, 10.0]))
        assert np.allclose(out, [1.0, 10.0])
