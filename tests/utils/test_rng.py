"""Tests for the RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, sample_log_uniform, spawn_generators


class TestAsGenerator:
    def test_int_seed_deterministic(self):
        assert as_generator(1).random() == as_generator(1).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(as_generator(seq), np.random.Generator)


class TestSpawn:
    def test_children_independent_and_deterministic(self):
        a = [g.random() for g in spawn_generators(7, 3)]
        b = [g.random() for g in spawn_generators(7, 3)]
        assert a == b
        assert len(set(a)) == 3

    def test_zero_children(self):
        assert spawn_generators(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_from_generator(self):
        children = spawn_generators(np.random.default_rng(3), 2)
        assert len(children) == 2


class TestLogUniform:
    def test_within_bounds(self):
        rng = np.random.default_rng(0)
        samples = sample_log_uniform(rng, 1e-3, 1e3, size=1000)
        assert np.all(samples >= 1e-3) and np.all(samples <= 1e3)

    def test_log_spread(self):
        rng = np.random.default_rng(1)
        samples = sample_log_uniform(rng, 1e-6, 1.0, size=50_000)
        # Log-uniform: the median is the geometric mean of the bounds.
        assert np.median(samples) == pytest.approx(1e-3, rel=0.2)

    def test_invalid_bounds(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_log_uniform(rng, -1.0, 1.0)
        with pytest.raises(ValueError):
            sample_log_uniform(rng, 2.0, 1.0)
