"""Tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_same_length,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_probability("p", bad)


class TestCheckInRange:
    def test_closed_interval(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0

    def test_open_boundaries(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 1.0, 2.0, low_open=True)
        with pytest.raises(ValueError):
            check_in_range("x", 2.0, 1.0, 2.0, high_open=True)

    def test_message_shows_interval(self):
        with pytest.raises(ValueError, match=r"\(1.0, 2.0\]"):
            check_in_range("x", 0.5, 1.0, 2.0, low_open=True)


class TestCheckSameLength:
    def test_matching(self):
        assert check_same_length(a=[1, 2], b=(3, 4)) == 2

    def test_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            check_same_length(a=[1], b=[1, 2])

    def test_empty_call(self):
        with pytest.raises(ValueError):
            check_same_length()
