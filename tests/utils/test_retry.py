"""Tests for bounded retries, decorrelated-jitter backoff, and deadlines."""

import random

import pytest

from repro.errors import (
    DeadlineExceeded,
    RetryExhausted,
    TransientIOError,
)
from repro.utils.retry import Deadline, RetryPolicy, retry_call


def _policy(**overrides):
    """Instant, deterministic policy for tests (no real sleeping)."""
    defaults = dict(rng=random.Random(0), sleep=lambda s: None)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_s=1.0, cap_s=0.5)

    def test_backoff_within_decorrelated_jitter_band(self):
        policy = _policy(base_s=0.05, cap_s=2.0)
        previous = policy.base_s
        for _ in range(100):
            nxt = policy.backoff_s(previous)
            assert policy.base_s <= nxt <= min(policy.cap_s, 3.0 * previous)
            previous = nxt

    def test_backoff_capped(self):
        policy = _policy(base_s=0.05, cap_s=0.1)
        assert all(policy.backoff_s(10.0) <= 0.1 for _ in range(20))

    def test_backoff_deterministic_under_seeded_rng(self):
        a = [_policy().backoff_s(0.05) for _ in range(5)]
        b = [_policy().backoff_s(0.05) for _ in range(5)]
        assert a == b

    def test_is_retryable_defaults(self):
        policy = _policy()
        assert policy.is_retryable(TransientIOError("x"))
        assert policy.is_retryable(OSError("x"))
        assert policy.is_retryable(DeadlineExceeded("x"))
        assert not policy.is_retryable(ValueError("x"))


class TestRetryCall:
    def test_success_passthrough(self):
        assert retry_call(lambda: 42, policy=_policy()) == 42

    def test_retries_transient_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientIOError("torn")
            return "ok"

        assert retry_call(flaky, policy=_policy(max_attempts=3)) == "ok"
        assert len(calls) == 3

    def test_exhaustion_raises_with_cause_chain(self):
        def always_torn():
            raise TransientIOError("torn write")

        with pytest.raises(RetryExhausted) as err:
            retry_call(always_torn, policy=_policy(max_attempts=3),
                       what="write x.json")
        assert err.value.attempts == 3
        assert "write x.json" in str(err.value)
        assert isinstance(err.value.__cause__, TransientIOError)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("genuine defect")

        with pytest.raises(ValueError, match="genuine defect"):
            retry_call(broken, policy=_policy(max_attempts=5))
        assert len(calls) == 1

    def test_sleeps_between_attempts_only(self):
        sleeps = []

        def always_torn():
            raise TransientIOError("x")

        with pytest.raises(RetryExhausted):
            retry_call(always_torn,
                       policy=_policy(max_attempts=3, sleep=sleeps.append))
        assert len(sleeps) == 2  # no sleep after the final attempt

    def test_arguments_forwarded(self):
        assert retry_call(lambda a, b=0: a + b, 2, b=3,
                          policy=_policy()) == 5


class TestDeadline:
    def test_remaining_and_expiry(self):
        now = [0.0]
        deadline = Deadline(1.0, clock=lambda: now[0]).start()
        assert deadline.remaining() == pytest.approx(1.0)
        assert not deadline.expired()
        now[0] = 1.5
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded, match="solve.*1s deadline"):
            deadline.check("solve")

    def test_check_passes_inside_budget(self):
        deadline = Deadline(60.0).start()
        deadline.check("fast op")  # must not raise

    def test_deadline_exceeded_is_transient(self):
        # A crossed deadline is retry-eligible: the caller may re-dispatch.
        assert _policy().is_retryable(DeadlineExceeded("hung"))

    def test_attempt_budget_inside_budget_passes(self):
        policy = _policy(max_attempts=2, attempt_budget_s=60.0)
        assert retry_call(lambda: "ok", policy=policy) == "ok"
