"""Tests for the ASCII table renderer."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["h"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159265]])
        assert "3.142" in text

    def test_alignment(self):
        text = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[-1]) == len(lines[-2])

    def test_cell_count_mismatch(self):
        with pytest.raises(ValueError, match="row 0"):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text
