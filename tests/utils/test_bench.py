"""Benchmark-report plumbing: reproducible timestamps (ISSUE 10).

``BENCH_*.json`` files are committed snapshots; a wall-clock
``meta.timestamp`` made every ``--check`` rerun a noisy diff.  With
``SOURCE_DATE_EPOCH`` set (the reproducible-build convention) the stamp
derives from the epoch, so identical results serialize byte-identically.
"""

import json

from repro.utils.bench import BenchResult, _bench_timestamp, write_results


class TestBenchTimestamp:
    def test_source_date_epoch_pins_the_stamp(self, monkeypatch):
        monkeypatch.setenv("SOURCE_DATE_EPOCH", "1700000000")
        assert _bench_timestamp() == "2023-11-14T22:13:20+0000"

    def test_malformed_epoch_falls_back_to_wall_clock(self, monkeypatch):
        monkeypatch.setenv("SOURCE_DATE_EPOCH", "not-an-epoch")
        stamp = _bench_timestamp()
        assert stamp != "not-an-epoch" and "T" in stamp

    def test_unset_epoch_uses_wall_clock(self, monkeypatch):
        monkeypatch.delenv("SOURCE_DATE_EPOCH", raising=False)
        assert "T" in _bench_timestamp()

    def test_reruns_are_byte_stable_under_epoch(self, monkeypatch, tmp_path):
        monkeypatch.setenv("SOURCE_DATE_EPOCH", "1700000000")
        results = [
            BenchResult(
                op="noop", backend="x", params={"k": 1}, reps=3,
                seconds_per_op=0.25,
            )
        ]
        first = write_results(tmp_path / "a.json", results).read_bytes()
        second = write_results(tmp_path / "b.json", results).read_bytes()
        assert first == second
        payload = json.loads(first)
        assert payload["meta"]["timestamp"] == "2023-11-14T22:13:20+0000"
