"""Hardened parallel_map: attribution, watchdog, crash re-dispatch."""

import multiprocessing
import os
import time

import pytest

from repro import faults
from repro.errors import WorkerError
from repro.faults import CRASH_EXIT_STATUS, FaultPlan, FaultRule
from repro.utils.parallel import parallel_map


def _in_worker() -> bool:
    """True inside a pool worker process (False in the test process)."""
    return multiprocessing.parent_process() is not None


def _double(x):
    return 2 * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError(f"bad item {x}")
    return x


def _crash_in_worker(x):
    # Kills the *worker* process only; the serial re-dispatch in the main
    # process takes the normal path and recovers the item.
    if x == 3 and _in_worker():
        os._exit(CRASH_EXIT_STATUS)
    return 2 * x


def _hang_in_worker(x):
    if x == 1 and _in_worker():
        time.sleep(1.0)
    return 2 * x


def _solve_seam(x):
    faults.fire("worker.solve")
    return 2 * x


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.clear()
    yield
    faults.clear()


class TestAttribution:
    def test_serial_failure_names_item(self):
        with pytest.raises(WorkerError) as err:
            parallel_map(_fail_on_three, [0, 1, 2, 3, 4])
        assert err.value.index == 3
        assert err.value.item == "3"
        assert "item 3" in str(err.value) and "ValueError" in str(err.value)
        assert isinstance(err.value.__cause__, ValueError)

    def test_pool_failure_names_item(self):
        with pytest.raises(WorkerError) as err:
            parallel_map(_fail_on_three, [0, 1, 2, 3, 4], workers=2)
        assert err.value.index == 3
        assert isinstance(err.value.__cause__, ValueError)

    def test_long_item_fingerprint_truncated(self):
        def fail(item):
            raise ValueError("boom")

        with pytest.raises(WorkerError) as err:
            parallel_map(fail, [list(range(200))])
        assert len(err.value.item) <= 120
        assert err.value.item.endswith("...")

    def test_worker_error_not_double_wrapped(self):
        def raises_worker_error(x):
            raise WorkerError("already attributed", index=7)

        with pytest.raises(WorkerError) as err:
            parallel_map(raises_worker_error, [0])
        assert err.value.index == 7


class TestCrashRedispatch:
    def test_worker_death_recovered_serially(self):
        items = list(range(6))
        results = parallel_map(_crash_in_worker, items, workers=2)
        assert results == [2 * x for x in items]

    def test_progress_reaches_total_despite_crash(self):
        seen = []
        items = list(range(5))
        parallel_map(_crash_in_worker, items, workers=2,
                     progress=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (5, 5)

    def test_injected_crash_fault_recovered(self, monkeypatch):
        # The plan reaches pool workers via REPRO_FAULTS; each worker's
        # first pass through the worker.solve seam kills it.  The main
        # process must see no injector (workers parse the env themselves)
        # or the serial re-dispatch would crash the test process too.
        plan = FaultPlan(seed=0, rules=(
            FaultRule(seam="worker.solve", kind="crash"),))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        monkeypatch.setattr(faults, "_INJECTOR", None)
        monkeypatch.setattr(faults, "_ENV_SEEN", plan.to_json())
        items = list(range(4))
        assert parallel_map(_solve_seam, items, workers=2) == [
            2 * x for x in items
        ]


class TestWatchdog:
    def test_hung_worker_redispatched(self):
        items = [0, 1, 2, 3]
        start = time.monotonic()
        results = parallel_map(_hang_in_worker, items, workers=2,
                               timeout_s=0.15)
        assert results == [2 * x for x in items]
        # The watchdog must fire well before the 1s injected hang.
        assert time.monotonic() - start < 5.0


class TestSerialEquivalence:
    def test_pool_matches_serial(self):
        items = list(range(8))
        assert parallel_map(_double, items, workers=3) == \
            parallel_map(_double, items)
