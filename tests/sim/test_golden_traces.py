"""Golden-trace regression corpus (tier-1).

Recomputes the event-trace digest of every pinned ``(scenario, seed)``
case and compares it against the committed corpus under
``tests/sim/golden/``.  A mismatch means an RNG-stream or trajectory
change: if intentional, regenerate with
``python scripts/gen_golden_traces.py`` and say so in the commit; if not,
this test just caught a silent behavioural regression (the failure mode
PR 4's bulk-draw refactor had to be property-tested against).
"""

import json
from pathlib import Path

import pytest

from repro.sim.golden import GOLDEN_CASES, GOLDEN_SEEDS, compute_digests

GOLDEN_DIR = Path(__file__).parent / "golden"


def load_corpus(scenario: str) -> dict:
    path = GOLDEN_DIR / f"{scenario}.json"
    assert path.exists(), (
        f"{path} missing; generate it with scripts/gen_golden_traces.py"
    )
    return json.loads(path.read_text())


class TestCorpusShape:
    def test_every_sim_scenario_pinned(self):
        assert set(GOLDEN_CASES) == {
            "sim-keyrate",
            "sim-outage",
            "sim-adaptive",
            "sim-multipath",
            "sim-routing-compare",
        }

    @pytest.mark.parametrize("scenario", sorted(GOLDEN_CASES))
    def test_corpus_file_matches_module_definition(self, scenario):
        """The committed params/seeds are the ones this module would run."""
        corpus = load_corpus(scenario)
        assert corpus["kind"] == "golden_traces"
        assert corpus["format_version"] == 1
        assert corpus["params"] == GOLDEN_CASES[scenario]
        assert set(corpus["digests"]) == {str(s) for s in GOLDEN_SEEDS}
        for entry in corpus["digests"].values():
            for digest in entry.values():
                assert len(digest) == 64 and int(digest, 16) >= 0


@pytest.mark.parametrize("scenario", sorted(GOLDEN_CASES))
def test_recomputed_digests_match_corpus(scenario):
    corpus = load_corpus(scenario)
    for seed in GOLDEN_SEEDS:
        recomputed = compute_digests(scenario, seed)
        pinned = corpus["digests"][str(seed)]
        assert recomputed == pinned, (
            f"{scenario} seed {seed}: event trace diverged from the golden "
            f"corpus ({recomputed} != {pinned}).  If this trajectory change "
            "is intentional, regenerate tests/sim/golden/ with "
            "scripts/gen_golden_traces.py and document why."
        )


def test_disrupted_cases_actually_disrupt():
    """The corpus must cover outages, or it cannot guard those streams."""
    from repro.api.service import SolverService
    from repro.experiments.simulation import run_outage_sim

    params = GOLDEN_CASES["sim-outage"]
    outages = 0
    for seed in GOLDEN_SEEDS:
        result = run_outage_sim(
            seed=seed,
            duration_s=params["duration"],
            outage_rate=params["outage_rate"],
            outage_duration_s=params["outage_duration"],
            demand_factor=params["demand_factor"],
            sample_dt=params["sample_dt"],
            service=SolverService(),
        )
        outages += result.outage_count
    assert outages >= 1
