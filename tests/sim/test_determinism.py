"""Seed determinism: the contract docs/simulation.md promises."""

import pytest

from repro.api.service import SolverService
from repro.core.config import paper_config
from repro.sim import QuantumNetworkSimulation, SimParams, run_adaptive_study


@pytest.fixture(scope="module")
def config():
    return paper_config(seed=2)


@pytest.fixture(scope="module")
def service():
    return SolverService()


DISRUPTED = SimParams(
    duration_s=60.0,
    demand_factor=0.9,
    outage_rate=0.05,
    outage_duration_s=20.0,
    fading_interval_s=15.0,
)


def _run(config, service, seed, params=DISRUPTED):
    return QuantumNetworkSimulation(
        config, params, seed=seed, service=service
    ).run()


class TestSeedDeterminism:
    def test_same_seed_identical_trace_and_result(self, config, service):
        first = _run(config, service, seed=13)
        second = _run(config, service, seed=13)
        assert first.trace_digest == second.trace_digest
        assert first.deterministic_payload() == second.deterministic_payload()

    def test_different_seed_differs(self, config, service):
        first = _run(config, service, seed=13)
        other = _run(config, service, seed=14)
        assert first.trace_digest != other.trace_digest
        assert first.deterministic_payload() != other.deterministic_payload()

    def test_wall_time_excluded_from_deterministic_payload(
        self, config, service
    ):
        payload = _run(config, service, seed=13).deterministic_payload()
        assert "wall_time_s" not in payload
        assert payload["kind"] == "simulation_result"

    def test_adaptive_study_deterministic(self, config, service):
        params = SimParams(
            duration_s=40.0,
            demand_factor=0.9,
            outage_rate=0.05,
            outage_duration_s=15.0,
            fading_interval_s=10.0,
            reopt_interval_s=10.0,
        )
        a = run_adaptive_study(config, params, seed=21, service=service)
        b = run_adaptive_study(config, params, seed=21, service=service)
        assert a.adaptive.trace_digest == b.adaptive.trace_digest
        assert a.static.trace_digest == b.static.trace_digest
        assert a.expected_gain_bits == b.expected_gain_bits

    def test_policies_share_disruption_and_fading_randomness(
        self, config, service
    ):
        """Fair comparison: both policies see the same outage schedule."""
        params = SimParams(
            duration_s=80.0,
            outage_rate=0.05,
            outage_duration_s=20.0,
            reopt_interval_s=20.0,
        )
        study = run_adaptive_study(config, params, seed=23, service=service)
        assert study.adaptive.outage_count >= 1
        assert study.adaptive.outages == study.static.outages
