"""The sim-* scenarios: registry integration, codecs, CLI end-to-end."""

import json

import pytest

from repro.api import get_scenario
from repro.cli import main
from repro.io import (
    registered_kinds,
    result_from_dict,
    result_to_dict,
    save_result,
    load_result,
)
from repro.sim.result import AdaptiveSimStudy, SimulationResult


@pytest.fixture(scope="module")
def keyrate_result():
    return get_scenario("sim-keyrate").execute({"duration": 20.0})


@pytest.fixture(scope="module")
def adaptive_study():
    return get_scenario("sim-adaptive").execute({
        "duration": 40.0,
        "reopt_interval": 15.0,
        "fading_interval": 15.0,
    })


class TestRegistryIntegration:
    def test_sim_scenarios_registered(self):
        for name in ("sim-keyrate", "sim-outage", "sim-adaptive"):
            scenario = get_scenario(name)
            assert scenario.help
            assert "seed" in scenario.param_names

    def test_keyrate_scenario_returns_simulation_result(self, keyrate_result):
        assert isinstance(keyrate_result, SimulationResult)
        assert keyrate_result.duration_s == 20.0
        assert keyrate_result.total_key_bits > 0
        assert get_scenario("sim-keyrate").render(keyrate_result)

    def test_adaptive_scenario_returns_study(self, adaptive_study):
        assert isinstance(adaptive_study, AdaptiveSimStudy)
        assert adaptive_study.reopt_count >= 2
        assert adaptive_study.static.reopt_times == []
        assert get_scenario("sim-adaptive").render(adaptive_study)


class TestCodecs:
    def test_kinds_registered(self):
        kinds = registered_kinds()
        assert "simulation_result" in kinds
        assert "adaptive_sim_study" in kinds

    def test_simulation_result_roundtrip(self, keyrate_result):
        payload = result_to_dict(keyrate_result)
        assert payload["kind"] == "simulation_result"
        assert payload["format_version"] == 1
        restored = result_from_dict(json.loads(json.dumps(payload)))
        assert restored == keyrate_result

    def test_adaptive_study_roundtrip(self, adaptive_study):
        payload = result_to_dict(adaptive_study)
        assert payload["kind"] == "adaptive_sim_study"
        restored = result_from_dict(json.loads(json.dumps(payload)))
        assert restored == adaptive_study
        assert restored.expected_gain_bits == adaptive_study.expected_gain_bits

    def test_file_roundtrip(self, keyrate_result, tmp_path):
        path = save_result(keyrate_result, tmp_path / "sim.json")
        assert load_result(path) == keyrate_result


class TestCli:
    def test_run_sim_outage_json_end_to_end(self, capsys):
        """The acceptance-criterion path: repro run sim-outage --json."""
        assert main([
            "run", "sim-outage", "--set", "duration=30", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "simulation_result"
        restored = result_from_dict(payload)
        assert restored.duration_s == 30.0
        assert restored.events_processed > 10_000

    def test_run_sim_adaptive_out_writes_record(self, tmp_path, capsys):
        assert main([
            "run", "sim-adaptive",
            "--set", "duration=30",
            "--set", "reopt_interval=10",
            "--set", "fading_interval=10",
            "--out", str(tmp_path),
        ]) == 0
        records = list(tmp_path.glob("*/record.json"))
        assert len(records) == 1
        data = json.loads(records[0].read_text())
        assert data["scenario"] == "sim-adaptive"
        assert data["result"]["kind"] == "adaptive_sim_study"

    def test_list_includes_sim_descriptions(self, capsys):
        assert main(["list", "--brief"]) == 0
        out = capsys.readouterr().out
        assert "sim-outage: link outages + transciphering demand" in out
