"""The quantum-network process layer against the analytic models."""

import numpy as np
import pytest

from repro.api.service import SolverService
from repro.core.config import paper_config
from repro.sim import QuantumNetworkSimulation, SimParams
from repro.sim.engine import Simulator
from repro.sim.processes import (
    AllocationState,
    DemandProcess,
    EntanglementSource,
    RouteBuffers,
)


@pytest.fixture(scope="module")
def config():
    return paper_config(seed=2)


@pytest.fixture(scope="module")
def service():
    return SolverService()


@pytest.fixture(scope="module")
def allocation(config, service):
    return service.solve(config).allocation


class TestAllocationState:
    def test_success_prob_is_one_minus_w(self, config, allocation):
        state = AllocationState(config.network, allocation.phi, allocation.w)
        assert state.success_prob == pytest.approx(
            (1.0 - allocation.w).tolist()
        )

    def test_key_rates_match_analytic_formula(self, config, allocation):
        from repro.quantum.werner import end_to_end_werner, secret_key_fraction

        state = AllocationState(config.network, allocation.phi, allocation.w)
        for n, route in enumerate(config.network.routes):
            varpi = end_to_end_werner(allocation.w, route.link_indices)
            assert state.key_rates()[n] == pytest.approx(
                allocation.phi[n] * secret_key_fraction(varpi)
            )

    def test_assignment_shares_sum_to_load_fraction(self, config, allocation):
        state = AllocationState(config.network, allocation.phi, allocation.w)
        capacities = config.network.betas * (1.0 - allocation.w)
        loads = config.network.incidence @ allocation.phi
        for l in range(config.network.num_links):
            thresholds, _ = state.assignment[l]
            if loads[l] > 0:
                assert thresholds[-1] == pytest.approx(
                    min(1.0, loads[l] / capacities[l]), abs=1e-9
                )
            else:
                assert thresholds == []

    def test_update_rejects_wrong_shapes(self, config, allocation):
        state = AllocationState(config.network, allocation.phi, allocation.w)
        with pytest.raises(ValueError, match="do not match the"):
            state.update(allocation.phi[:-1], allocation.w)


class TestRouteBuffers:
    def _tiny_state(self, config, allocation):
        return AllocationState(config.network, allocation.phi, allocation.w)

    def test_delivery_requires_all_slots(self, config, allocation):
        state = self._tiny_state(config, allocation)
        buffers = RouteBuffers(state)
        route = config.network.routes[1]   # multi-hop
        assert route.hop_count >= 2
        buffers.on_pair(1, 0)
        assert buffers.pairs_delivered[1] == 0
        for slot in range(1, route.hop_count):
            buffers.on_pair(1, slot)
        assert buffers.pairs_delivered[1] == 1
        assert buffers.key_bits[1] == pytest.approx(state.skf[1])
        assert all(count == 0 for count in buffers.pending[1])

    def test_pending_cap_drops_surplus(self, config, allocation):
        state = self._tiny_state(config, allocation)
        buffers = RouteBuffers(state, pending_cap=2)
        for _ in range(5):
            buffers.on_pair(0, 0)
        assert buffers.pending[0][0] == 2
        assert buffers.pairs_dropped[0] == 3

    def test_consume_accounts_shortfall(self, config, allocation):
        state = self._tiny_state(config, allocation)
        buffers = RouteBuffers(state)
        buffers.key_bits[0] = 3.0
        served = buffers.consume(0, 5.0)
        assert served == 3.0
        assert buffers.key_bits[0] == 0.0
        assert buffers.demand_bits[0] == 5.0
        assert buffers.served_bits[0] == 3.0
        assert buffers.shortfall_bits[0] == 2.0


class TestEntanglementSource:
    def test_success_rate_concentrates_on_capacity(self, config, allocation):
        """Successful generations per link ≈ β_l (1 - w_l) · duration."""
        state = AllocationState(config.network, allocation.phi, allocation.w)
        buffers = RouteBuffers(state)
        sim = Simulator(seed=3)
        sim.add(buffers)
        link = config.network.links[0]
        source = sim.add(EntanglementSource(0, link.beta, state, buffers))
        duration = 200.0
        sim.run(until=duration)
        expected_attempts = link.beta * duration
        assert source.attempts == pytest.approx(expected_attempts, rel=0.1)
        expected_pairs = link.beta * (1 - allocation.w[0]) * duration
        assert source.pairs_generated == pytest.approx(expected_pairs, rel=0.25)


class TestDemandProcess:
    def test_demand_drains_at_configured_rate(self):
        config = paper_config(seed=2)
        state = AllocationState(
            config.network,
            np.zeros(config.network.num_routes),
            np.ones(config.network.num_links),
        )
        buffers = RouteBuffers(state)
        buffers.key_bits[0] = 100.0
        sim = Simulator()
        sim.add(buffers)
        rates = [2.0] + [0.0] * (config.network.num_routes - 1)
        sim.add(DemandProcess(buffers, rates, interval_s=0.5))
        sim.run(until=10.0)
        assert buffers.demand_bits[0] == pytest.approx(20.0)
        assert buffers.key_bits[0] == pytest.approx(80.0)
        assert buffers.shortfall_bits[0] == 0.0


class TestSimulatedAgainstAnalytic:
    def test_delivered_rates_track_allocation(self, config, service):
        """End-to-end: per-route delivered key rate ≈ φ_n F_skf(ϖ_n)."""
        result = QuantumNetworkSimulation(
            config, SimParams(duration_s=400.0), seed=5, service=service
        ).run()
        simulated = np.asarray(result.delivered_key_rate)
        analytic = np.asarray(result.allocated_key_rate)
        # Swapping alignment and the pending cap shave a few percent; the
        # simulator should still track the analytic rate closely.
        assert np.all(simulated > 0.6 * analytic)
        assert np.all(simulated < 1.2 * analytic)
        assert abs(simulated.sum() / analytic.sum() - 1.0) < 0.2

    def test_expected_key_bits_matches_clean_network_integral(
        self, config, service
    ):
        result = QuantumNetworkSimulation(
            config, SimParams(duration_s=50.0), seed=5, service=service
        ).run()
        assert result.expected_key_bits == pytest.approx(
            sum(result.allocated_key_rate) * 50.0
        )


class TestDisruption:
    def test_outage_silences_link_generation(self, config, service):
        params = SimParams(
            duration_s=120.0, outage_rate=0.05, outage_duration_s=30.0
        )
        result = QuantumNetworkSimulation(
            config, params, seed=11, service=service
        ).run()
        assert result.outage_count >= 1
        # Links that were down part of the horizon generate fewer pairs
        # than their clean-network expectation.
        down_time = {}
        for link_id, t_down, t_up in result.outages:
            down_time[int(link_id)] = down_time.get(int(link_id), 0.0) + (
                t_up - t_down
            )
        for link_id, down in down_time.items():
            if down < 20.0:
                continue
            link = config.network.links[link_id - 1]
            w = service.solve(config).allocation.w[link_id - 1]
            clean_expectation = link.beta * (1 - w) * result.duration_s
            generated = result.pairs_generated[link_id - 1]
            assert generated < clean_expectation

    def test_outage_causes_shortfall_under_demand(self, config, service):
        quiet = QuantumNetworkSimulation(
            config,
            SimParams(duration_s=200.0, demand_factor=0.9),
            seed=11,
            service=service,
        ).run()
        stormy = QuantumNetworkSimulation(
            config,
            SimParams(
                duration_s=200.0,
                demand_factor=0.9,
                outage_rate=0.05,
                outage_duration_s=40.0,
            ),
            seed=11,
            service=service,
        ).run()
        assert stormy.outage_count >= 2
        assert stormy.total_shortfall_bits > quiet.total_shortfall_bits
        assert stormy.served_fraction < quiet.served_fraction


class TestAdaptation:
    def test_reopt_updates_allocation_during_outage(self, config, service):
        params = SimParams(
            duration_s=100.0,
            outage_rate=0.05,
            outage_duration_s=40.0,
            reopt_interval_s=25.0,
        )
        simulation = QuantumNetworkSimulation(
            config, params, seed=11, service=service
        )
        result = simulation.run()
        assert result.outage_count >= 1
        assert len(result.reopt_times) >= 4   # periodic + outage-triggered
        assert result.reopt_failures == 0

    def test_monitor_sampling_grid(self, config, service):
        result = QuantumNetworkSimulation(
            config, SimParams(duration_s=10.0, sample_dt=2.0), seed=1,
            service=service,
        ).run()
        assert result.sample_times == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]
        assert len(result.buffer_bits) == 6
        assert len(result.buffer_bits[0]) == config.network.num_routes
