"""The discrete-event kernel: ordering, processes, RNG streams."""

import pytest

from repro.sim.engine import Process, RngStreams, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run(until=10.0)
        assert fired == ["a", "b", "c"]
        assert sim.now == 10.0
        assert sim.events_processed == 3

    def test_simultaneous_events_fifo_within_priority(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run(until=1.0)
        assert fired == ["a", "b", "c"]

    def test_priority_orders_same_time_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("late"), priority=10)
        sim.schedule(1.0, lambda: fired.append("early"), priority=-10)
        sim.schedule(1.0, lambda: fired.append("mid"))
        sim.run(until=1.0)
        assert fired == ["early", "mid", "late"]

    def test_events_beyond_horizon_stay_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("x"))
        sim.run(until=4.0)
        assert fired == []
        sim.run(until=6.0)
        assert fired == ["x"]

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run(until=2.0)
        assert fired == []
        assert sim.events_processed == 0

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="non-negative"):
            sim.schedule(-1.0, lambda: None)

    def test_past_schedule_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=5.0)
        with pytest.raises(ValueError, match="cannot schedule"):
            sim.schedule_at(2.0, lambda: None)

    def test_clock_never_runs_backwards(self):
        sim = Simulator()
        sim.run(until=5.0)
        with pytest.raises(ValueError, match="cannot run"):
            sim.run(until=3.0)


class _Ticker(Process):
    """Fixed-interval process counting its own steps."""

    def __init__(self, name="ticker", interval=1.0):
        super().__init__(name)
        self.interval = interval
        self.steps = []

    def next_delay(self):
        return self.interval

    def step(self):
        self.steps.append(self.sim.now)


class TestProcess:
    def test_process_self_schedules(self):
        sim = Simulator()
        ticker = sim.add(_Ticker(interval=2.0))
        sim.run(until=7.0)
        assert ticker.steps == [2.0, 4.0, 6.0]

    def test_pause_makes_pending_events_inert(self):
        sim = Simulator()
        ticker = sim.add(_Ticker(interval=2.0))
        sim.run(until=3.0)          # stepped at t=2, next armed for t=4
        ticker.pause()
        sim.run(until=10.0)
        assert ticker.steps == [2.0]

    def test_resume_rearms_from_now(self):
        sim = Simulator()
        ticker = sim.add(_Ticker(interval=2.0))
        sim.run(until=3.0)
        ticker.pause()
        sim.run(until=5.0)
        ticker.resume()
        sim.run(until=8.0)
        assert ticker.steps == [2.0, 7.0]   # resumed at t=5, interval 2

    def test_none_delay_ends_process(self):
        class OneShot(Process):
            def __init__(self):
                super().__init__("oneshot")
                self.count = 0

            def next_delay(self):
                return 1.0 if self.count == 0 else None

            def step(self):
                self.count += 1

        sim = Simulator()
        proc = sim.add(OneShot())
        sim.run(until=10.0)
        assert proc.count == 1

    def test_entities_added_after_run_start_on_next_run(self):
        sim = Simulator()
        sim.run(until=1.0)
        ticker = sim.add(_Ticker(interval=1.0))
        sim.run(until=3.5)
        assert ticker.steps == [2.0, 3.0]


class TestRngStreams:
    def test_same_seed_same_name_same_draws(self):
        a = RngStreams(7).stream("gen.link1")
        b = RngStreams(7).stream("gen.link1")
        assert a.random(5).tolist() == b.random(5).tolist()

    def test_different_names_independent(self):
        streams = RngStreams(7)
        a = streams.stream("gen.link1").random(5)
        b = streams.stream("gen.link2").random(5)
        assert a.tolist() != b.tolist()

    def test_different_seeds_differ(self):
        a = RngStreams(7).stream("fading").random(5)
        b = RngStreams(8).stream("fading").random(5)
        assert a.tolist() != b.tolist()

    def test_stream_isolation_from_creation_order(self):
        """Touching extra streams must not perturb an existing stream."""
        lone = RngStreams(3)
        crowded = RngStreams(3)
        for name in ("a", "b", "c"):
            crowded.stream(name)
        assert (
            lone.stream("disruption").random(8).tolist()
            == crowded.stream("disruption").random(8).tolist()
        )

    def test_stream_cached(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")


class TestTrace:
    def test_trace_records_time_and_tag(self):
        sim = Simulator(record_trace=True)
        sim.schedule(1.0, lambda: None, tag="one")
        sim.schedule(2.0, lambda: None, tag="two")
        sim.run(until=5.0)
        assert sim.trace == [(1.0, "one"), (2.0, "two")]
        assert len(sim.trace_digest()) == 64

    def test_trace_off_by_default(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        assert sim.trace_digest() == ""
        with pytest.raises(RuntimeError, match="trace recording is off"):
            sim.trace
