"""Topology generators and the declarative custom-topology dict."""

import numpy as np
import pytest

from repro.quantum.topology import beta_from_length
from repro.sim.routing import dijkstra
from repro.sim.topology import (
    TOPOLOGY_FAMILIES,
    Topology,
    config_for_topology,
    custom_topology,
    grid_topology,
    make_topology,
    ring_topology,
    scale_free_topology,
    waxman_topology,
)


class TestTopologyInvariants:
    @pytest.mark.parametrize("family", TOPOLOGY_FAMILIES)
    @pytest.mark.parametrize("num_nodes", [9, 16, 25])
    def test_generated_families_are_connected_and_well_formed(
        self, family, num_nodes
    ):
        topo = make_topology(family, num_nodes=num_nodes, num_clients=3, seed=4)
        assert [l.link_id for l in topo.links] == list(
            range(1, topo.num_links + 1)
        )
        assert topo.key_center in topo.nodes
        assert len(topo.clients) == 3
        assert topo.key_center not in topo.clients
        # every node reachable from the key centre
        assert len(topo.hop_distances(topo.key_center)) == topo.num_nodes
        # adjacency is symmetric and (neighbor, link)-sorted
        for node, edges in topo.adjacency.items():
            assert list(edges) == sorted(edges)
            for neighbor, link_id, length in edges:
                assert (node, link_id, length) in topo.adjacency[neighbor]

    @pytest.mark.parametrize("family", TOPOLOGY_FAMILIES)
    def test_same_seed_same_topology(self, family):
        a = make_topology(family, num_nodes=20, num_clients=4, seed=9)
        b = make_topology(family, num_nodes=20, num_clients=4, seed=9)
        assert a.links == b.links
        assert a.key_center == b.key_center
        assert a.clients == b.clients

    @pytest.mark.parametrize("family", ["waxman", "scale-free"])
    def test_random_families_vary_with_seed(self, family):
        a = make_topology(family, num_nodes=20, num_clients=4, seed=1)
        b = make_topology(family, num_nodes=20, num_clients=4, seed=2)
        assert a.links != b.links

    def test_exact_node_counts(self):
        assert ring_topology(10).num_nodes == 10
        assert waxman_topology(15, seed=0).num_nodes == 15
        assert scale_free_topology(15, seed=0).num_nodes == 15
        assert grid_topology(3, 5).num_nodes == 15

    def test_clients_are_hop_farthest_from_key_center(self):
        topo = grid_topology(3, 4, num_clients=2)
        distances = topo.hop_distances(topo.key_center)
        worst = max(distances.values())
        assert all(distances[c] == worst for c in topo.clients)

    def test_grid_hop_distances_are_manhattan(self):
        topo = grid_topology(3, 3)
        assert topo.hop_distances("g01x01")["g00x00"] == 2
        assert topo.hop_distances("g00x00")["g02x02"] == 4

    def test_scaling_to_100_plus_nodes(self):
        """The topology-scaling contract the bench sweep relies on."""
        topo = make_topology("waxman", num_nodes=128, num_clients=6, seed=3)
        assert topo.num_nodes == 128
        assert len(dijkstra(topo, topo.key_center)) == 128

    def test_validation_errors(self):
        from repro.quantum.topology import Link

        links = [Link(1, ("A", "B"), 10.0, 50.0)]
        with pytest.raises(ValueError, match="not a node"):
            Topology("t", links, key_center="Z", clients=["B"])
        with pytest.raises(ValueError, match="cannot be its own client"):
            Topology("t", links, key_center="A", clients=["A"])
        with pytest.raises(ValueError, match="duplicate client"):
            Topology("t", links, key_center="A", clients=["B", "B"])
        with pytest.raises(ValueError, match="link ids must be exactly"):
            Topology(
                "t", [Link(2, ("A", "B"), 10.0, 50.0)],
                key_center="A", clients=["B"],
            )
        with pytest.raises(ValueError, match="parallel edges"):
            Topology(
                "t",
                [Link(1, ("A", "B"), 10.0, 50.0),
                 Link(2, ("B", "A"), 12.0, 50.0)],
                key_center="A", clients=["B"],
            )

    def test_generator_argument_errors(self):
        with pytest.raises(ValueError, match="at least 3"):
            ring_topology(2)
        with pytest.raises(ValueError, match="rows >= 1"):
            grid_topology(0, 4)
        with pytest.raises(ValueError, match="alpha"):
            waxman_topology(8, alpha=0.0)
        with pytest.raises(ValueError, match="attach"):
            scale_free_topology(8, attach=0)
        with pytest.raises(ValueError, match="cannot place"):
            ring_topology(4, num_clients=5)


class TestCustomTopology:
    SPEC = {
        "name": "lab",
        "links": [
            {"u": "A", "v": "B", "length_km": 30.0},
            {"u": "B", "v": "C", "length_km": 25.0, "beta": 88.0},
            {"u": "A", "v": "C", "length_km": 60.0},
        ],
        "key_center": "A",
        "clients": ["C"],
    }

    def test_happy_path(self):
        topo = custom_topology(self.SPEC)
        assert topo.name == "lab"
        assert topo.num_links == 3
        assert topo.links[0].beta == pytest.approx(beta_from_length(30.0))
        assert topo.links[1].beta == 88.0  # explicit override wins
        assert topo.clients == ("C",)

    def test_links_numbered_in_list_order(self):
        topo = custom_topology(self.SPEC)
        assert [tuple(l.endpoints) for l in topo.links] == [
            ("A", "B"), ("B", "C"), ("A", "C")
        ]

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError, match="missing keys"):
            custom_topology({"links": []})
        with pytest.raises(ValueError, match="missing required key"):
            custom_topology({
                "links": [{"u": "A", "length_km": 3}],
                "key_center": "A", "clients": ["B"],
            })

    def test_unknown_link_keys_rejected(self):
        spec = {
            "links": [{"u": "A", "v": "B", "length_km": 3, "capacity": 7}],
            "key_center": "A", "clients": ["B"],
        }
        with pytest.raises(ValueError, match="unknown keys"):
            custom_topology(spec)

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            custom_topology([1, 2, 3])

    def test_disconnected_client_rejected(self):
        spec = {
            "links": [
                {"u": "A", "v": "B", "length_km": 3},
                {"u": "C", "v": "D", "length_km": 3},
            ],
            "key_center": "A",
            "clients": ["C"],
        }
        with pytest.raises(ValueError, match="not connected"):
            custom_topology(spec)

    def test_make_topology_dispatch(self):
        topo = make_topology("custom", num_nodes=0, spec=self.SPEC)
        assert topo.name == "lab"
        with pytest.raises(ValueError, match="needs a spec"):
            make_topology("custom", num_nodes=5)
        with pytest.raises(ValueError, match="unknown topology family"):
            make_topology("torus", num_nodes=5)


class TestConfigForTopology:
    def test_solver_ready_shapes(self):
        from repro.sim.routing import RouteController

        topo = grid_topology(3, 4, num_clients=3)
        routes = RouteController(topo, k=2).initial_routes()
        config = config_for_topology(topo, routes, seed=7)
        assert config.network.num_routes == 3
        assert config.network.num_links == topo.num_links
        assert len(config.clients) == 3
        assert config.channel_gains.shape == (3,)
        assert sum(c.privacy_weight for c in config.clients) == pytest.approx(1.0)

    def test_seed_changes_channel_realization_only(self):
        from repro.sim.routing import RouteController

        topo = ring_topology(6, num_clients=2)
        routes = RouteController(topo, k=1).initial_routes()
        a = config_for_topology(topo, routes, seed=1)
        b = config_for_topology(topo, routes, seed=2)
        assert a.network.routes == b.network.routes
        # gains are ~1e-13, far below allclose's default atol — compare exactly
        assert not np.array_equal(a.channel_gains, b.channel_gains)

    def test_empty_routes_rejected(self):
        topo = ring_topology(6)
        with pytest.raises(ValueError, match="at least one route"):
            config_for_topology(topo, [], seed=0)
