"""Reroute-on-outage: controller semantics, retargeting, swap policies.

Covers the seams the routing layer added to the simulation: the
:class:`RouteController` contract (non-fallback routes never cross a down
link, pure function of link state), the mid-run retargeting of
:class:`AllocationState` and :class:`RouteBuffers`, the entanglement-swap
yield model, the strike-mode outage pools, and — in fresh subprocesses —
the seed-stability of both new scenarios.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.sim.processes import (
    AllocationState,
    DisruptionProcess,
    RouteBuffers,
    swap_credit,
)
from repro.sim.qnetwork import QuantumNetworkSimulation, SimParams
from repro.sim.routing import RouteController, path_links, shortest_path
from repro.sim.topology import (
    config_for_topology,
    custom_topology,
    grid_topology,
    make_topology,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


def triangle():
    """A-B-C path plus A-C chord: two distinct routes to the client."""
    return custom_topology({
        "name": "triangle",
        "links": [
            {"u": "A", "v": "B", "length_km": 10.0},
            {"u": "B", "v": "C", "length_km": 10.0},
            {"u": "A", "v": "C", "length_km": 30.0},
        ],
        "key_center": "A",
        "clients": ["C"],
    })


class TestRouteController:
    @pytest.mark.parametrize("policy", ["proactive", "reactive"])
    def test_all_up_keeps_primary_routes(self, policy):
        topo = grid_topology(3, 4, num_clients=3)
        ctrl = RouteController(topo, k=3, policy=policy)
        primary = ctrl.initial_routes()
        routes, fallback = ctrl.routes_for([True] * topo.num_links)
        assert [r.link_ids for r in routes] == [r.link_ids for r in primary]
        assert fallback == [False, False, False]

    @pytest.mark.parametrize("policy", ["proactive", "reactive"])
    def test_non_fallback_routes_never_cross_down_links(self, policy):
        rng = np.random.default_rng(42)
        for family, n in [("grid", 12), ("ring", 8), ("waxman", 16)]:
            topo = make_topology(family, num_nodes=n, num_clients=3, seed=7)
            ctrl = RouteController(topo, k=3, policy=policy)
            for _ in range(30):
                link_up = list(rng.random(topo.num_links) > 0.3)
                down = {
                    l + 1 for l, up in enumerate(link_up) if not up
                }
                routes, fallback = ctrl.routes_for(link_up)
                for route, dead in zip(routes, fallback):
                    if not dead:
                        assert not down.intersection(route.link_ids)

    @pytest.mark.parametrize("policy", ["proactive", "reactive"])
    def test_unreachable_client_falls_back_to_primary(self, policy):
        topo = triangle()
        ctrl = RouteController(topo, k=2, policy=policy)
        primary = ctrl.initial_routes()[0]
        assert primary.link_ids == (1, 2)  # A-B-C is shorter than the chord
        # chord down -> reroute impossible once B-C also fails
        link_up = [True, False, False]
        routes, fallback = ctrl.routes_for(link_up)
        assert fallback == [True]
        assert routes[0].link_ids == primary.link_ids

    def test_detour_taken_when_primary_cut(self):
        topo = triangle()
        for policy in ("proactive", "reactive"):
            ctrl = RouteController(topo, k=2, policy=policy)
            routes, fallback = ctrl.routes_for([True, False, True])
            assert fallback == [False]
            assert routes[0].link_ids == (3,)  # the A-C chord

    @pytest.mark.parametrize("policy", ["proactive", "reactive"])
    def test_pure_function_of_link_state(self, policy):
        topo = make_topology("scale-free", num_nodes=14, num_clients=4, seed=2)
        ctrl = RouteController(topo, k=3, policy=policy)
        rng = np.random.default_rng(11)
        for _ in range(10):
            link_up = list(rng.random(topo.num_links) > 0.4)
            a_routes, a_fb = ctrl.routes_for(link_up)
            b_routes, b_fb = ctrl.routes_for(link_up)
            assert [r.link_ids for r in a_routes] == [
                r.link_ids for r in b_routes
            ]
            assert a_fb == b_fb

    def test_reactive_matches_fresh_dijkstra(self):
        topo = grid_topology(3, 4, num_clients=2)
        ctrl = RouteController(topo, k=1, policy="reactive")
        rng = np.random.default_rng(5)
        for _ in range(20):
            link_up = list(rng.random(topo.num_links) > 0.25)
            down = frozenset(
                l + 1 for l, up in enumerate(link_up) if not up
            )
            routes, fallback = ctrl.routes_for(link_up)
            for client, route, dead in zip(topo.clients, routes, fallback):
                found = shortest_path(
                    topo, topo.key_center, client, avoid_links=down
                )
                if dead:
                    assert found is None
                else:
                    assert route.link_ids == path_links(topo, found[1])

    def test_argument_validation(self):
        topo = triangle()
        with pytest.raises(ValueError, match="unknown routing policy"):
            RouteController(topo, policy="psychic")
        with pytest.raises(ValueError, match="k must be"):
            RouteController(topo, k=0)
        ctrl = RouteController(topo, k=2)
        with pytest.raises(ValueError, match="link_up has"):
            ctrl.routes_for([True, True])


class TestSwapCredit:
    def test_ideal_swapping_is_exactly_one(self):
        for hops in (1, 2, 5, 11):
            assert swap_credit(hops, 1.0) == 1.0

    def test_yield_decays_geometrically_with_hops(self):
        assert swap_credit(1, 0.8) == 1.0  # single hop needs no swap
        assert swap_credit(2, 0.8) == pytest.approx(0.8)
        assert swap_credit(4, 0.8) == pytest.approx(0.8 ** 3)
        assert swap_credit(3, 0.5) < swap_credit(2, 0.5)


def two_route_state():
    """Allocation state on the triangle with both routes in play."""
    topo = triangle()
    from repro.quantum.routing import Route

    routes = [
        Route(1, source="A", target="C", link_ids=(1, 2)),
        Route(2, source="A", target="C", link_ids=(3,)),
    ]
    network = topo.network(routes)
    return topo, network, AllocationState(network, [1.0, 1.0], [0.2, 0.2, 0.2])


class TestRouteBuffers:
    def test_atomic_drains_every_complete_set(self):
        _, _, state = two_route_state()
        buffers = RouteBuffers(state)
        buffers.pending[0] = [2, 2]
        buffers.on_pair(0, 0)  # -> [3, 2]: two complete end-to-end sets
        assert buffers.pairs_delivered[0] == 2
        assert buffers.pending[0] == [1, 0]

    def test_stepwise_delivers_at_most_one_per_arrival(self):
        _, _, state = two_route_state()
        buffers = RouteBuffers(state, swap_policy="stepwise")
        buffers.pending[0] = [2, 2]
        buffers.on_pair(0, 0)
        assert buffers.pairs_delivered[0] == 1
        assert buffers.pending[0] == [2, 1]

    def test_swap_success_scales_delivered_bits(self):
        _, _, state = two_route_state()
        ideal = RouteBuffers(state)
        lossy = RouteBuffers(state, swap_success=0.5)
        for b in (ideal, lossy):
            b.on_pair(0, 0)
            b.on_pair(0, 1)
        assert ideal.pairs_delivered[0] == lossy.pairs_delivered[0] == 1
        # 2-hop route: one swap at q=0.5 halves the expected yield
        assert lossy.delivered_bits[0] == pytest.approx(
            0.5 * ideal.delivered_bits[0]
        )
        # the single-link route needs no swap: no penalty
        ideal.on_pair(1, 0)
        lossy.on_pair(1, 0)
        assert lossy.delivered_bits[1] == ideal.delivered_bits[1]

    def test_retarget_flushes_pending_and_keeps_key_bits(self):
        topo, network, state = two_route_state()
        buffers = RouteBuffers(state)
        buffers.on_pair(0, 0)  # pending on the 2-hop route
        buffers.key_bits[1] = 7.5
        from repro.quantum.routing import Route

        swapped = topo.network([
            Route(1, source="A", target="C", link_ids=(3,)),
            Route(2, source="A", target="C", link_ids=(1, 2)),
        ])
        state.retarget(swapped, state.phi, state.w)
        buffers.retarget()
        assert buffers.pairs_flushed == [1, 0]
        assert [len(p) for p in buffers.pending] == [1, 2]  # new hop counts
        assert all(v == 0 for p in buffers.pending for v in p)
        assert buffers.key_bits[1] == 7.5  # delivered key survives reroutes

    def test_retarget_rejects_shape_changes(self):
        topo, network, state = two_route_state()
        from repro.quantum.routing import Route

        fewer = topo.network(
            [Route(1, source="A", target="C", link_ids=(1, 2))]
        )
        with pytest.raises(ValueError, match="route count"):
            state.retarget(fewer, [1.0], [0.2, 0.2, 0.2])

    def test_invalid_swap_arguments(self):
        _, _, state = two_route_state()
        with pytest.raises(ValueError, match="swap policy"):
            RouteBuffers(state, swap_policy="telepathic")
        with pytest.raises(ValueError, match="swap_success"):
            RouteBuffers(state, swap_success=0.0)
        with pytest.raises(ValueError, match="swap_success"):
            RouteBuffers(state, swap_success=1.5)


class TestStrikeModes:
    def _disruption(self, strike):
        topo, network, state = two_route_state()
        # only len(sources) matters before the process starts stepping
        sources = [object()] * network.num_links
        return DisruptionProcess(
            sources, state,
            outage_rate=0.1, mean_outage_s=5.0, strike=strike,
        )

    def test_any_mode_targets_every_link(self):
        assert self._disruption("any")._loaded == [True, True, True]

    def test_loaded_mode_targets_route_carrying_links(self):
        topo = triangle()
        from repro.quantum.routing import Route

        network = topo.network(
            [Route(1, source="A", target="C", link_ids=(1, 2))]
        )
        state = AllocationState(network, [1.0], [0.2, 0.2, 0.2])
        proc = DisruptionProcess(
            [object()] * 3, state,
            outage_rate=0.1, mean_outage_s=5.0, strike="loaded",
        )
        assert proc._loaded == [True, True, False]  # chord carries nothing

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="strike mode"):
            self._disruption("everything")
        with pytest.raises(ValueError, match="strike mode"):
            SimParams(strike="everything")


class RecordingController(RouteController):
    """RouteController that logs every decision the simulation asks for."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = []

    def routes_for(self, link_up):
        routes, fallback = super().routes_for(link_up)
        self.calls.append(
            (tuple(link_up), [r.link_ids for r in routes], list(fallback))
        )
        return routes, fallback


class TestReroutingInSimulation:
    def test_live_routes_respect_link_state_throughout_a_run(self):
        """End to end: every mid-run routing decision honours link state."""
        topo = grid_topology(3, 4, num_clients=3)
        ctrl = RecordingController(topo, k=3, policy="proactive")
        config = config_for_topology(topo, ctrl.initial_routes(), seed=3)
        params = SimParams(
            duration_s=30.0,
            demand_factor=0.8,
            outage_rate=0.3,
            outage_duration_s=8.0,
            reopt_interval_s=10.0,
            strike="any",
        )
        sim = QuantumNetworkSimulation(config, params, seed=3, router=ctrl)
        result = sim.run()
        assert ctrl.calls, "no outage ever consulted the router"
        for link_up, route_ids, fallback in ctrl.calls:
            down = {l + 1 for l, up in enumerate(link_up) if not up}
            for ids, dead in zip(route_ids, fallback):
                if not dead:
                    assert not down.intersection(ids)
        assert result.reroute_count == len(result.reroutes)
        assert len(result.final_route_links) == 3

    def test_router_topology_must_match_config(self):
        topo = grid_topology(3, 4, num_clients=3)
        ctrl = RouteController(topo, k=2)
        other = grid_topology(3, 3, num_clients=2)
        config = config_for_topology(
            other, RouteController(other, k=1).initial_routes(), seed=0
        )
        with pytest.raises(ValueError, match="link set"):
            QuantumNetworkSimulation(config, router=ctrl)


SEED_STABILITY_SCRIPT = """\
import json
from repro.api.service import SolverService
from repro.experiments.simulation import run_multipath_sim, run_routing_compare

multi = run_multipath_sim(
    seed=5, duration_s=12.0, outage_rate=0.3, outage_duration_s=5.0,
    service=SolverService(),
)
study = run_routing_compare(
    seed=5, duration_s=12.0, outage_rate=0.3, outage_duration_s=5.0,
    service=SolverService(),
)
print(json.dumps({
    "sim-multipath": multi.trace_digest,
    "sim-routing-compare": [
        study.proactive.trace_digest,
        study.reactive.trace_digest,
        study.static.trace_digest,
    ],
}))
"""


def test_scenarios_are_seed_stable_across_fresh_processes():
    """Satellite of the determinism contract: each new scenario, run twice
    in *fresh* interpreter processes, produces identical trace digests —
    no hash-seed, set-iteration, or import-order dependence survives."""
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED="random")
    outputs = []
    for _ in range(2):
        proc = subprocess.run(
            [sys.executable, "-c", SEED_STABILITY_SCRIPT],
            capture_output=True, text=True, env=env, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        outputs.append(json.loads(proc.stdout))
    assert outputs[0] == outputs[1]
    assert len(outputs[0]["sim-multipath"]) == 64
