"""Property tests for the routing algorithms against reference oracles.

Routing code is exactly where plausible-looking implementations go subtly
wrong, so the shortest-path layer is pinned against independent
references: Dijkstra against a NumPy Floyd–Warshall over the same graph,
and Yen's k-shortest paths against brute-force enumeration of *all*
simple paths on small random graphs (~200 seeded draws, ≤8 nodes — small
enough that exhaustive enumeration is the ground truth, big enough to hit
every structural corner: ties, bridges, parallel candidate spurs).
"""

import heapq

import numpy as np
import pytest

from repro.sim.routing import (
    brute_force_paths,
    candidate_routes,
    dijkstra,
    k_shortest_paths,
    multipath_routes,
    path_cost,
    path_links,
    shortest_path,
)
from repro.sim.topology import Topology, custom_topology

# -- seeded random graph corpus -----------------------------------------------


def random_topology(rng: np.random.Generator, max_nodes: int = 8) -> Topology:
    """A small random connected topology: spanning tree + random extra edges.

    Lengths are drawn from a small integer set so equal-cost ties are
    common — the regime where a sloppy tie-break shows up.
    """
    n = int(rng.integers(3, max_nodes + 1))
    names = [f"n{i}" for i in range(n)]
    edges = set()
    for i in range(1, n):
        edges.add(frozenset((i, int(rng.integers(0, i)))))
    extra = int(rng.integers(0, n))
    for _ in range(extra):
        i, j = rng.integers(0, n, size=2)
        if i != j:
            edges.add(frozenset((int(i), int(j))))
    lengths = rng.choice([10.0, 10.0, 20.0, 30.0], size=len(edges))
    spec = {
        "name": "random",
        "links": [
            {"u": names[min(e)], "v": names[max(e)], "length_km": float(l)}
            for e, l in zip(sorted(edges, key=sorted), lengths)
        ],
        "key_center": names[0],
        "clients": [names[n - 1]],
    }
    return custom_topology(spec)


def graph_corpus(count: int, *, entropy: int = 20250808):
    rng = np.random.default_rng(entropy)
    return [random_topology(rng) for _ in range(count)]


# -- Dijkstra vs Floyd–Warshall -----------------------------------------------


def floyd_warshall(topology: Topology) -> np.ndarray:
    """All-pairs shortest distances via the NumPy reference recursion."""
    nodes = topology.nodes
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    dist = np.full((n, n), np.inf)
    np.fill_diagonal(dist, 0.0)
    for link in topology.links:
        u, v = (index[e] for e in link.endpoints)
        dist[u, v] = dist[v, u] = min(dist[u, v], link.length_km)
    for k in range(n):
        dist = np.minimum(dist, dist[:, [k]] + dist[[k], :])
    return dist


class TestDijkstraAgainstFloydWarshall:
    @pytest.mark.parametrize("case", range(60))
    def test_all_pairs_costs_match(self, case):
        rng = np.random.default_rng(7_000 + case)
        topo = random_topology(rng)
        reference = floyd_warshall(topo)
        index = {node: i for i, node in enumerate(topo.nodes)}
        for source in topo.nodes:
            settled = dijkstra(topo, source)
            assert set(settled) == set(topo.nodes)  # connected by construction
            for node, (cost, path) in settled.items():
                # FW sums in a different association order; tolerate ulps.
                assert cost == pytest.approx(
                    reference[index[source], index[node]], rel=1e-12
                )
                assert path[0] == source and path[-1] == node
                assert len(set(path)) == len(path)  # simple
                if len(path) > 1:
                    assert path_cost(topo, path) == cost

    def test_paths_walk_real_edges(self):
        for topo in graph_corpus(20):
            for _, path in dijkstra(topo, topo.key_center).values():
                path_links(topo, path)  # raises on a non-edge hop

    def test_avoid_links_and_nodes_respected(self):
        for topo in graph_corpus(20, entropy=99):
            full = dijkstra(topo, topo.key_center)
            target = topo.clients[0]
            _, path = full[target]
            if len(path) < 2:
                continue
            cut = frozenset({path_links(topo, path)[0]})
            for _, detour in dijkstra(
                topo, topo.key_center, avoid_links=cut
            ).values():
                assert not cut.intersection(path_links(topo, detour))
            mid = path[len(path) // 2]
            if mid not in (topo.key_center,):
                for node, (_, detour) in dijkstra(
                    topo, topo.key_center, avoid_nodes=frozenset({mid})
                ).items():
                    assert mid not in detour

    def test_deterministic_lexicographic_tie_break(self):
        """Among equal-cost paths, Dijkstra returns the (cost, path)-min —
        the brute-force minimum, not an iteration-order accident."""
        ties = 0
        for topo in graph_corpus(60, entropy=1234):
            for node in topo.nodes:
                if node == topo.key_center:
                    continue
                best = dijkstra(topo, topo.key_center)[node]
                all_paths = brute_force_paths(topo, topo.key_center, node)
                assert best == min(all_paths)
                if (
                    len(all_paths) > 1
                    and all_paths[0][0] == all_paths[1][0]
                ):
                    ties += 1
        assert ties >= 10  # the corpus actually exercises tie-breaking


# -- Yen vs brute force -------------------------------------------------------


class TestYenAgainstBruteForce:
    @pytest.mark.parametrize("case", range(200))
    def test_k_shortest_match_exhaustive_enumeration(self, case):
        rng = np.random.default_rng(31_337 + case)
        topo = random_topology(rng)
        source, target = topo.key_center, topo.clients[0]
        k = int(rng.integers(1, 6))
        yen = k_shortest_paths(topo, source, target, k)
        reference = brute_force_paths(topo, source, target)
        assert yen == reference[:k], (
            f"case {case}: Yen k={k} diverged from exhaustive enumeration "
            f"on {len(topo.nodes)} nodes / {topo.num_links} links"
        )

    def test_route_lists_sorted_simple_deduplicated(self):
        for case, topo in enumerate(graph_corpus(40, entropy=777)):
            yen = k_shortest_paths(
                topo, topo.key_center, topo.clients[0], 6
            )
            assert yen == sorted(yen), f"case {case}: not (cost, path)-sorted"
            seen = set()
            for cost, path in yen:
                assert len(set(path)) == len(path), f"case {case}: loop"
                assert path not in seen, f"case {case}: duplicate path"
                seen.add(path)
                assert cost == pytest.approx(path_cost(topo, path))

    def test_k_beyond_path_count_returns_all_simple_paths(self):
        topo = custom_topology({
            "links": [
                {"u": "A", "v": "B", "length_km": 10},
                {"u": "B", "v": "C", "length_km": 10},
                {"u": "A", "v": "C", "length_km": 15},
            ],
            "key_center": "A",
            "clients": ["C"],
        })
        yen = k_shortest_paths(topo, "A", "C", 50)
        assert yen == brute_force_paths(topo, "A", "C")
        assert len(yen) == 2

    def test_disconnected_target_yields_empty(self):
        topo = custom_topology({
            "links": [
                {"u": "A", "v": "B", "length_km": 10},
                {"u": "C", "v": "D", "length_km": 10},
            ],
            "key_center": "A",
            "clients": ["B"],
        })
        assert k_shortest_paths(topo, "A", "C", 3) == []
        assert shortest_path(topo, "A", "D") is None

    def test_rejects_bad_k(self):
        topo = graph_corpus(1)[0]
        with pytest.raises(ValueError, match="k must be"):
            k_shortest_paths(topo, topo.key_center, topo.clients[0], 0)


# -- route construction -------------------------------------------------------


class TestCandidateRoutes:
    def test_candidates_cover_every_client_in_order(self):
        for topo in graph_corpus(10, entropy=55):
            cands = candidate_routes(topo, k=3)
            assert len(cands) == len(topo.clients)
            for client, paths in zip(topo.clients, cands):
                assert paths, f"{client} unreachable"
                for _, path in paths:
                    assert path[0] == topo.key_center
                    assert path[-1] == client

    def test_multipath_routes_flatten_with_client_map(self):
        topo = graph_corpus(1, entropy=3)[0]
        routes, client_of_route = multipath_routes(topo, k=3)
        assert len(routes) == len(client_of_route)
        assert [r.route_id for r in routes] == list(range(1, len(routes) + 1))
        for route, c in zip(routes, client_of_route):
            assert route.target == topo.clients[c]
            assert route.source == topo.key_center
