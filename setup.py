"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` also works on
offline environments whose setuptools predates PEP 660 editable wheels
(pip falls back to ``setup.py develop`` with ``--no-use-pep517``).
"""

from setuptools import setup

setup()
